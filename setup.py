"""Legacy shim: lets `pip install -e .` work on toolchains without PEP 660 support."""
from setuptools import setup

setup()
