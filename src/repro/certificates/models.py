"""The model registry: certificate ``model`` keys → freshly built programs.

A certificate artifact names its model by a registry *key* rather than
embedding the transition relation (which would let a tamperer smuggle in a
friendlier program).  The replayer rebuilds the model from source via this
registry and then checks the certificate's program digest against it — the
digest (name, space signature, statement names, init fingerprint) is how
swapped-init or wrong-model artifacts are rejected.

For specification certificates the registry also pins the *obligations*:
the (34) safety predicate and the (35) leads-to pairs are recomputed here
from :mod:`repro.seqtrans.spec`, so an artifact cannot weaken what "the
spec holds" means by editing the predicates it claims to have checked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, Optional, Tuple

from ..figures.fig1 import fig1_program
from ..figures.fig2 import fig2_program, fig2_strong_init
from ..predicates import Predicate, var_true
from ..seqtrans import (
    LOSSY,
    RELIABLE,
    SeqTransParams,
    bounded_loss,
    build_kbp_protocol,
    build_standard_protocol,
)
from ..seqtrans.spec import (
    SAFETY_LABEL,
    liveness_label,
    safety_predicate,
    w_length_eq,
    w_length_gt,
)
from ..unity import Program
from .canonical import CertificateError


@dataclass(frozen=True)
class Model:
    """A rebuilt model plus the spec obligations pinned to it."""

    key: str
    program: Program
    #: label → predicate that must be invariant ((34)-style obligations).
    safety_obligations: Tuple[Tuple[str, Predicate], ...] = ()
    #: label → (p, q) leads-to pairs that must each be certified or refuted.
    liveness_obligations: Tuple[Tuple[str, Predicate, Predicate], ...] = ()
    #: named auxiliary predicates (e.g. Figure 2's pinned strong init).
    extras: Dict[str, Predicate] = field(default_factory=dict)


def _seqtrans_obligations(program: Program, params: SeqTransParams):
    space = program.space
    safety = ((SAFETY_LABEL, safety_predicate(space)),)
    liveness = tuple(
        (liveness_label(k), w_length_eq(space, k), w_length_gt(space, k))
        for k in range(params.length)
    )
    return safety, liveness


def _fig1() -> Model:
    return Model(key="fig1", program=fig1_program())


def _fig2() -> Model:
    program = fig2_program()
    space = program.space
    return Model(
        key="fig2",
        program=program,
        extras={
            # Pin the Figure-2 story: the stronger init, the safety
            # property it breaks (invariant ¬y), and the liveness target
            # (true ↦ z) whose verdict flips.
            "strong_init": fig2_strong_init(program),
            "safety": ~var_true(space, "y"),
            "liveness_target": var_true(space, "z"),
        },
    )


def _fig2_strong() -> Model:
    program = fig2_program()
    return Model(
        key="fig2-strong",
        program=program.with_init(fig2_strong_init(program)),
    )


def _seqtrans_standard(channel_key: str) -> Callable[[], Model]:
    channels = {
        "reliable": RELIABLE,
        "bounded1": bounded_loss(1),
        "lossy": LOSSY,
    }

    def build() -> Model:
        params = SeqTransParams(length=1)
        program = build_standard_protocol(params, channels[channel_key])
        safety, liveness = _seqtrans_obligations(program, params)
        return Model(
            key=f"seqtrans-standard-L1-{channel_key}",
            program=program,
            safety_obligations=safety,
            liveness_obligations=liveness,
        )

    return build


def _seqtrans_kbp() -> Model:
    params = SeqTransParams(length=1)
    program = build_kbp_protocol(params, bounded_loss(1))
    safety, liveness = _seqtrans_obligations(program, params)
    return Model(
        key="seqtrans-kbp-L1-bounded1",
        program=program,
        safety_obligations=safety,
        liveness_obligations=liveness,
    )


def _seqtrans_symbolic(length: int) -> Callable[[], Model]:
    def build() -> Model:
        from ..seqtrans.symbolic import (
            build_symbolic_protocol,
            symbolic_safety_predicate,
        )

        params = SeqTransParams(length=length)
        program = build_symbolic_protocol(params)
        return Model(
            key=f"seqtrans-symbolic-L{length}-reliable",
            program=program,
            safety_obligations=(
                (SAFETY_LABEL, symbolic_safety_predicate(program, params)),
            ),
        )

    return build


MODEL_BUILDERS: Dict[str, Callable[[], Model]] = {
    "fig1": _fig1,
    "fig2": _fig2,
    "fig2-strong": _fig2_strong,
    "seqtrans-standard-L1-reliable": _seqtrans_standard("reliable"),
    "seqtrans-standard-L1-bounded1": _seqtrans_standard("bounded1"),
    "seqtrans-standard-L1-lossy": _seqtrans_standard("lossy"),
    "seqtrans-kbp-L1-bounded1": _seqtrans_kbp,
    # Factored reliable-channel models (repro.seqtrans.symbolic): L=2 is
    # explicit-comparable, L=10 lives past 2^40 states and replays on the
    # pinned ROBDD backend.
    "seqtrans-symbolic-L2-reliable": _seqtrans_symbolic(2),
    "seqtrans-symbolic-L10-reliable": _seqtrans_symbolic(10),
}


@lru_cache(maxsize=None)
def build_model(key: str) -> Model:
    """Rebuild a registered model from source (cached; backend-agnostic).

    Predicates materialize their exact int mask lazily regardless of the
    backend active at build time, so the cache is safe to share between
    int- and numpy-backend replays.
    """
    builder = MODEL_BUILDERS.get(key)
    if builder is None:
        raise CertificateError(
            f"unknown model key {key!r}; known: {sorted(MODEL_BUILDERS)}"
        )
    return builder()
