"""The model registry: certificate ``model`` keys → freshly built programs.

A certificate artifact names its model by a registry *key* rather than
embedding the transition relation (which would let a tamperer smuggle in a
friendlier program).  The replayer rebuilds the model from source via this
registry and then checks the certificate's program digest against it — the
digest (name, space signature, statement names, init fingerprint) is how
swapped-init or wrong-model artifacts are rejected.

For specification certificates the registry also pins the *obligations*:
the (34) safety predicate and the (35) leads-to pairs are recomputed here
from :mod:`repro.seqtrans.spec`, so an artifact cannot weaken what "the
spec holds" means by editing the predicates it claims to have checked.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, Optional, Tuple

from ..figures.fig1 import fig1_program
from ..figures.fig2 import fig2_program, fig2_strong_init
from ..predicates import Predicate, var_true
from ..seqtrans import (
    SeqTransParams,
    build_kbp_protocol,
    build_standard_protocol,
    channel_from_key,
)
from ..seqtrans.spec import (
    SAFETY_LABEL,
    liveness_label,
    safety_predicate,
    w_length_eq,
    w_length_gt,
)
from ..unity import Program
from .canonical import CertificateError


@dataclass(frozen=True)
class Model:
    """A rebuilt model plus the spec obligations pinned to it."""

    key: str
    program: Program
    #: label → predicate that must be invariant ((34)-style obligations).
    safety_obligations: Tuple[Tuple[str, Predicate], ...] = ()
    #: label → (p, q) leads-to pairs that must each be certified or refuted.
    liveness_obligations: Tuple[Tuple[str, Predicate, Predicate], ...] = ()
    #: named auxiliary predicates (e.g. Figure 2's pinned strong init).
    extras: Dict[str, Predicate] = field(default_factory=dict)


def _seqtrans_obligations(program: Program, params: SeqTransParams):
    space = program.space
    safety = ((SAFETY_LABEL, safety_predicate(space)),)
    liveness = tuple(
        (liveness_label(k), w_length_eq(space, k), w_length_gt(space, k))
        for k in range(params.length)
    )
    return safety, liveness


def _fig1() -> Model:
    return Model(key="fig1", program=fig1_program())


def _fig2() -> Model:
    program = fig2_program()
    space = program.space
    return Model(
        key="fig2",
        program=program,
        extras={
            # Pin the Figure-2 story: the stronger init, the safety
            # property it breaks (invariant ¬y), and the liveness target
            # (true ↦ z) whose verdict flips.
            "strong_init": fig2_strong_init(program),
            "safety": ~var_true(space, "y"),
            "liveness_target": var_true(space, "z"),
        },
    )


def _fig2_strong() -> Model:
    program = fig2_program()
    return Model(
        key="fig2-strong",
        program=program.with_init(fig2_strong_init(program)),
    )


def _seqtrans(protocol: str, length: int, channel_token: str) -> Callable[[], Model]:
    builders = {"standard": build_standard_protocol, "kbp": build_kbp_protocol}

    def build() -> Model:
        channel = channel_from_key(channel_token)
        params = SeqTransParams(length=length)
        program = builders[protocol](params, channel)
        safety, liveness = _seqtrans_obligations(program, params)
        return Model(
            key=f"seqtrans-{protocol}-L{length}-{channel_token}",
            program=program,
            safety_obligations=safety,
            liveness_obligations=liveness,
        )

    return build


def _seqtrans_symbolic(length: int) -> Callable[[], Model]:
    def build() -> Model:
        from ..seqtrans.symbolic import (
            build_symbolic_protocol,
            symbolic_safety_predicate,
        )

        params = SeqTransParams(length=length)
        program = build_symbolic_protocol(params)
        return Model(
            key=f"seqtrans-symbolic-L{length}-reliable",
            program=program,
            safety_obligations=(
                (SAFETY_LABEL, symbolic_safety_predicate(program, params)),
            ),
        )

    return build


def _kbp24(free_bits: int) -> Callable[[], Model]:
    """The benchmark KBP family: 24 states, ``2^free_bits`` candidates.

    The same shape as the solver bench's speedup program — three Booleans
    plus a 0..2 counter, two process views, three knowledge-guarded
    statements — with the init predicate covering all but ``free_bits``
    deterministically chosen states (seeded PRNG, so every build of
    ``kbp24-f<k>`` is byte-identical and client replays re-derive the same
    program digest).  This is the service's scalable cold-solve workload:
    the candidate count, hence the solve cost, is dialed by the key alone.
    """

    def build() -> Model:
        from ..statespace import BoolDomain, IntRangeDomain, space_of
        from ..unity import Statement, Unary, Var, const, knows, lnot, var

        space = space_of(
            a=BoolDomain(), b=BoolDomain(), c=BoolDomain(), n=IntRangeDomain(0, 2)
        )
        statements = [
            Statement(
                name="s0",
                targets=("a",),
                exprs=(const(True),),
                guard=knows("P", Var("b")),
            ),
            Statement(
                name="s1",
                targets=("b",),
                exprs=(const(False),),
                guard=lnot(knows("Q", Unary("not", Var("c")))),
            ),
            Statement(
                name="s2",
                targets=("n",),
                exprs=(var("n") + const(1),),
                guard=knows("Q", Var("a")) & (var("n") < const(2)),
            ),
        ]
        rng = random.Random(2024)
        init_mask = space.full_mask
        for position in rng.sample(range(space.size), free_bits):
            init_mask &= ~(1 << position)
        program = Program(
            space,
            Predicate(space, init_mask),
            statements,
            processes={"P": ["a", "n"], "Q": ["b", "c"]},
            name=f"kbp24-f{free_bits}",
        )
        return Model(key=f"kbp24-f{free_bits}", program=program)

    return build


MODEL_BUILDERS: Dict[str, Callable[[], Model]] = {
    "fig1": _fig1,
    "fig2": _fig2,
    "fig2-strong": _fig2_strong,
    "seqtrans-standard-L1-reliable": _seqtrans("standard", 1, "reliable"),
    "seqtrans-standard-L1-bounded1": _seqtrans("standard", 1, "bounded1"),
    "seqtrans-standard-L1-lossy": _seqtrans("standard", 1, "lossy"),
    "seqtrans-kbp-L1-bounded1": _seqtrans("kbp", 1, "bounded1"),
    # Factored reliable-channel models (repro.seqtrans.symbolic): L=2 is
    # explicit-comparable, L=10 lives past 2^40 states and replays on the
    # pinned ROBDD backend.
    "seqtrans-symbolic-L2-reliable": _seqtrans_symbolic(2),
    "seqtrans-symbolic-L10-reliable": _seqtrans_symbolic(10),
}


# ----------------------------------------------------------------------
# spec-addressable keys: families parsed from the key itself
# ----------------------------------------------------------------------

#: ``seqtrans-<protocol>-L<length>-<channel token>`` — any length, any
#: channel :func:`~repro.seqtrans.channel_from_key` understands.
_SEQTRANS_KEY = re.compile(
    r"^seqtrans-(?P<protocol>standard|kbp)-L(?P<length>[1-9]\d*)"
    r"-(?P<channel>[a-z_]+\d*)$"
)
_SYMBOLIC_KEY = re.compile(r"^seqtrans-symbolic-L(?P<length>[1-9]\d*)-reliable$")
_KBP24_KEY = re.compile(r"^kbp24-f(?P<free>\d+)$")

#: kbp24 candidate-count ceiling: past 20 free bits even the *replayer*
#: refuses the exhaustive partition (``MAX_CANDIDATE_BITS``), so larger
#: keys could only mint unreplayable certificates.
KBP24_MAX_FREE_BITS = 20


def _dynamic_builder(key: str) -> Optional[Callable[[], Model]]:
    """Resolve a spec-addressable key to a builder, or ``None``.

    The fixed :data:`MODEL_BUILDERS` table wins for its pinned keys;
    everything here is parsed from the key text, so clients can address
    parameterized families — other sequence-transmission lengths and
    channels, deeper factored models, benchmark KBPs — without a registry
    edit.  Malformed parameters raise :class:`CertificateError` naming
    the family's grammar (an unknown key shape returns ``None`` so the
    caller's unknown-key error lists the registry).
    """
    match = _SEQTRANS_KEY.match(key)
    if match is not None:
        try:
            channel_from_key(match["channel"])
        except ValueError as exc:
            raise CertificateError(f"model key {key!r}: {exc}") from None
        return _seqtrans(
            match["protocol"], int(match["length"]), match["channel"]
        )
    match = _SYMBOLIC_KEY.match(key)
    if match is not None:
        return _seqtrans_symbolic(int(match["length"]))
    match = _KBP24_KEY.match(key)
    if match is not None:
        free_bits = int(match["free"])
        if not 1 <= free_bits <= KBP24_MAX_FREE_BITS:
            raise CertificateError(
                f"model key {key!r}: kbp24 free bits must be in "
                f"1..{KBP24_MAX_FREE_BITS} (the space has 24 states and "
                "replay sweeps all 2^free candidates)"
            )
        return _kbp24(free_bits)
    return None


@lru_cache(maxsize=None)
def build_model(key: str) -> Model:
    """Rebuild a registered model from source (cached; backend-agnostic).

    Predicates materialize their exact int mask lazily regardless of the
    backend active at build time, so the cache is safe to share between
    int- and numpy-backend replays.

    Keys resolve in two tiers: the pinned :data:`MODEL_BUILDERS` table
    first, then the spec-addressable families (``seqtrans-standard-L<k>-
    <channel>``, ``seqtrans-kbp-L<k>-<channel>``,
    ``seqtrans-symbolic-L<k>-reliable``, ``kbp24-f<k>``) parsed from the
    key itself — same key, same bytes, wherever it is built.
    """
    builder = MODEL_BUILDERS.get(key)
    if builder is None:
        builder = _dynamic_builder(key)
    if builder is None:
        raise CertificateError(
            f"unknown model key {key!r}; known: {sorted(MODEL_BUILDERS)} "
            "plus the parameterized families seqtrans-standard-L<k>-<channel>, "
            "seqtrans-kbp-L<k>-<channel>, seqtrans-symbolic-L<k>-reliable, "
            "kbp24-f<k>"
        )
    return builder()
