"""Certificate dataclasses and their canonical JSON payloads.

Each class captures *evidence* for one solver verdict, in a form a minimal
independent checker can re-establish with primitive predicate operations
and one-step successor lookups (see :mod:`repro.certificates.replay`):

=========================  =====================================================
kind                       evidence
=========================  =====================================================
``fixpoint``               full Kleene chain of ``f.x = SP.x ∨ p`` from false
``invariant``              an SI chain plus ``[SI ⇒ p]``
``kbp-solve``              per-candidate partition of *all* SI candidates
                           ``⊇ init`` into solutions (resolution + sst chain)
                           and refutations (escape path or closed-set witness)
``leads-to``               ``wlt`` ranking stages ``(helper, X)``
``leads-to-refutation``    a lasso: init→start prefix, ¬q approach, fair trap
``safety-refutation``      a concrete labeled path from init to a ¬p state
``init-nonmonotonic``      two ``kbp-solve`` certificates plus the Figure-2
                           safety and liveness flips
``sp-hat-nonmonotone``     a witness pair ``p ⊆ q`` with ``ŜP.p ⊄ ŜP.q``
``s5``                     per-law witness states / exhaustive re-check
``kbp-spec``               a solved KBP: resolution + chain + (34)/(35)
``spec-check``             a standard protocol's (34)/(35) verdict table
=========================  =====================================================

The classes are dumb containers: emission logic lives in
:mod:`repro.certificates.emit` (and the ``emit_certificate=True`` plumbing
of the solvers), checking logic in :mod:`repro.certificates.replay`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, List, Optional, Tuple

from ..predicates import Predicate
from ..statespace import StateSpace
from .canonical import (
    CertificateError,
    decode_path,
    decode_predicate,
    decode_predicates,
    decode_state,
    encode_path,
    encode_predicate,
    encode_predicates,
)

#: A knowledge-term resolution as serialized data: ``(repr(term), value)``
#: pairs sorted by the term's repr — repr is injective on the expression AST.
ResolutionTable = Tuple[Tuple[str, Predicate], ...]


def encode_resolution(table: ResolutionTable) -> List[List[Any]]:
    return [[key, encode_predicate(value)] for key, value in table]


def decode_resolution(obj: Any, space: StateSpace) -> ResolutionTable:
    if not isinstance(obj, list):
        raise CertificateError("malformed resolution table")
    out = []
    for entry in obj:
        if not isinstance(entry, list) or len(entry) != 2:
            raise CertificateError(f"malformed resolution entry: {entry!r}")
        key, value = entry
        out.append((key, decode_predicate(value, space)))
    return tuple(out)


def resolution_table(resolution: Dict[Any, Predicate]) -> ResolutionTable:
    """Serialize a ``{Knowledge: Predicate}`` map, sorted by term repr."""
    return tuple(sorted((repr(term), p) for term, p in resolution.items()))


# ----------------------------------------------------------------------
# (a) fixpoint certificates — sst / SI
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FixpointCertificate:
    """The Kleene chain establishing ``sst.seed`` (and ``SI`` for seed=init).

    ``chain[0]`` must be false, each link must equal
    ``SP.(previous) ∨ seed``, and the last element must be a fixed point —
    verifiable with one-step images only, and sufficient: the exact orbit
    of the monotone ``f.x = SP.x ∨ seed`` from false ends at the *least*
    fixed point, which is ``sst.seed`` by eq. (3).
    """

    kind: ClassVar[str] = "fixpoint"

    claim: str  # "sst" or "si"
    program: Dict[str, Any]
    seed: Predicate
    chain: Tuple[Predicate, ...]

    @property
    def value(self) -> Predicate:
        return self.chain[-1]

    def to_payload(self) -> Dict[str, Any]:
        return {
            "claim": self.claim,
            "program": self.program,
            "seed": encode_predicate(self.seed),
            "chain": encode_predicates(self.chain),
        }

    @classmethod
    def from_payload(
        cls, payload: Dict[str, Any], space: StateSpace
    ) -> "FixpointCertificate":
        chain = decode_predicates(payload.get("chain"), space)
        if not chain:
            raise CertificateError("fixpoint certificate has an empty chain")
        return cls(
            claim=payload.get("claim", ""),
            program=payload.get("program", {}),
            seed=decode_predicate(payload.get("seed"), space),
            chain=chain,
        )


@dataclass(frozen=True)
class InvariantCertificate:
    """``invariant p`` via eq. (5): an SI chain plus the inclusion check."""

    kind: ClassVar[str] = "invariant"

    si: FixpointCertificate
    predicate: Predicate
    label: str = ""

    def to_payload(self) -> Dict[str, Any]:
        return {
            "si": self.si.to_payload(),
            "predicate": encode_predicate(self.predicate),
            "label": self.label,
        }

    @classmethod
    def from_payload(
        cls, payload: Dict[str, Any], space: StateSpace
    ) -> "InvariantCertificate":
        return cls(
            si=FixpointCertificate.from_payload(payload.get("si", {}), space),
            predicate=decode_predicate(payload.get("predicate"), space),
            label=payload.get("label", ""),
        )


# ----------------------------------------------------------------------
# (b) eq.-(25) solve certificates — solutions and refutations per candidate
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CandidateRefutation:
    """Why one candidate ``x ⊇ init`` fails ``Φ(x) = x``.

    Two witness shapes, both relative to the resolved program ``P_x``
    (whose correctness the replayer re-derives from ``resolution``):

    * ``escape`` — a labeled path from an init state to a state outside
      ``x``: that state is reachable, so ``Φ(x) ⊄ x``;
    * ``unreached`` — a set ``closed ⊇ init`` that every statement maps
      into itself, plus a ``missing`` state in ``x \\ closed``: reachability
      is confined to ``closed``, so ``missing ∉ Φ(x)`` yet ``missing ∈ x``.
    """

    candidate: Predicate
    resolution: ResolutionTable
    witness_kind: str  # "escape" | "unreached"
    path_states: Tuple[int, ...] = ()
    path_statements: Tuple[str, ...] = ()
    closed: Optional[Predicate] = None
    missing: Optional[int] = None

    def to_payload(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "candidate": encode_predicate(self.candidate),
            "resolution": encode_resolution(self.resolution),
            "witness": self.witness_kind,
        }
        if self.witness_kind == "escape":
            out["path"] = encode_path(self.path_states, self.path_statements)
        else:
            out["closed"] = encode_predicate(self.closed)
            out["missing"] = self.missing
        return out

    @classmethod
    def from_payload(
        cls, payload: Dict[str, Any], space: StateSpace
    ) -> "CandidateRefutation":
        witness = payload.get("witness")
        common = dict(
            candidate=decode_predicate(payload.get("candidate"), space),
            resolution=decode_resolution(payload.get("resolution"), space),
            witness_kind=witness,
        )
        if witness == "escape":
            states, statements = decode_path(payload.get("path"), space.size)
            return cls(path_states=states, path_statements=statements, **common)
        if witness == "unreached":
            return cls(
                closed=decode_predicate(payload.get("closed"), space),
                missing=decode_state(payload.get("missing"), space.size),
                **common,
            )
        raise CertificateError(f"unknown refutation witness kind {witness!r}")


@dataclass(frozen=True)
class KbpSolutionEntry:
    """One solution of eq. (25): its resolution and the sst chain of ``P_x``."""

    candidate: Predicate
    resolution: ResolutionTable
    chain: Tuple[Predicate, ...]

    def to_payload(self) -> Dict[str, Any]:
        return {
            "candidate": encode_predicate(self.candidate),
            "resolution": encode_resolution(self.resolution),
            "chain": encode_predicates(self.chain),
        }

    @classmethod
    def from_payload(
        cls, payload: Dict[str, Any], space: StateSpace
    ) -> "KbpSolutionEntry":
        return cls(
            candidate=decode_predicate(payload.get("candidate"), space),
            resolution=decode_resolution(payload.get("resolution"), space),
            chain=decode_predicates(payload.get("chain"), space),
        )


@dataclass(frozen=True)
class KbpSolveCertificate:
    """The full exhaustive eq.-(25) verdict: every candidate accounted for.

    The replayer enumerates all candidates ``⊇ init`` itself and demands
    the solutions and refutations partition them exactly — a truncated
    refutation table (Figure 1's failure mode) is rejected by counting.
    """

    kind: ClassVar[str] = "kbp-solve"

    program: Dict[str, Any]
    init: Predicate
    solutions: Tuple[KbpSolutionEntry, ...]
    refutations: Tuple[CandidateRefutation, ...]

    @property
    def well_posed(self) -> bool:
        return bool(self.solutions)

    def to_payload(self) -> Dict[str, Any]:
        return {
            "program": self.program,
            "init": encode_predicate(self.init),
            "solutions": [s.to_payload() for s in self.solutions],
            "refutations": [r.to_payload() for r in self.refutations],
        }

    @classmethod
    def from_payload(
        cls, payload: Dict[str, Any], space: StateSpace
    ) -> "KbpSolveCertificate":
        return cls(
            program=payload.get("program", {}),
            init=decode_predicate(payload.get("init"), space),
            solutions=tuple(
                KbpSolutionEntry.from_payload(s, space)
                for s in payload.get("solutions", [])
            ),
            refutations=tuple(
                CandidateRefutation.from_payload(r, space)
                for r in payload.get("refutations", [])
            ),
        )


# ----------------------------------------------------------------------
# (d) liveness certificates and refutations
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LeadsToCertificate:
    """``p ↦ q`` via the ranking stages a :func:`wlt` run adjoined.

    Each stage ``(helper, X)`` is checked against the ``Z`` accumulated so
    far: the helper's one step carries every ``X`` state into ``Z``, and no
    statement's step leaves ``X ∨ Z``.  Fairness then gives ``X ↦ Z``, and
    by induction every staged state leads to ``q``.  ``reach`` bounds the
    obligation (states off it are never visited); it is certified either by
    the embedded ``si_chain`` or externally by an enclosing certificate.
    """

    kind: ClassVar[str] = "leads-to"

    program: Dict[str, Any]
    p: Predicate
    q: Predicate
    reach: Predicate
    stages: Tuple[Tuple[str, Predicate], ...]
    si_chain: Optional[Tuple[Predicate, ...]] = None
    label: str = ""

    def to_payload(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "program": self.program,
            "p": encode_predicate(self.p),
            "q": encode_predicate(self.q),
            "reach": encode_predicate(self.reach),
            "stages": [
                [name, encode_predicate(x)] for name, x in self.stages
            ],
            "label": self.label,
        }
        if self.si_chain is not None:
            out["si_chain"] = encode_predicates(self.si_chain)
        return out

    @classmethod
    def from_payload(
        cls, payload: Dict[str, Any], space: StateSpace
    ) -> "LeadsToCertificate":
        raw_stages = payload.get("stages")
        if not isinstance(raw_stages, list):
            raise CertificateError("malformed leads-to stages")
        stages = []
        for entry in raw_stages:
            if not isinstance(entry, list) or len(entry) != 2:
                raise CertificateError(f"malformed stage entry: {entry!r}")
            stages.append((entry[0], decode_predicate(entry[1], space)))
        si_chain = payload.get("si_chain")
        return cls(
            program=payload.get("program", {}),
            p=decode_predicate(payload.get("p"), space),
            q=decode_predicate(payload.get("q"), space),
            reach=decode_predicate(payload.get("reach"), space),
            stages=tuple(stages),
            si_chain=(
                decode_predicates(si_chain, space) if si_chain is not None else None
            ),
            label=payload.get("label", ""),
        )


@dataclass(frozen=True)
class LeadsToRefutationCertificate:
    """``p ↦ q`` fails: a concrete lasso under statement fairness.

    ``prefix`` reaches a ``p ∧ ¬q`` state from init; ``approach`` continues
    inside ``¬q`` to the ``trap`` — a strongly connected ``¬q`` set in
    which every statement has an edge staying inside (so an infinite fair
    run can circulate there forever).
    """

    kind: ClassVar[str] = "leads-to-refutation"

    program: Dict[str, Any]
    p: Predicate
    q: Predicate
    prefix_states: Tuple[int, ...]
    prefix_statements: Tuple[str, ...]
    approach_states: Tuple[int, ...]
    approach_statements: Tuple[str, ...]
    trap: Tuple[int, ...]
    label: str = ""

    def to_payload(self) -> Dict[str, Any]:
        return {
            "program": self.program,
            "p": encode_predicate(self.p),
            "q": encode_predicate(self.q),
            "prefix": encode_path(self.prefix_states, self.prefix_statements),
            "approach": encode_path(self.approach_states, self.approach_statements),
            "trap": list(self.trap),
            "label": self.label,
        }

    @classmethod
    def from_payload(
        cls, payload: Dict[str, Any], space: StateSpace
    ) -> "LeadsToRefutationCertificate":
        prefix = decode_path(payload.get("prefix"), space.size)
        approach = decode_path(payload.get("approach"), space.size)
        trap = payload.get("trap")
        if not isinstance(trap, list) or not trap:
            raise CertificateError("refutation trap must be a non-empty list")
        return cls(
            program=payload.get("program", {}),
            p=decode_predicate(payload.get("p"), space),
            q=decode_predicate(payload.get("q"), space),
            prefix_states=prefix[0],
            prefix_statements=prefix[1],
            approach_states=approach[0],
            approach_statements=approach[1],
            trap=tuple(decode_state(t, space.size) for t in trap),
            label=payload.get("label", ""),
        )


# ----------------------------------------------------------------------
# (e) safety counterexamples
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SafetyRefutationCertificate:
    """``invariant p`` fails: a labeled path from init to a ``¬p`` state."""

    kind: ClassVar[str] = "safety-refutation"

    program: Dict[str, Any]
    predicate: Predicate
    path_states: Tuple[int, ...]
    path_statements: Tuple[str, ...]
    label: str = ""

    def to_payload(self) -> Dict[str, Any]:
        return {
            "program": self.program,
            "predicate": encode_predicate(self.predicate),
            "path": encode_path(self.path_states, self.path_statements),
            "label": self.label,
        }

    @classmethod
    def from_payload(
        cls, payload: Dict[str, Any], space: StateSpace
    ) -> "SafetyRefutationCertificate":
        states, statements = decode_path(payload.get("path"), space.size)
        return cls(
            program=payload.get("program", {}),
            predicate=decode_predicate(payload.get("predicate"), space),
            path_states=states,
            path_statements=statements,
            label=payload.get("label", ""),
        )


# ----------------------------------------------------------------------
# (c) Figure 2 — non-monotonicity of SI in init, with the property flips
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class NonMonotonicityCertificate:
    """Figure 2 in full: ``init_strong ⇒ init_weak`` yet ``si_strong ⇏ si_weak``.

    Both variants carry complete :class:`KbpSolveCertificate` evidence (so
    each SI really is the unique eq.-(25) solution), and the property flips
    ride along: the safety invariant and the liveness property hold under
    the weak init and are concretely refuted under the strong one.
    """

    kind: ClassVar[str] = "init-nonmonotonic"

    program: Dict[str, Any]  # the base program (statements; init immaterial)
    weak: KbpSolveCertificate
    strong: KbpSolveCertificate
    safety_predicate: Optional[Predicate] = None  # e.g. ¬y
    safety_refutation: Optional[SafetyRefutationCertificate] = None
    liveness_target: Optional[Predicate] = None  # e.g. z
    liveness_weak: Optional[LeadsToCertificate] = None
    liveness_refutation: Optional[LeadsToRefutationCertificate] = None

    def to_payload(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "program": self.program,
            "weak": self.weak.to_payload(),
            "strong": self.strong.to_payload(),
        }
        if self.safety_predicate is not None:
            out["safety_predicate"] = encode_predicate(self.safety_predicate)
        if self.safety_refutation is not None:
            out["safety_refutation"] = self.safety_refutation.to_payload()
        if self.liveness_target is not None:
            out["liveness_target"] = encode_predicate(self.liveness_target)
        if self.liveness_weak is not None:
            out["liveness_weak"] = self.liveness_weak.to_payload()
        if self.liveness_refutation is not None:
            out["liveness_refutation"] = self.liveness_refutation.to_payload()
        return out

    @classmethod
    def from_payload(
        cls, payload: Dict[str, Any], space: StateSpace
    ) -> "NonMonotonicityCertificate":
        def opt(key, decoder):
            raw = payload.get(key)
            return decoder(raw) if raw is not None else None

        return cls(
            program=payload.get("program", {}),
            weak=KbpSolveCertificate.from_payload(payload.get("weak", {}), space),
            strong=KbpSolveCertificate.from_payload(
                payload.get("strong", {}), space
            ),
            safety_predicate=opt(
                "safety_predicate", lambda r: decode_predicate(r, space)
            ),
            safety_refutation=opt(
                "safety_refutation",
                lambda r: SafetyRefutationCertificate.from_payload(r, space),
            ),
            liveness_target=opt(
                "liveness_target", lambda r: decode_predicate(r, space)
            ),
            liveness_weak=opt(
                "liveness_weak", lambda r: LeadsToCertificate.from_payload(r, space)
            ),
            liveness_refutation=opt(
                "liveness_refutation",
                lambda r: LeadsToRefutationCertificate.from_payload(r, space),
            ),
        )


# ----------------------------------------------------------------------
# (f) junctivity — ŜP non-monotonicity witness (Figure 1's "culprit")
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SpHatCertificate:
    """``ŜP`` is not monotone: ``p ⊆ q`` yet ``ŜP.p ⊄ ŜP.q``.

    Carries both resolutions (so the replayer can rebuild ``P_p``/``P_q``
    independently), the claimed one-step images, and the witness state in
    ``ŜP.p \\ ŜP.q``.
    """

    kind: ClassVar[str] = "sp-hat-nonmonotone"

    program: Dict[str, Any]
    p: Predicate
    q: Predicate
    resolution_p: ResolutionTable
    resolution_q: ResolutionTable
    image_p: Predicate
    image_q: Predicate
    witness: int

    def to_payload(self) -> Dict[str, Any]:
        return {
            "program": self.program,
            "p": encode_predicate(self.p),
            "q": encode_predicate(self.q),
            "resolution_p": encode_resolution(self.resolution_p),
            "resolution_q": encode_resolution(self.resolution_q),
            "image_p": encode_predicate(self.image_p),
            "image_q": encode_predicate(self.image_q),
            "witness": self.witness,
        }

    @classmethod
    def from_payload(
        cls, payload: Dict[str, Any], space: StateSpace
    ) -> "SpHatCertificate":
        return cls(
            program=payload.get("program", {}),
            p=decode_predicate(payload.get("p"), space),
            q=decode_predicate(payload.get("q"), space),
            resolution_p=decode_resolution(payload.get("resolution_p"), space),
            resolution_q=decode_resolution(payload.get("resolution_q"), space),
            image_p=decode_predicate(payload.get("image_p"), space),
            image_q=decode_predicate(payload.get("image_q"), space),
            witness=decode_state(payload.get("witness"), space.size),
        )


# ----------------------------------------------------------------------
# (f) S5 axiom instances
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class S5Instance:
    """One axiom instance: law, process, verdict, and its witnesses.

    ``verdict == "holds"`` with ``mode == "exhaustive"`` asks the replayer
    to re-enumerate every predicate (guarded by space size); a failing
    instance carries witness predicates plus the state where the law's
    pointwise implication breaks.
    """

    law: str
    process: str
    verdict: str  # "holds" | "fails"
    mode: str  # "exhaustive" | "witness"
    witnesses: Tuple[Predicate, ...] = ()
    witness_state: Optional[int] = None

    def to_payload(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "law": self.law,
            "process": self.process,
            "verdict": self.verdict,
            "mode": self.mode,
            "witnesses": encode_predicates(self.witnesses),
        }
        if self.witness_state is not None:
            out["witness_state"] = self.witness_state
        return out

    @classmethod
    def from_payload(
        cls, payload: Dict[str, Any], space: StateSpace
    ) -> "S5Instance":
        ws = payload.get("witness_state")
        return cls(
            law=payload.get("law", ""),
            process=payload.get("process", ""),
            verdict=payload.get("verdict", ""),
            mode=payload.get("mode", ""),
            witnesses=decode_predicates(payload.get("witnesses", []), space),
            witness_state=(
                decode_state(ws, space.size) if ws is not None else None
            ),
        )


@dataclass(frozen=True)
class S5Certificate:
    """S5/knowledge-law instances for one ``(SI, views)`` knowledge operator."""

    kind: ClassVar[str] = "s5"

    space_sig: str
    views: Tuple[Tuple[str, Tuple[str, ...]], ...]
    si: Predicate
    instances: Tuple[S5Instance, ...]

    def to_payload(self) -> Dict[str, Any]:
        return {
            "space": self.space_sig,
            "views": [[name, list(vars_)] for name, vars_ in self.views],
            "si": encode_predicate(self.si),
            "instances": [i.to_payload() for i in self.instances],
        }

    @classmethod
    def from_payload(
        cls, payload: Dict[str, Any], space: StateSpace
    ) -> "S5Certificate":
        raw_views = payload.get("views", [])
        views = tuple((name, tuple(vars_)) for name, vars_ in raw_views)
        return cls(
            space_sig=payload.get("space", ""),
            views=views,
            si=decode_predicate(payload.get("si"), space),
            instances=tuple(
                S5Instance.from_payload(i, space)
                for i in payload.get("instances", [])
            ),
        )


# ----------------------------------------------------------------------
# composites — the §6 case-study bundles (E8, E13/E15)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class KbpSpecCertificate:
    """A solved KBP with its specification: eq. (25) + (34) + (35).

    The ``solution`` chain certifies the SI of the *resolved* program the
    replayer derives from the recorded resolution; the safety entries are
    inclusion checks against that SI, and the liveness entries' ``reach``
    must equal the solution (they are replayed with the SI as trusted
    reachable set — no second chain needed).
    """

    kind: ClassVar[str] = "kbp-spec"

    program: Dict[str, Any]  # the knowledge-based program
    solution: KbpSolutionEntry
    safety: Tuple[Tuple[str, Predicate], ...]
    liveness: Tuple[LeadsToCertificate, ...]

    def to_payload(self) -> Dict[str, Any]:
        return {
            "program": self.program,
            "solution": self.solution.to_payload(),
            "safety": [
                [label, encode_predicate(p)] for label, p in self.safety
            ],
            "liveness": [c.to_payload() for c in self.liveness],
        }

    @classmethod
    def from_payload(
        cls, payload: Dict[str, Any], space: StateSpace
    ) -> "KbpSpecCertificate":
        raw_safety = payload.get("safety", [])
        return cls(
            program=payload.get("program", {}),
            solution=KbpSolutionEntry.from_payload(
                payload.get("solution", {}), space
            ),
            safety=tuple(
                (label, decode_predicate(p, space)) for label, p in raw_safety
            ),
            liveness=tuple(
                LeadsToCertificate.from_payload(c, space)
                for c in payload.get("liveness", [])
            ),
        )


@dataclass(frozen=True)
class SpecCertificate:
    """A standard protocol's (34)/(35) verdict table with full evidence.

    ``liveness`` mixes positive stage certificates and lasso refutations —
    exactly the E13 channel matrix row for one channel.
    """

    kind: ClassVar[str] = "spec-check"

    program: Dict[str, Any]
    si_chain: Tuple[Predicate, ...]
    safety: Tuple[Tuple[str, Predicate], ...]
    safety_refutations: Tuple[SafetyRefutationCertificate, ...] = ()
    liveness: Tuple[Any, ...] = ()  # LeadsTo / LeadsToRefutation certificates

    @property
    def si(self) -> Predicate:
        return self.si_chain[-1]

    def to_payload(self) -> Dict[str, Any]:
        return {
            "program": self.program,
            "si_chain": encode_predicates(self.si_chain),
            "safety": [
                [label, encode_predicate(p)] for label, p in self.safety
            ],
            "safety_refutations": [
                c.to_payload() for c in self.safety_refutations
            ],
            "liveness": [
                {"kind": c.kind, "payload": c.to_payload()} for c in self.liveness
            ],
        }

    @classmethod
    def from_payload(
        cls, payload: Dict[str, Any], space: StateSpace
    ) -> "SpecCertificate":
        chain = decode_predicates(payload.get("si_chain"), space)
        if not chain:
            raise CertificateError("spec certificate has an empty SI chain")
        liveness: List[Any] = []
        for entry in payload.get("liveness", []):
            if not isinstance(entry, dict) or "kind" not in entry:
                raise CertificateError(f"malformed liveness entry: {entry!r}")
            if entry["kind"] == LeadsToCertificate.kind:
                liveness.append(
                    LeadsToCertificate.from_payload(entry.get("payload", {}), space)
                )
            elif entry["kind"] == LeadsToRefutationCertificate.kind:
                liveness.append(
                    LeadsToRefutationCertificate.from_payload(
                        entry.get("payload", {}), space
                    )
                )
            else:
                raise CertificateError(
                    f"unknown liveness certificate kind {entry['kind']!r}"
                )
        return cls(
            program=payload.get("program", {}),
            si_chain=chain,
            safety=tuple(
                (label, decode_predicate(p, space))
                for label, p in payload.get("safety", [])
            ),
            safety_refutations=tuple(
                SafetyRefutationCertificate.from_payload(c, space)
                for c in payload.get("safety_refutations", [])
            ),
            liveness=tuple(liveness),
        )


#: kind string → certificate class, for envelope decoding.
CERTIFICATE_KINDS: Dict[str, Any] = {
    cls.kind: cls
    for cls in (
        FixpointCertificate,
        InvariantCertificate,
        KbpSolveCertificate,
        LeadsToCertificate,
        LeadsToRefutationCertificate,
        SafetyRefutationCertificate,
        NonMonotonicityCertificate,
        SpHatCertificate,
        S5Certificate,
        KbpSpecCertificate,
        SpecCertificate,
    )
}


def decode_certificate(kind: str, payload: Dict[str, Any], space: StateSpace):
    """Dispatch payload decoding on the envelope's ``kind`` tag."""
    cls = CERTIFICATE_KINDS.get(kind)
    if cls is None:
        raise CertificateError(f"unknown certificate kind {kind!r}")
    return cls.from_payload(payload, space)
