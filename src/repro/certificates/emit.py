"""Certificate emitters: run the real solvers, write replayable artifacts.

Each ``certify_*`` driver reproduces one of the repo's experiment verdicts
(DESIGN.md §4) with ``emit_certificate=True`` plumbing and wraps the
evidence in an artifact envelope:

* :func:`certify_fig1` — E1: Figure 1's eq.-(25) equation has **no
  solution** (full per-candidate refutation table);
* :func:`certify_fig1_sp_hat` — the culprit behind E1: a concrete
  ``p ⊆ q`` with ``ŜP.p ⊄ ŜP.q``;
* :func:`certify_fig2` — E2: SI is non-monotonic in ``init``, with the
  safety and liveness flips certified in both directions;
* :func:`certify_s5` — the S5 laws of ``K_i`` hold (exhaustively) while
  disjunctivity fails with a concrete witness;
* :func:`certify_seqtrans_standard` — E13/E15: the (34)/(35) verdict
  table for one channel, positive obligations as ranking stages and
  failures as concrete lassos (the two liveness algorithms cross-check
  each other during emission);
* :func:`certify_kbp_spec` — E8: the solved KBP meets its specification;
* :func:`certify_fixpoint_invariant` — a bare SI chain + invariant
  inclusion for the reliable-channel protocol;
* :func:`certify_symbolic_fixpoint` — the factored 2^40-state model's SI
  chain and slot-safety invariant, solved and replayed entirely on ROBDD
  handles (DESIGN.md §12);
* :func:`certify_proof_leaves` — the model-checked leads-to leaves
  consumed by the §6.2 proof scripts.

CLI::

    python -m repro.certificates.emit artifacts/ [--backend int|numpy|auto]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.kbp import resolution_at, resolve_at, solve_si, sp_hat
from ..core.knowledge import KnowledgeOperator
from ..core.s5 import (
    check_distribution,
    check_necessitation,
    check_negative_introspection,
    check_positive_introspection,
    check_truth_axiom,
    find_disjunctivity_counterexample,
)
from ..figures.fig1 import fig1_no_solution_report, fig1_program
from ..figures.fig2 import fig2_comparison, fig2_program
from ..predicates import Predicate, using_backend
from ..proofs.modelcheck import labeled_path, refute_leads_to, wlt_stages
from ..seqtrans import SeqTransParams, bounded_loss, build_kbp_protocol
from ..seqtrans.apriori import solve_kbp
from ..seqtrans.proofs_kbp import prove_liveness
from ..seqtrans.spec import SAFETY_LABEL, check_spec, safety_predicate
from ..transformers import check_monotonic, sp_program, sst
from .canonical import CertificateError, program_digest, space_signature
from .certs import (
    FixpointCertificate,
    InvariantCertificate,
    KbpSolutionEntry,
    KbpSpecCertificate,
    LeadsToCertificate,
    LeadsToRefutationCertificate,
    NonMonotonicityCertificate,
    S5Certificate,
    S5Instance,
    SafetyRefutationCertificate,
    SpHatCertificate,
    resolution_table,
)
from .models import build_model
from .store import Artifact, save, wrap

#: (file stem, artifact) pairs; files get the ``.cert.json`` suffix.
Emitted = List[Tuple[str, Artifact]]


def certify_fig1() -> Emitted:
    """E1: the Figure-1 no-solution verdict with its refutation table."""
    report = fig1_no_solution_report(emit_certificate=True)
    if report.well_posed:  # pragma: no cover — would contradict the paper
        raise CertificateError("Figure 1 unexpectedly has a solution")
    return [("fig1-no-solution", wrap(report.certificate, "fig1"))]


def certify_fig1_sp_hat() -> Emitted:
    """The culprit: ``ŜP`` of Figure 1 is not monotone (exhaustive witness)."""
    program = fig1_program()
    counterexample = check_monotonic(sp_hat(program), program.space)
    if counterexample is None:  # pragma: no cover
        raise CertificateError("ŜP of Figure 1 is unexpectedly monotone")
    p, q = counterexample.witnesses
    resolution_p = resolution_at(program, p)
    resolution_q = resolution_at(program, q)
    image_p = sp_program(program.resolve(resolution_p), p)
    image_q = sp_program(program.resolve(resolution_q), q)
    witness = next((image_p & ~image_q).indices())
    certificate = SpHatCertificate(
        program=program_digest(program),
        p=p,
        q=q,
        resolution_p=resolution_table(resolution_p),
        resolution_q=resolution_table(resolution_q),
        image_p=image_p,
        image_q=image_q,
        witness=witness,
    )
    return [("fig1-sp-hat-nonmonotone", wrap(certificate, "fig1"))]


def certify_fig2() -> Emitted:
    """E2: the full Figure-2 bundle — SIs, safety flip, liveness flip."""
    report = fig2_comparison(emit_certificate=True)
    if report.monotonic:  # pragma: no cover
        raise CertificateError("Figure 2 SIs are unexpectedly monotone")
    program = fig2_program()
    space = program.space
    model = build_model("fig2")

    resolved_weak = resolve_at(
        program.with_init(report.init_weak), report.si_weak
    )
    resolved_strong = resolve_at(
        program.with_init(report.init_strong), report.si_strong
    )

    safety = model.extras["safety"]
    if not report.si_weak.entails(safety):  # pragma: no cover
        raise CertificateError("Figure 2 safety fails even under the weak init")
    violation_path = labeled_path(
        resolved_strong, report.init_strong.mask, (~safety).mask
    )
    if violation_path is None:  # pragma: no cover
        raise CertificateError("Figure 2 safety flip did not materialize")
    safety_refutation = SafetyRefutationCertificate(
        program=program_digest(resolved_strong),
        predicate=safety,
        path_states=violation_path[0],
        path_statements=violation_path[1],
        label="invariant ¬y (strong init)",
    )

    target = model.extras["liveness_target"]
    everywhere = Predicate.true(space)
    weak_wlt = wlt_stages(resolved_weak, target, report.si_weak)
    if not everywhere.entails(weak_wlt.value):  # pragma: no cover
        raise CertificateError("true ↦ z fails under Figure 2's weak init")
    liveness_weak = LeadsToCertificate(
        program=program_digest(resolved_weak),
        p=everywhere,
        q=target,
        reach=report.si_weak,
        stages=weak_wlt.stages,
        label="true ↦ z (weak init)",
    )
    refutation = refute_leads_to(
        resolved_strong, everywhere, target, report.si_strong, emit_witness=True
    )
    if refutation is None:  # pragma: no cover
        raise CertificateError("true ↦ z unexpectedly holds under strong init")
    liveness_refutation = LeadsToRefutationCertificate(
        program=program_digest(resolved_strong),
        p=everywhere,
        q=target,
        prefix_states=refutation.prefix_states,
        prefix_statements=refutation.prefix_statements,
        approach_states=refutation.approach_states,
        approach_statements=refutation.approach_statements,
        trap=refutation.trap,
        label="true ↦ z (strong init)",
    )

    certificate = NonMonotonicityCertificate(
        program=program_digest(program),
        weak=report.certificate_weak,
        strong=report.certificate_strong,
        safety_predicate=safety,
        safety_refutation=safety_refutation,
        liveness_target=target,
        liveness_weak=liveness_weak,
        liveness_refutation=liveness_refutation,
    )
    return [("fig2-init-nonmonotonic", wrap(certificate, "fig2"))]


#: replay-law key → the s5 checker that proves it exhaustively.
_S5_CHECKERS = (
    ("truth", check_truth_axiom),
    ("distribution", check_distribution),
    ("positive-introspection", check_positive_introspection),
    ("negative-introspection", check_negative_introspection),
    ("necessitation", check_necessitation),
)


def certify_s5() -> Emitted:
    """The S5 laws of eq. (13)'s ``K_i`` on Figure 2's knowledge operator."""
    program = fig2_program()
    space = program.space
    si = solve_si(program).strongest()
    views = {p.name: p.variables for p in program.processes.values()}
    operator = KnowledgeOperator(space, si, views)
    instances: List[S5Instance] = []
    for process in sorted(views):
        for law, checker in _S5_CHECKERS:
            violation = checker(operator, process)
            if violation is not None:  # pragma: no cover
                raise CertificateError(f"S5 law {law} fails: {violation}")
            instances.append(
                S5Instance(
                    law=law, process=process, verdict="holds", mode="exhaustive"
                )
            )
        pair = find_disjunctivity_counterexample(operator, process)
        if pair is None:
            instances.append(
                S5Instance(
                    law="disjunctivity",
                    process=process,
                    verdict="holds",
                    mode="exhaustive",
                )
            )
            continue
        p, q = pair
        broken = (
            operator.knows(process, p) | operator.knows(process, q)
        ) ^ operator.knows(process, p | q)
        instances.append(
            S5Instance(
                law="disjunctivity",
                process=process,
                verdict="fails",
                mode="witness",
                witnesses=(p, q),
                witness_state=next(broken.indices()),
            )
        )
    certificate = S5Certificate(
        space_sig=space_signature(space),
        views=tuple(
            (name, tuple(sorted(variables)))
            for name, variables in sorted(views.items())
        ),
        si=si,
        instances=tuple(instances),
    )
    return [("fig2-s5", wrap(certificate, "fig2"))]


def certify_seqtrans_standard(channel_key: str) -> Emitted:
    """E13/E15: one channel's (34)/(35) verdict table with full evidence."""
    key = f"seqtrans-standard-L1-{channel_key}"
    model = build_model(key)
    report = check_spec(
        model.program, SeqTransParams(length=1), emit_certificate=True
    )
    return [(f"{key}-spec", wrap(report.certificate, key))]


def certify_kbp_spec() -> Emitted:
    """E8: the solved Figure-3 KBP meets its specification."""
    params = SeqTransParams(length=1)
    channel = bounded_loss(1)
    solution = solve_kbp(params, channel)
    if solution is None:  # pragma: no cover
        raise CertificateError("Φ-iteration for the Figure-3 KBP diverged")
    kb = build_kbp_protocol(params, channel)
    resolution = resolution_at(kb, solution.si)
    resolved = kb.resolve(resolution)
    report = check_spec(resolved, params, si=solution.si, emit_certificate=True)
    if not report.satisfied:  # pragma: no cover
        raise CertificateError("the solved KBP fails its own specification")
    spec_cert = report.certificate
    certificate = KbpSpecCertificate(
        program=program_digest(kb),
        solution=KbpSolutionEntry(
            candidate=solution.si,
            resolution=resolution_table(resolution),
            chain=spec_cert.si_chain,
        ),
        safety=spec_cert.safety,
        liveness=spec_cert.liveness,
    )
    key = "seqtrans-kbp-L1-bounded1"
    return [(f"{key}-spec", wrap(certificate, key))]


def certify_fixpoint_invariant() -> Emitted:
    """A bare SI chain and (34) invariant for the reliable-channel protocol."""
    key = "seqtrans-standard-L1-reliable"
    model = build_model(key)
    program = model.program
    result = sst(program, program.init)
    fixpoint = FixpointCertificate(
        claim="si",
        program=program_digest(program),
        seed=program.init,
        chain=result.chain,
    )
    invariant = InvariantCertificate(
        si=fixpoint,
        predicate=safety_predicate(program.space),
        label=SAFETY_LABEL,
    )
    return [
        (f"{key}-si", wrap(fixpoint, key)),
        (f"{key}-safety-invariant", wrap(invariant, key)),
    ]


def certify_symbolic_fixpoint() -> Emitted:
    """The 2^40-state factored model's SI chain + slot-safety invariant.

    Runs under the ``"auto"`` policy regardless of the ambient backend:
    past the explicit-state limit only the ROBDD backend can represent
    the predicates at all, so forcing ``int``/``numpy`` here could only
    ever fail with the size guard — the artifact is what demonstrates
    the symbolic escape hatch.
    """
    key = "seqtrans-symbolic-L10-reliable"
    with using_backend("auto"):
        model = build_model(key)
        program = model.program
        result = sst(program, program.init)
        fixpoint = FixpointCertificate(
            claim="si",
            program=program_digest(program),
            seed=program.init,
            chain=result.chain,
        )
        label, safety = model.safety_obligations[0]
        if not result.predicate.entails(safety):  # pragma: no cover
            raise CertificateError(
                "slot safety fails on the factored model's fixpoint"
            )
        invariant = InvariantCertificate(
            si=fixpoint, predicate=safety, label=label
        )
        return [
            (f"{key}-si", wrap(fixpoint, key)),
            (f"{key}-safety-invariant", wrap(invariant, key)),
        ]


def certify_proof_leaves() -> Emitted:
    """The model-checked leads-to leaves of the §6.2 liveness derivation."""
    key = "seqtrans-standard-L1-bounded1"
    model = build_model(key)
    proofs = prove_liveness(
        model.program, SeqTransParams(length=1), emit_certificates=True
    )
    if not proofs.certificates:  # pragma: no cover
        raise CertificateError("the proof script checked no leads-to leaves")
    return [
        (f"{key}-proof-leaf-{i}", wrap(certificate, key))
        for i, certificate in enumerate(proofs.certificates)
    ]


EMITTERS: Dict[str, Callable[[], Emitted]] = {
    "fig1": certify_fig1,
    "fig1-sp-hat": certify_fig1_sp_hat,
    "fig2": certify_fig2,
    "s5": certify_s5,
    "seqtrans-reliable": lambda: certify_seqtrans_standard("reliable"),
    "seqtrans-bounded1": lambda: certify_seqtrans_standard("bounded1"),
    "seqtrans-lossy": lambda: certify_seqtrans_standard("lossy"),
    "kbp-spec": certify_kbp_spec,
    "fixpoint-invariant": certify_fixpoint_invariant,
    "symbolic-fixpoint": certify_symbolic_fixpoint,
    "proof-leaves": certify_proof_leaves,
}


def emit_all(
    directory, only: Optional[Sequence[str]] = None, verbose: bool = False
) -> List[Path]:
    """Run the selected emitters and write their artifacts under ``directory``."""
    names = list(only) if only else list(EMITTERS)
    unknown = [n for n in names if n not in EMITTERS]
    if unknown:
        raise CertificateError(
            f"unknown emitters {unknown}; known: {sorted(EMITTERS)}"
        )
    root = Path(directory)
    written: List[Path] = []
    for name in names:
        for stem, artifact in EMITTERS[name]():
            path = save(artifact, root / f"{stem}.cert.json")
            written.append(path)
            if verbose:
                print(f"wrote {path} ({artifact.kind} [{artifact.model}])")
    return written


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.certificates.emit",
        description="Run the solvers and write certificate artifacts.",
    )
    parser.add_argument("artifacts", help="output directory for *.cert.json files")
    parser.add_argument(
        "--backend",
        choices=["int", "numpy", "robdd", "auto"],
        default=None,
        help="predicate backend the solvers run under (artifacts are "
        "backend-independent: predicates serialize by fingerprint)",
    )
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        metavar="EMITTER",
        help=f"restrict to these emitters (choices: {', '.join(sorted(EMITTERS))})",
    )
    args = parser.parse_args(argv)

    def run() -> int:
        try:
            written = emit_all(args.artifacts, only=args.only, verbose=True)
        except CertificateError as exc:
            print(f"emission failed: {exc}", file=sys.stderr)
            return 1
        print(f"{len(written)} artifacts written to {args.artifacts}")
        return 0

    if args.backend is not None:
        with using_backend(args.backend):
            return run()
    return run()


if __name__ == "__main__":  # pragma: no cover — exercised via CLI tests
    sys.exit(main())
