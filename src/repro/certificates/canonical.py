"""Canonical JSON encoding for certificate payloads.

Every certificate serializes to a *canonical* JSON document: sorted keys,
no whitespace, predicates keyed by their :meth:`Predicate.fingerprint`
(little-endian mask bytes, identical across backends).  Canonicality makes
the payload digest well-defined: an artifact envelope stores
``sha256(canonical_json(payload))``, so any byte of tampering that does not
also recompute the digest is rejected before replay even starts, and a
tamperer who *does* fix the digest still has to get past the semantic
replay checks.

Nothing in this module runs a solver; it is shared by the emitters and the
replayer.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..predicates import Predicate, limits
from ..statespace import StateSpace
from ..unity import Program

#: Artifact envelope format tag; bump on incompatible payload changes.
CERT_FORMAT = "repro-certificate/v1"


class CertificateError(Exception):
    """A certificate failed to parse, verify, or replay."""


def canonical_dumps(payload: Any) -> str:
    """The canonical JSON text of a payload (sorted keys, no whitespace)."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def payload_digest(payload: Any) -> str:
    """``sha256:<hex>`` over the canonical JSON of ``payload``."""
    text = canonical_dumps(payload).encode("ascii")
    return "sha256:" + hashlib.sha256(text).hexdigest()


# ----------------------------------------------------------------------
# predicates
# ----------------------------------------------------------------------


def encode_predicate(p: Predicate) -> Dict[str, Any]:
    """A predicate as ``{"size", "bits"}`` — bits is the fingerprint hex.

    Past the explicit-state limit a bitmask is unrepresentable; the
    predicate is encoded structurally instead as ``{"size", "robdd"}`` —
    the canonical reduced-node list of its ROBDD (dense postorder
    renumbering, so equal predicates encode identically).  Below the limit
    the encoding is byte-identical to what explicit backends always
    produced.
    """
    size = p.space.size
    if size > limits.get_limit("explicit"):
        from ..predicates.backends import get_backend

        bk = get_backend("robdd")
        return {"size": size, "robdd": bk.serialize(p.handle(bk))}
    return {"size": size, "bits": p.fingerprint().hex()}


def decode_predicate(obj: Any, space: StateSpace) -> Predicate:
    """Rebuild a predicate, rejecting any mismatch with ``space``."""
    if not isinstance(obj, dict) or "size" not in obj:
        raise CertificateError(f"malformed predicate encoding: {obj!r}")
    if obj["size"] != space.size:
        raise CertificateError(
            f"predicate encoded over {obj['size']} states; expected {space.size}"
        )
    if "robdd" in obj:
        from ..predicates.backends import get_backend

        bk = get_backend("robdd")
        try:
            handle = bk.deserialize(space, obj["robdd"])
        except ValueError as exc:
            raise CertificateError(
                f"malformed robdd predicate encoding: {exc}"
            ) from None
        return bk.wrap(space, handle)
    if "bits" not in obj:
        raise CertificateError(f"malformed predicate encoding: {obj!r}")
    if space.size > limits.get_limit("explicit"):
        raise CertificateError(
            f"predicate over {space.size} states encoded as an explicit "
            "bitmask; symbolic-scale certificates must use the 'robdd' "
            "encoding"
        )
    try:
        raw = bytes.fromhex(obj["bits"])
    except (ValueError, TypeError) as exc:
        raise CertificateError(f"predicate bits are not hex: {exc}") from None
    try:
        return Predicate.from_fingerprint(space, raw)
    except ValueError as exc:
        raise CertificateError(str(exc)) from None


def encode_predicates(ps: Sequence[Predicate]) -> List[Dict[str, Any]]:
    return [encode_predicate(p) for p in ps]


def decode_predicates(objs: Any, space: StateSpace) -> Tuple[Predicate, ...]:
    if not isinstance(objs, list):
        raise CertificateError("expected a list of predicate encodings")
    return tuple(decode_predicate(o, space) for o in objs)


# ----------------------------------------------------------------------
# state spaces and programs
# ----------------------------------------------------------------------


def space_signature(space: StateSpace) -> str:
    """A stable textual identity: variable names, domains, and state count."""
    vars_sig = ";".join(f"{v.name}:{v.domain.name}" for v in space.variables)
    return f"{vars_sig}#{space.size}"


def program_digest(program: Program) -> Dict[str, Any]:
    """What a certificate pins about the program it talks about.

    Name, space signature, statement names (in program order), and the
    fingerprint of ``init``.  The replayer refuses to check a certificate
    against a program with a different digest — in particular, swapping the
    recorded initial condition is caught here.
    """
    return {
        "name": program.name,
        "space": space_signature(program.space),
        "statements": [s.name for s in program.statements],
        "init": encode_predicate(program.init),
    }


def check_program_digest(digest: Any, program: Program) -> None:
    """Raise :class:`CertificateError` unless ``digest`` matches ``program``."""
    expected = program_digest(program)
    if not isinstance(digest, dict):
        raise CertificateError("malformed program digest")
    for key in ("name", "space", "statements"):
        if digest.get(key) != expected[key]:
            raise CertificateError(
                f"program digest mismatch on {key!r}: certificate has "
                f"{digest.get(key)!r}, program has {expected[key]!r}"
            )
    recorded_init = decode_predicate(digest.get("init"), program.space)
    if not recorded_init == program.init:
        raise CertificateError(
            "program digest mismatch on init: the certificate was issued for "
            "a different initial condition"
        )


# ----------------------------------------------------------------------
# paths and small structures
# ----------------------------------------------------------------------


def encode_path(
    states: Sequence[int], statements: Sequence[str]
) -> Dict[str, Any]:
    return {"states": list(states), "statements": list(statements)}


def decode_path(obj: Any, size: int) -> Tuple[Tuple[int, ...], Tuple[str, ...]]:
    if (
        not isinstance(obj, dict)
        or not isinstance(obj.get("states"), list)
        or not isinstance(obj.get("statements"), list)
    ):
        raise CertificateError(f"malformed path encoding: {obj!r}")
    states = tuple(obj["states"])
    statements = tuple(obj["statements"])
    for s in states:
        if not isinstance(s, int) or not 0 <= s < size:
            raise CertificateError(f"path state index {s!r} out of range")
    if states and len(statements) != len(states) - 1:
        raise CertificateError(
            f"path has {len(states)} states but {len(statements)} statement labels"
        )
    return states, statements


def decode_state(obj: Any, size: int) -> int:
    if not isinstance(obj, int) or not 0 <= obj < size:
        raise CertificateError(f"state index {obj!r} out of range")
    return obj
