"""Artifact envelopes: wrapping, saving, and loading certificates.

An artifact on disk is one JSON document::

    {
      "format": "repro-certificate/v1",
      "kind":   "<certificate kind>",
      "model":  "<model registry key>",
      "digest": "sha256:<hex of canonical payload JSON>",
      "payload": { ... }
    }

Loading re-canonicalizes the payload and recomputes the digest; a mismatch
(any tampering that did not also forge the digest) is rejected before the
payload is even decoded.  Decoding then validates every fingerprint, state
index, and path shape.  Neither step trusts the artifact's claims — the
semantic checks live in :mod:`repro.certificates.replay`.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Union

from .canonical import CERT_FORMAT, CertificateError, canonical_dumps, payload_digest
from .certs import CERTIFICATE_KINDS


@dataclass(frozen=True)
class Artifact:
    """A certificate envelope, still in wire form (payload undecoded)."""

    kind: str
    model: str
    payload: Dict[str, Any]

    def to_document(self) -> Dict[str, Any]:
        return {
            "format": CERT_FORMAT,
            "kind": self.kind,
            "model": self.model,
            "digest": payload_digest(self.payload),
            "payload": self.payload,
        }

    def dumps(self) -> str:
        return canonical_dumps(self.to_document())


def wrap(certificate: Any, model: str) -> Artifact:
    """Envelope a certificate object for a registered model key."""
    kind = getattr(type(certificate), "kind", None)
    if kind not in CERTIFICATE_KINDS:
        raise CertificateError(
            f"{type(certificate).__name__} is not a registered certificate class"
        )
    return Artifact(kind=kind, model=model, payload=certificate.to_payload())


def parse_document(doc: Any) -> Artifact:
    """Validate an envelope document and verify its payload digest."""
    if not isinstance(doc, dict):
        raise CertificateError("artifact is not a JSON object")
    if doc.get("format") != CERT_FORMAT:
        raise CertificateError(
            f"unsupported artifact format {doc.get('format')!r}; "
            f"expected {CERT_FORMAT!r}"
        )
    kind = doc.get("kind")
    if kind not in CERTIFICATE_KINDS:
        raise CertificateError(f"unknown certificate kind {kind!r}")
    model = doc.get("model")
    if not isinstance(model, str) or not model:
        raise CertificateError("artifact is missing its model key")
    payload = doc.get("payload")
    if not isinstance(payload, dict):
        raise CertificateError("artifact payload is not a JSON object")
    expected = payload_digest(payload)
    if doc.get("digest") != expected:
        raise CertificateError(
            f"payload digest mismatch: artifact says {doc.get('digest')!r}, "
            f"canonical payload hashes to {expected!r} — artifact was tampered "
            "with or corrupted"
        )
    return Artifact(kind=kind, model=model, payload=payload)


class TruncatedArtifactError(CertificateError):
    """The artifact ends mid-document: a partial write, not mere damage.

    Distinguished from generic corruption because the remedy differs — a
    truncated artifact usually means its emitter was killed mid-write, so
    the fix is re-emitting (or resuming the solve that produces it), not
    investigating tampering.  The replay CLI maps this to its own exit
    code (:data:`repro.certificates.replay.EXIT_TRUNCATED`).
    """


def loads(text: str) -> Artifact:
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        # A parse error *at the end* of the text means the document simply
        # stops — the signature of a torn write; errors strictly inside the
        # text are corruption of some other sort.  An unterminated string
        # reports the position of its opening quote, so it must be named
        # explicitly even though the damage is at the end.
        truncated = (
            not text.strip()
            or exc.pos >= len(text.rstrip())
            or exc.msg.startswith("Unterminated string")
        )
        if truncated:
            raise TruncatedArtifactError(
                "artifact is truncated (JSON document ends "
                f"mid-structure at byte {exc.pos}): the file was partially "
                "written — re-emit it rather than trusting a prefix"
            ) from None
        raise CertificateError(f"artifact is not valid JSON: {exc}") from None
    return parse_document(doc)


def save(artifact: Artifact, path: Union[str, Path]) -> Path:
    """Write an artifact, deduplicating by content.

    If the destination already holds byte-identical text the write is
    skipped entirely — artifacts are canonical JSON, so equal text is
    equal digest, and re-emitting an unchanged certificate must not
    churn mtimes (the service cache and rsync-style syncs key on them).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = artifact.dumps() + "\n"
    if path.exists():
        try:
            if path.read_text(encoding="ascii") == text:
                return path
        except (OSError, UnicodeDecodeError):
            pass  # unreadable or non-ascii: overwrite with the good bytes
    path.write_text(text, encoding="ascii")
    return path


def load(path: Union[str, Path]) -> Artifact:
    return loads(Path(path).read_text(encoding="ascii"))


def iter_artifacts(directory: Union[str, Path]) -> Iterator[Path]:
    """All ``*.cert.json`` files under a directory, sorted for determinism."""
    root = Path(directory)
    if not root.is_dir():
        raise CertificateError(f"{root} is not a directory")
    return iter(sorted(root.rglob("*.cert.json")))


class ForeignArtifactWarning(UserWarning):
    """A ``*.cert.json`` file that is well-formed JSON but no certificate."""


def scan_artifacts(directory: Union[str, Path]) -> Iterator[Path]:
    """Like :func:`iter_artifacts`, but skip foreign JSON files with a warning.

    Directories accumulate strays — editor scratch files, tool output,
    metadata — and a batch replay should not hard-fail on a parseable JSON
    document that never claimed to be a certificate.  A file is *foreign*
    when it parses as JSON but is not an envelope (not an object, or its
    ``format`` is not :data:`~repro.certificates.canonical.CERT_FORMAT`);
    those are skipped with a :class:`ForeignArtifactWarning`.  Anything
    that does claim the format — including tampered or truncated files,
    and files that are not JSON at all — is yielded so the loader can
    reject it loudly: damage must never be silently ignored.
    """
    for path in iter_artifacts(directory):
        try:
            doc = json.loads(path.read_text(encoding="ascii"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            yield path  # unreadable/damaged: the loader classifies it
            continue
        if not isinstance(doc, dict) or doc.get("format") != CERT_FORMAT:
            claimed = doc.get("format") if isinstance(doc, dict) else None
            warnings.warn(
                f"{path} is JSON but not a certificate envelope "
                f"(format={claimed!r}); skipping",
                ForeignArtifactWarning,
                stacklevel=2,
            )
            continue
        yield path
