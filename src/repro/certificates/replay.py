"""The independent replay checker.

This module re-establishes every certified verdict **without** the solvers:
no ``sst``, no ``wlt``, no ``solve_si``, no proof kernel.  Its entire
trusted base is

* primitive :class:`Predicate` operations (``&``, ``|``, ``~``, ``entails``,
  ``holds_at``) and the ``wcyl`` cylinder — pinned to the exact ``int``
  backend for the duration of every replay (models past the explicit-state
  limit pin the ROBDD backend instead — see :func:`replay_artifact`);
* one-step successor lookup (``Program.successor_array``) — the program
  *text*, not a transformer;
* the model registry, which rebuilds the named program from source and
  compares its digest against what the certificate claims to be about.

Soundness sketches (full argument in DESIGN.md §8):

* **Kleene chains** — a chain starting at ``false`` whose every link is
  exactly ``SP.(previous) ∨ seed`` and whose last element is a fixed point
  is the orbit of ``f.x = SP.x ∨ seed``; its endpoint is therefore the
  *least* fixed point, i.e. ``sst.seed`` (eq. 3).  No monotonicity
  assumption is needed: the orbit is recomputed exactly.
* **eq.-(25) partitions** — the checker enumerates all candidates ``⊇
  init`` itself and demands each be either a verified solution (resolution
  correct per eq. 13, chain endpoint equal to the candidate) or concretely
  refuted (an escape path to a reachable state outside the candidate, or a
  closed superset of init missing a candidate state).  A truncated table
  cannot cover the enumeration; a padded one collides.
* **ranking stages** — each stage ``(a, X)`` with ``X`` carried into the
  accumulated target by ``a`` and confined to ``X ∨ Z`` by every statement
  satisfies ``X ensures Z``; fairness then yields ``X ↦ Z`` and induction
  over stages extends this to everything staged.
* **lassos** — a labeled path from ``init`` to a ``p``-state, a ``¬q``
  continuation into a *trap* (strongly connected, inside ``¬q``, with a
  stay-edge for every statement — a singleton must be fixed by all), which
  supports an infinite fair run avoiding ``q`` by walking to each
  statement's stay-state before firing it.
* **eq.-(13) resolutions** — recomputed innermost-first with the ``wcyl``
  primitive and pointwise expression evaluation; a certificate's recorded
  resolution must match bit for bit before its resolved program is built.

Why the ``int`` backend: the checker's job is to be a *small, exact*
trusted base.  Replaying on the packed-word backend would re-admit the very
kernels the certificates are meant to guard; integer bitmask arithmetic in
CPython has no such fast path to trust.  Artifacts emitted under any
backend replay identically because predicates serialize by fingerprint.

CLI::

    python -m repro.certificates.replay artifacts/
    python -m repro.certificates.replay artifacts/ --journal solve.journal
    python -m repro.certificates.replay artifacts/ --json

Exit codes (machine contract, stable across releases):

* ``0`` — every artifact (and journal) verified; all verdicts
  re-established.
* ``1`` — at least one artifact or journal was **rejected** (semantic
  failure, tampering, digest mismatch) or no artifacts were found.
* ``2`` — usage error (argparse's convention: bad flags/arguments).
* ``3`` — at least one artifact is **truncated** (partially written);
  truncation dominates rejection because the remedy differs — re-emit,
  don't investigate.  (:data:`EXIT_TRUNCATED`)

``--json`` replaces the human-readable lines with one JSON document on
stdout — ``{"artifacts": [...], "journals": [...], "summary": {...}}`` —
so callers (the service client's untrusting-verify loop among them) can
consume outcomes programmatically.  The exit code is unchanged and also
recorded in ``summary.exit_code``.

Directory scans tolerate strays: a ``*.cert.json`` file that parses as
JSON but is not a certificate envelope is skipped with a warning
(:func:`repro.certificates.store.scan_artifacts`) instead of failing the
whole batch; damaged or tampered envelopes still fail loudly.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..predicates import Predicate, limits, using_backend, wcyl
from ..unity import Program
from .canonical import (
    CertificateError,
    check_program_digest,
    space_signature,
)
from .certs import (
    CandidateRefutation,
    FixpointCertificate,
    InvariantCertificate,
    KbpSolveCertificate,
    KbpSpecCertificate,
    LeadsToCertificate,
    LeadsToRefutationCertificate,
    NonMonotonicityCertificate,
    S5Certificate,
    S5Instance,
    SafetyRefutationCertificate,
    SpHatCertificate,
    SpecCertificate,
    decode_certificate,
)
from .models import Model, build_model
from .store import Artifact, TruncatedArtifactError, load, scan_artifacts

#: Exhaustive enumerations (candidate sweeps, S5 predicate sweeps) refuse
#: to run past these sizes — replay is meant for the paper-scale models.
MAX_CANDIDATE_BITS = 20
MAX_S5_STATES = 8

#: Exit status for artifacts that end mid-document (partial writes).  Kept
#: distinct from 1 (semantic rejection) so callers can tell "this evidence
#: is wrong" from "this evidence never finished being written".
EXIT_TRUNCATED = 3


@dataclass(frozen=True)
class ReplayOutcome:
    """A successfully re-established verdict."""

    kind: str
    model: str
    verdict: str
    details: Dict[str, Any] = field(default_factory=dict)


# ----------------------------------------------------------------------
# primitive machinery: images, chains, paths, traps, stages
# ----------------------------------------------------------------------


def _iter_bits(mask: int) -> Iterable[int]:
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def _arrays(program: Program) -> List[Tuple[str, List[int]]]:
    return [(s.name, program.successor_array(s)) for s in program.statements]


def _image(program: Program, p: Predicate) -> Predicate:
    """One-step strongest postcondition from successor lookups only.

    Past the explicit-state limit the per-state loop is unrepresentable;
    the image is taken through the ROBDD backend's statement relations
    instead (relational product + quantify).  This grows the symbolic
    replay's trusted base to the BDD kernels — unavoidable, since explicit
    arithmetic cannot even hold one predicate of such a space.
    """
    space = program.space
    if space.size > limits.get_limit("explicit"):
        from ..predicates.backends import get_backend

        bk = get_backend("robdd")
        handle = p.handle(bk)
        acc = bk.constant(space, False)
        for stmt in program.statements:
            table = program.kernel_table(bk, stmt)
            acc = bk.or_(acc, bk.image(handle, table, space.size), space.size)
        return bk.wrap(space, acc)
    out = 0
    pm = p.mask
    for _, array in _arrays(program):
        for i in _iter_bits(pm):
            out |= 1 << array[i]
    return Predicate(program.space, out)


def _check_chain(
    program: Program, seed: Predicate, chain: Sequence[Predicate], what: str
) -> Predicate:
    """Verify a Kleene chain of ``f.x = SP.x ∨ seed``; return its endpoint.

    The endpoint is then *provably* ``sst.seed``: the chain is the exact
    orbit of ``f`` from false, and an orbit that reaches a fixed point
    reaches the least one.

    Links are verified *incrementally*: since ``SP`` distributes over
    ``∨``, ``SP.xₖ = SP.xₖ₋₁ ∨ SP.(xₖ ∖ xₖ₋₁)`` — each step images only
    the frontier.  That is sound only for ascending chains, so ascension
    is checked first; every genuine orbit of ``f.x = SP.x ∨ seed``
    ascends (by induction from ``false``), so nothing valid is rejected.
    """
    if not chain:
        raise CertificateError(f"{what}: empty chain")
    if not chain[0].is_false():
        raise CertificateError(f"{what}: chain must start at false")
    for k in range(len(chain) - 1):
        if not chain[k].entails(chain[k + 1]):
            raise CertificateError(
                f"{what}: link {k + 1} is not a superset of link {k} — "
                "a genuine Kleene orbit ascends"
            )
    prev = chain[0]
    prev_sp = _image(program, prev)
    for k in range(len(chain) - 1):
        if k > 0:
            prev_sp = prev_sp | _image(program, chain[k] - prev)
            prev = chain[k]
        expected = prev_sp | seed
        if not expected == chain[k + 1]:
            raise CertificateError(
                f"{what}: link {k + 1} is not SP∨seed of link {k} — "
                "chain step dropped or edited"
            )
    last = chain[-1]
    if len(chain) > 1:
        prev_sp = prev_sp | _image(program, last - prev)
    if not (prev_sp | seed) == last:
        raise CertificateError(f"{what}: chain endpoint is not a fixed point")
    return last


def _check_path(
    program: Program,
    states: Sequence[int],
    statements: Sequence[str],
    start_in: Optional[Predicate] = None,
    what: str = "path",
) -> None:
    if not states:
        raise CertificateError(f"{what}: empty state path")
    if len(statements) != len(states) - 1:
        raise CertificateError(f"{what}: label count does not match path length")
    if start_in is not None and not start_in.holds_at(states[0]):
        raise CertificateError(
            f"{what}: does not start in the required set (state {states[0]})"
        )
    amap = {name: array for name, array in _arrays(program)}
    for step, name in enumerate(statements):
        array = amap.get(name)
        if array is None:
            raise CertificateError(f"{what}: unknown statement {name!r}")
        if array[states[step]] != states[step + 1]:
            raise CertificateError(
                f"{what}: step {step} ({name}) does not map state "
                f"{states[step]} to {states[step + 1]}"
            )


def _check_trap(
    program: Program, trap: Sequence[int], q: Predicate, what: str
) -> None:
    """A trap supports an infinite fair run avoiding ``q``.

    For ``|T| ≥ 2``: strongly connected inside ``T`` (union graph) and
    every statement has a stay-edge — the fair run walks to that statement's
    stay-state before firing it.  A singleton must be fixed by *every*
    statement (each firing must stay put).
    """
    members = set(trap)
    if len(members) != len(trap):
        raise CertificateError(f"{what}: duplicate trap states")
    qm = q.mask
    for t in trap:
        if (qm >> t) & 1:
            raise CertificateError(f"{what}: trap state {t} satisfies q")
    arrays = _arrays(program)
    if len(members) == 1:
        t = trap[0]
        for name, array in arrays:
            if array[t] != t:
                raise CertificateError(
                    f"{what}: statement {name} moves the singleton trap"
                )
        return
    for name, array in arrays:
        if not any(array[i] in members for i in members):
            raise CertificateError(
                f"{what}: statement {name} always exits the trap"
            )
    forward: Dict[int, set] = {i: set() for i in members}
    backward: Dict[int, set] = {i: set() for i in members}
    for _, array in arrays:
        for i in members:
            j = array[i]
            if j in members:
                forward[i].add(j)
                backward[j].add(i)
    for graph in (forward, backward):
        seen = {trap[0]}
        stack = [trap[0]]
        while stack:
            for j in graph[stack.pop()]:
                if j not in seen:
                    seen.add(j)
                    stack.append(j)
        if seen != members:
            raise CertificateError(f"{what}: trap is not strongly connected")


def _check_stages(
    program: Program,
    p: Predicate,
    q: Predicate,
    reach: Predicate,
    stages: Sequence[Tuple[str, Predicate]],
    what: str,
) -> None:
    """Verify ``wlt`` ranking stages and conclude ``(p ∧ reach) ↦ q``."""
    arrays = _arrays(program)
    amap = {name: array for name, array in arrays}
    z = (q & reach).mask
    for idx, (helper_name, x) in enumerate(stages):
        helper = amap.get(helper_name)
        if helper is None:
            raise CertificateError(
                f"{what}: stage {idx} names unknown statement {helper_name!r}"
            )
        xm = x.mask
        x_or_z = xm | z
        for i in _iter_bits(xm):
            if not (z >> helper[i]) & 1:
                raise CertificateError(
                    f"{what}: stage {idx} helper {helper_name} does not carry "
                    f"state {i} into the accumulated target"
                )
            for name, array in arrays:
                if not (x_or_z >> array[i]) & 1:
                    raise CertificateError(
                        f"{what}: stage {idx} statement {name} escapes X∨Z "
                        f"from state {i}"
                    )
        z |= xm
    leftover = p.mask & reach.mask & ~z
    if leftover:
        state = next(_iter_bits(leftover))
        raise CertificateError(
            f"{what}: stages never stage the reachable p-state {state}"
        )


def _supersets(base_mask: int, full_mask: int, what: str) -> Iterable[int]:
    free = full_mask & ~base_mask
    if bin(free).count("1") > MAX_CANDIDATE_BITS:
        raise CertificateError(
            f"{what}: {bin(free).count('1')} free states is too large for "
            "exhaustive replay"
        )
    sub = free
    while True:
        yield base_mask | sub
        if sub == 0:
            return
        sub = (sub - 1) & free


# ----------------------------------------------------------------------
# eq.-(13) resolutions, recomputed from scratch
# ----------------------------------------------------------------------


def _knows(space, variables, si: Predicate, body: Predicate) -> Predicate:
    """Eq. (13) with primitives: ``body ∧ (wcyl.vars.(SI ⇒ body) ∨ ¬SI)``."""
    return body & (wcyl(variables, si.implies(body)) | ~si)


def _verify_resolution(
    program: Program, si: Predicate, table: Sequence[Tuple[str, Predicate]]
) -> Dict[Any, Predicate]:
    """Recompute every knowledge term at ``si`` and match the recorded table.

    Terms are resolved innermost-first (ordered by nested-term count), each
    body evaluated pointwise with the already-resolved subterms, then
    pushed through eq. (13) with the ``wcyl`` primitive.  Any bit of
    disagreement with the certificate's table rejects the artifact.
    """
    space = program.space
    terms = sorted(
        program.knowledge_terms(),
        key=lambda t: (len(t.knowledge_terms()), repr(t)),
    )
    recorded = dict(table)
    if len(recorded) != len(table):
        raise CertificateError("resolution table has duplicate terms")
    if set(recorded) != {repr(t) for t in terms}:
        raise CertificateError(
            "resolution table does not cover exactly the program's "
            "knowledge terms"
        )
    views = {p.name: p.variables for p in program.processes.values()}
    not_si = ~si
    resolved: Dict[Any, Predicate] = {}
    for term in terms:
        variables = views.get(term.process)
        if variables is None:
            raise CertificateError(f"unknown process {term.process!r}")
        body = Predicate.from_callable(
            space, lambda st, f=term.formula: bool(f.eval(st, resolved))
        )
        value = body & (wcyl(variables, si.implies(body)) | not_si)
        if not recorded[repr(term)] == value:
            raise CertificateError(
                f"recorded resolution of {term!r} disagrees with eq. (13) "
                "at this candidate SI"
            )
        resolved[term] = value
    return resolved


# ----------------------------------------------------------------------
# per-kind checkers
# ----------------------------------------------------------------------


def _handle_fixpoint(cert: FixpointCertificate, model: Model) -> ReplayOutcome:
    program = model.program
    check_program_digest(cert.program, program)
    if cert.claim not in ("sst", "si"):
        raise CertificateError(f"unknown fixpoint claim {cert.claim!r}")
    if cert.claim == "si" and not cert.seed == program.init:
        raise CertificateError("an SI certificate must be seeded with init")
    value = _check_chain(program, cert.seed, cert.chain, f"{cert.claim} chain")
    return ReplayOutcome(
        kind=cert.kind,
        model=model.key,
        verdict=f"{cert.claim}-fixpoint-verified",
        details={"links": len(cert.chain), "states": value.count()},
    )


def _handle_invariant(cert: InvariantCertificate, model: Model) -> ReplayOutcome:
    program = model.program
    check_program_digest(cert.si.program, program)
    if cert.si.claim != "si" or not cert.si.seed == program.init:
        raise CertificateError("invariant certificate needs an init-seeded chain")
    si = _check_chain(program, program.init, cert.si.chain, "SI chain")
    if not si.entails(cert.predicate):
        raise CertificateError(
            f"[SI ⇒ p] fails for the claimed invariant {cert.label or 'p'!r}"
        )
    return ReplayOutcome(
        kind=cert.kind,
        model=model.key,
        verdict="invariant-holds",
        details={"label": cert.label, "si_states": si.count()},
    )


def _replay_solve(
    cert: KbpSolveCertificate, program: Program
) -> List[Tuple[Predicate, Program]]:
    """Check a full eq.-(25) partition; return the verified solutions.

    Each returned pair is ``(SI, resolved program)`` — the chain check has
    already established that the resolved program's strongest invariant is
    exactly the candidate.
    """
    check_program_digest(cert.program, program)
    if not cert.init == program.init:
        raise CertificateError("certificate init differs from the program's")
    if not program.is_knowledge_based():
        raise CertificateError("kbp-solve certificate for a standard program")
    space = program.space
    free_states = space.size - program.init.count()
    if free_states > MAX_CANDIDATE_BITS:
        # Checked before any mask arithmetic: past the explicit limit even
        # one full_mask would be a 2^size-bit constant.
        raise CertificateError(
            f"kbp-solve replay: {free_states} free states is too large for "
            f"exhaustive replay (limit {MAX_CANDIDATE_BITS})"
        )
    seen: Dict[int, str] = {}
    solutions: List[Tuple[Predicate, Program]] = []
    for entry in cert.solutions:
        m = entry.candidate.mask
        if m in seen:
            raise CertificateError("duplicate candidate in solution table")
        seen[m] = "solution"
        resolved_map = _verify_resolution(program, entry.candidate, entry.resolution)
        resolved = program.resolve(resolved_map)
        si = _check_chain(
            resolved, program.init, entry.chain, "solution chain"
        )
        if not si == entry.candidate:
            raise CertificateError(
                "claimed solution is not a fixed point of Φ: its resolved "
                "program's SI differs from the candidate"
            )
        solutions.append((entry.candidate, resolved))
    for ref in cert.refutations:
        m = ref.candidate.mask
        if m in seen:
            raise CertificateError("candidate appears twice in the partition")
        seen[m] = "refutation"
        if not program.init.entails(ref.candidate):
            raise CertificateError("refuted candidate does not contain init")
        resolved_map = _verify_resolution(program, ref.candidate, ref.resolution)
        resolved = program.resolve(resolved_map)
        if ref.witness_kind == "escape":
            _check_path(
                resolved,
                ref.path_states,
                ref.path_statements,
                start_in=program.init,
                what="escape path",
            )
            if ref.candidate.holds_at(ref.path_states[-1]):
                raise CertificateError(
                    "escape path ends inside the candidate — refutes nothing"
                )
        elif ref.witness_kind == "unreached":
            closed = ref.closed
            if closed is None or ref.missing is None:
                raise CertificateError("unreached witness is incomplete")
            if not program.init.entails(closed):
                raise CertificateError("closed set does not contain init")
            if not _image(resolved, closed).entails(closed):
                raise CertificateError("claimed closed set is not closed")
            if closed.holds_at(ref.missing):
                raise CertificateError("missing state lies inside the closed set")
            if not ref.candidate.holds_at(ref.missing):
                raise CertificateError("missing state lies outside the candidate")
        else:
            raise CertificateError(
                f"unknown refutation witness kind {ref.witness_kind!r}"
            )
    expected = set(_supersets(program.init.mask, space.full_mask, "kbp-solve"))
    if set(seen) != expected:
        raise CertificateError(
            f"partition covers {len(seen)} candidates but init has "
            f"{len(expected)} supersets — refutation table truncated or padded"
        )
    return solutions


def _handle_kbp_solve(cert: KbpSolveCertificate, model: Model) -> ReplayOutcome:
    solutions = _replay_solve(cert, model.program)
    verdict = "no-solution" if not solutions else "well-posed"
    return ReplayOutcome(
        kind=cert.kind,
        model=model.key,
        verdict=verdict,
        details={
            "solutions": len(solutions),
            "candidates": len(cert.solutions) + len(cert.refutations),
        },
    )


def _replay_leads_to(
    cert: LeadsToCertificate,
    program: Program,
    trusted_reach: Optional[Predicate] = None,
) -> None:
    check_program_digest(cert.program, program)
    what = cert.label or "leads-to"
    if cert.si_chain is not None:
        si = _check_chain(program, program.init, cert.si_chain, f"{what} SI chain")
        if not si == cert.reach:
            raise CertificateError(f"{what}: reach differs from its certified SI")
    elif trusted_reach is not None:
        if not cert.reach == trusted_reach:
            raise CertificateError(
                f"{what}: reach differs from the enclosing certificate's SI"
            )
    else:
        raise CertificateError(
            f"{what}: no SI chain and no trusted reachable set"
        )
    _check_stages(program, cert.p, cert.q, cert.reach, cert.stages, what)


def _handle_leads_to(cert: LeadsToCertificate, model: Model) -> ReplayOutcome:
    _replay_leads_to(cert, model.program)
    return ReplayOutcome(
        kind=cert.kind,
        model=model.key,
        verdict="leads-to-holds",
        details={"label": cert.label, "stages": len(cert.stages)},
    )


def _replay_leads_to_refutation(
    cert: LeadsToRefutationCertificate, program: Program
) -> None:
    check_program_digest(cert.program, program)
    what = cert.label or "leads-to refutation"
    _check_path(
        program,
        cert.prefix_states,
        cert.prefix_statements,
        start_in=program.init,
        what=f"{what} prefix",
    )
    start = cert.prefix_states[-1]
    if not cert.p.holds_at(start):
        raise CertificateError(f"{what}: lasso start does not satisfy p")
    if not cert.approach_states or cert.approach_states[0] != start:
        raise CertificateError(f"{what}: approach does not continue the prefix")
    _check_path(
        program,
        cert.approach_states,
        cert.approach_statements,
        what=f"{what} approach",
    )
    qm = cert.q.mask
    for s in cert.approach_states:
        if (qm >> s) & 1:
            raise CertificateError(f"{what}: approach visits a q-state")
    if cert.approach_states[-1] not in set(cert.trap):
        raise CertificateError(f"{what}: approach does not end in the trap")
    _check_trap(program, cert.trap, cert.q, what)


def _handle_leads_to_refutation(
    cert: LeadsToRefutationCertificate, model: Model
) -> ReplayOutcome:
    _replay_leads_to_refutation(cert, model.program)
    return ReplayOutcome(
        kind=cert.kind,
        model=model.key,
        verdict="leads-to-refuted",
        details={"label": cert.label, "trap_states": len(cert.trap)},
    )


def _replay_safety_refutation(
    cert: SafetyRefutationCertificate, program: Program
) -> None:
    check_program_digest(cert.program, program)
    _check_path(
        program,
        cert.path_states,
        cert.path_statements,
        start_in=program.init,
        what="safety counterexample",
    )
    if cert.predicate.holds_at(cert.path_states[-1]):
        raise CertificateError(
            "safety counterexample ends in a state satisfying the predicate"
        )


def _handle_safety_refutation(
    cert: SafetyRefutationCertificate, model: Model
) -> ReplayOutcome:
    _replay_safety_refutation(cert, model.program)
    return ReplayOutcome(
        kind=cert.kind,
        model=model.key,
        verdict="safety-refuted",
        details={"label": cert.label, "path_length": len(cert.path_states)},
    )


def _handle_nonmonotonic(
    cert: NonMonotonicityCertificate, model: Model
) -> ReplayOutcome:
    base = model.program
    space = base.space
    check_program_digest(cert.program, base)
    weak_solutions = _replay_solve(cert.weak, base)

    strong_init = cert.strong.init
    pinned = model.extras.get("strong_init")
    if pinned is not None and not strong_init == pinned:
        raise CertificateError("strong init differs from the model's pinned one")
    if not strong_init.entails(base.init) or strong_init == base.init:
        raise CertificateError("strong init must strictly strengthen the weak one")
    strong_program = base.with_init(strong_init)
    strong_solutions = _replay_solve(cert.strong, strong_program)

    if len(weak_solutions) != 1 or len(strong_solutions) != 1:
        raise CertificateError("non-monotonicity comparison needs unique SIs")
    (si_weak, resolved_weak), = weak_solutions
    (si_strong, resolved_strong), = strong_solutions
    if si_strong.entails(si_weak):
        raise CertificateError(
            "SIs are monotone here — the non-monotonicity claim fails"
        )

    details: Dict[str, Any] = {
        "si_weak_states": si_weak.count(),
        "si_strong_states": si_strong.count(),
    }

    if cert.safety_predicate is not None:
        pinned_safety = model.extras.get("safety")
        if pinned_safety is not None and not cert.safety_predicate == pinned_safety:
            raise CertificateError("safety predicate differs from the model's")
        if not si_weak.entails(cert.safety_predicate):
            raise CertificateError("safety does not even hold under the weak init")
        if cert.safety_refutation is None:
            raise CertificateError("safety flip is missing its counterexample")
        if not cert.safety_refutation.predicate == cert.safety_predicate:
            raise CertificateError("safety counterexample refutes something else")
        _replay_safety_refutation(cert.safety_refutation, resolved_strong)
        details["safety_flips"] = True

    if cert.liveness_target is not None:
        pinned_target = model.extras.get("liveness_target")
        if pinned_target is not None and not cert.liveness_target == pinned_target:
            raise CertificateError("liveness target differs from the model's")
        if cert.liveness_weak is None or cert.liveness_refutation is None:
            raise CertificateError("liveness flip needs both directions certified")
        everywhere = Predicate.true(space)
        lw = cert.liveness_weak
        if not (lw.p == everywhere and lw.q == cert.liveness_target):
            raise CertificateError("weak liveness certificate is off-obligation")
        _replay_leads_to(lw, resolved_weak, trusted_reach=si_weak)
        lr = cert.liveness_refutation
        if not (lr.p == everywhere and lr.q == cert.liveness_target):
            raise CertificateError("liveness refutation is off-obligation")
        _replay_leads_to_refutation(lr, resolved_strong)
        details["liveness_flips"] = True

    return ReplayOutcome(
        kind=cert.kind, model=model.key, verdict="init-nonmonotonic", details=details
    )


def _handle_sp_hat(cert: SpHatCertificate, model: Model) -> ReplayOutcome:
    program = model.program
    check_program_digest(cert.program, program)
    if not cert.p.entails(cert.q):
        raise CertificateError("witness pair must satisfy [p ⇒ q]")
    res_p = _verify_resolution(program, cert.p, cert.resolution_p)
    res_q = _verify_resolution(program, cert.q, cert.resolution_q)
    resolved_p = program.resolve(res_p)
    resolved_q = program.resolve(res_q)
    if not _image(resolved_p, cert.p) == cert.image_p:
        raise CertificateError("recorded ŜP.p differs from the one-step image")
    if not _image(resolved_q, cert.q) == cert.image_q:
        raise CertificateError("recorded ŜP.q differs from the one-step image")
    if not cert.image_p.holds_at(cert.witness):
        raise CertificateError("witness state is not in ŜP.p")
    if cert.image_q.holds_at(cert.witness):
        raise CertificateError("witness state is in ŜP.q — no violation")
    return ReplayOutcome(
        kind=cert.kind,
        model=model.key,
        verdict="sp-hat-nonmonotone",
        details={"witness_state": cert.witness},
    )


# ----------------------------------------------------------------------
# S5 laws, from the eq.-(13) primitive alone
# ----------------------------------------------------------------------


def _s5_violation(law: str, k, p: Predicate, q: Optional[Predicate]) -> Predicate:
    """The set of states violating one law instance (false = law holds)."""
    space = p.space
    if law == "truth":
        return k(p) & ~p
    if law == "distribution":
        assert q is not None
        return (k(p) & k(p.implies(q))) & ~k(q)
    if law == "positive-introspection":
        kp = k(p)
        return kp ^ k(kp)
    if law == "negative-introspection":
        nkp = ~k(p)
        return nkp ^ k(nkp)
    if law == "necessitation":
        return ~k(p) if p.is_everywhere() else Predicate.false(space)
    if law == "disjunctivity":
        assert q is not None
        return (k(p) | k(q)) ^ k(p | q)
    raise CertificateError(f"unknown S5 law {law!r}")


_S5_BINARY = {"distribution", "disjunctivity"}


def _check_s5_instance(space, variables, si: Predicate, inst: S5Instance) -> None:
    binary = inst.law in _S5_BINARY
    if inst.verdict == "fails":
        if inst.mode != "witness":
            raise CertificateError("a failing law must carry witnesses")
        expected = 2 if binary else 1
        if len(inst.witnesses) != expected or inst.witness_state is None:
            raise CertificateError(f"law {inst.law}: malformed witnesses")
        k = lambda x: _knows(space, variables, si, x)
        p = inst.witnesses[0]
        q = inst.witnesses[1] if binary else None
        violation = _s5_violation(inst.law, k, p, q)
        if not violation.holds_at(inst.witness_state):
            raise CertificateError(
                f"law {inst.law}: witness state does not violate the law"
            )
        return
    if inst.verdict != "holds" or inst.mode != "exhaustive":
        raise CertificateError(
            f"law {inst.law}: unsupported verdict/mode "
            f"{inst.verdict!r}/{inst.mode!r}"
        )
    if space.size > MAX_S5_STATES:
        raise CertificateError(
            f"space of {space.size} states too large for exhaustive S5 replay"
        )
    # Precompute K over every predicate once; law sweeps are then mask ops.
    table = {
        m: _knows(space, variables, si, Predicate(space, m))
        for m in range(1 << space.size)
    }
    k = lambda x: table[x.mask]
    every = [Predicate(space, m) for m in range(1 << space.size)]
    if binary:
        for p in every:
            for q in every:
                if not _s5_violation(inst.law, k, p, q).is_false():
                    raise CertificateError(
                        f"law {inst.law} does not hold exhaustively"
                    )
    else:
        for p in every:
            if not _s5_violation(inst.law, k, p, None).is_false():
                raise CertificateError(f"law {inst.law} does not hold exhaustively")


def _handle_s5(cert: S5Certificate, model: Model) -> ReplayOutcome:
    space = model.program.space
    if cert.space_sig != space_signature(space):
        raise CertificateError("S5 certificate is over a different state space")
    model_views = {
        p.name: tuple(sorted(p.variables))
        for p in model.program.processes.values()
    }
    cert_views = {name: tuple(sorted(vs)) for name, vs in cert.views}
    if model_views != cert_views:
        raise CertificateError("S5 certificate views differ from the model's")
    if not cert.instances:
        raise CertificateError("S5 certificate carries no instances")
    views = {name: vs for name, vs in cert.views}
    for inst in cert.instances:
        variables = views.get(inst.process)
        if variables is None:
            raise CertificateError(f"unknown process {inst.process!r}")
        _check_s5_instance(space, variables, cert.si, inst)
    return ReplayOutcome(
        kind=cert.kind,
        model=model.key,
        verdict="s5-verified",
        details={
            "instances": len(cert.instances),
            "holds": sum(1 for i in cert.instances if i.verdict == "holds"),
            "fails": sum(1 for i in cert.instances if i.verdict == "fails"),
        },
    )


# ----------------------------------------------------------------------
# specification bundles
# ----------------------------------------------------------------------


def _check_safety_entries(
    entries: Sequence[Tuple[str, Predicate]],
    obligations: Sequence[Tuple[str, Predicate]],
    si: Predicate,
) -> None:
    recorded = dict(entries)
    if len(recorded) != len(entries):
        raise CertificateError("duplicate safety entries")
    pinned = dict(obligations)
    if set(recorded) != set(pinned):
        raise CertificateError(
            "safety entries do not cover exactly the model's obligations"
        )
    for label, pred in pinned.items():
        if not recorded[label] == pred:
            raise CertificateError(
                f"safety predicate for {label!r} differs from the model's"
            )
        if not si.entails(pred):
            raise CertificateError(f"safety obligation {label!r} fails on SI")


def _check_liveness_entries(
    entries: Sequence[Any],
    obligations: Sequence[Tuple[str, Predicate, Predicate]],
    program: Program,
    si: Predicate,
) -> Dict[str, bool]:
    verdicts: Dict[str, bool] = {}
    remaining = list(entries)
    for label, p, q in obligations:
        match = None
        for entry in remaining:
            if entry.p == p and entry.q == q:
                match = entry
                break
        if match is None:
            raise CertificateError(f"no liveness evidence for obligation {label!r}")
        remaining.remove(match)
        if isinstance(match, LeadsToCertificate):
            _replay_leads_to(match, program, trusted_reach=si)
            verdicts[label] = True
        elif isinstance(match, LeadsToRefutationCertificate):
            _replay_leads_to_refutation(match, program)
            verdicts[label] = False
        else:
            raise CertificateError("unknown liveness entry type")
    if remaining:
        raise CertificateError("liveness entries beyond the model's obligations")
    return verdicts


def _handle_kbp_spec(cert: KbpSpecCertificate, model: Model) -> ReplayOutcome:
    program = model.program
    check_program_digest(cert.program, program)
    sol = cert.solution
    resolved_map = _verify_resolution(program, sol.candidate, sol.resolution)
    resolved = program.resolve(resolved_map)
    si = _check_chain(resolved, program.init, sol.chain, "KBP solution chain")
    if not si == sol.candidate:
        raise CertificateError("solution chain endpoint differs from the candidate")
    _check_safety_entries(cert.safety, model.safety_obligations, si)
    verdicts = _check_liveness_entries(
        cert.liveness, model.liveness_obligations, resolved, si
    )
    if not all(verdicts.values()):
        raise CertificateError("kbp-spec certificates must certify full liveness")
    return ReplayOutcome(
        kind=cert.kind,
        model=model.key,
        verdict="spec-holds",
        details={
            "si_states": si.count(),
            "safety_holds": True,
            "liveness_holds": [verdicts[label] for label, _, _ in model.liveness_obligations],
        },
    )


def _handle_spec(cert: SpecCertificate, model: Model) -> ReplayOutcome:
    program = model.program
    check_program_digest(cert.program, program)
    si = _check_chain(program, program.init, cert.si_chain, "SI chain")

    pinned = dict(model.safety_obligations)
    positive = dict(cert.safety)
    if len(positive) != len(cert.safety):
        raise CertificateError("duplicate safety entries")
    refutations = {c.label: c for c in cert.safety_refutations}
    if len(refutations) != len(cert.safety_refutations):
        raise CertificateError("duplicate safety refutations")
    if set(positive) | set(refutations) != set(pinned) or set(positive) & set(
        refutations
    ):
        raise CertificateError(
            "safety evidence does not partition the model's obligations"
        )
    safety_verdicts: Dict[str, bool] = {}
    for label, pred in pinned.items():
        if label in positive:
            if not positive[label] == pred:
                raise CertificateError(
                    f"safety predicate for {label!r} differs from the model's"
                )
            if not si.entails(pred):
                raise CertificateError(f"safety obligation {label!r} fails on SI")
            safety_verdicts[label] = True
        else:
            refutation = refutations[label]
            if not refutation.predicate == pred:
                raise CertificateError(
                    f"safety refutation for {label!r} refutes something else"
                )
            _replay_safety_refutation(refutation, program)
            safety_verdicts[label] = False

    liveness_verdicts = _check_liveness_entries(
        cert.liveness, model.liveness_obligations, program, si
    )
    return ReplayOutcome(
        kind=cert.kind,
        model=model.key,
        verdict="spec-verified",
        details={
            "si_states": si.count(),
            "safety_holds": all(safety_verdicts.values()),
            "liveness_holds": [
                liveness_verdicts[label]
                for label, _, _ in model.liveness_obligations
            ],
        },
    )


_HANDLERS = {
    FixpointCertificate.kind: _handle_fixpoint,
    InvariantCertificate.kind: _handle_invariant,
    KbpSolveCertificate.kind: _handle_kbp_solve,
    LeadsToCertificate.kind: _handle_leads_to,
    LeadsToRefutationCertificate.kind: _handle_leads_to_refutation,
    SafetyRefutationCertificate.kind: _handle_safety_refutation,
    NonMonotonicityCertificate.kind: _handle_nonmonotonic,
    SpHatCertificate.kind: _handle_sp_hat,
    S5Certificate.kind: _handle_s5,
    KbpSpecCertificate.kind: _handle_kbp_spec,
    SpecCertificate.kind: _handle_spec,
}


def replay_artifact(artifact: Artifact) -> ReplayOutcome:
    """Re-establish an artifact's verdict; raise :class:`CertificateError`.

    All predicate arithmetic runs on the exact ``int`` backend regardless
    of the ambient selection — the replayer's trusted base stays minimal.
    Models past the explicit-state limit pin the ROBDD backend instead
    (int arithmetic cannot represent even one of their predicates); the
    trusted base then includes the hash-consed BDD kernels.
    """
    with using_backend("auto"):
        # Model construction must see the size-aware policy: symbolic-scale
        # models compile their init expressions to handles during build.
        model = build_model(artifact.model)
    space = model.program.space
    pinned = "robdd" if space.size > limits.get_limit("explicit") else "int"
    with using_backend(pinned):
        cert = decode_certificate(artifact.kind, artifact.payload, space)
        handler = _HANDLERS.get(artifact.kind)
        if handler is None:
            raise CertificateError(f"no replay handler for {artifact.kind!r}")
        try:
            return handler(cert, model)
        except CertificateError:
            raise
        except (ValueError, KeyError) as exc:
            raise CertificateError(f"replay failed: {exc}") from exc


def replay_path(path) -> ReplayOutcome:
    """Load one artifact file (digest-checked) and replay it."""
    return replay_artifact(load(path))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.certificates.replay",
        description=(
            "Independently re-check certificate artifacts. The checker's own "
            "arithmetic is always exact int; --backend only sets the ambient "
            "backend to demonstrate backend-independent acceptance."
        ),
    )
    parser.add_argument(
        "artifacts", help="a directory of *.cert.json files, or one file"
    )
    parser.add_argument(
        "--backend",
        choices=["int", "numpy", "robdd", "auto"],
        default=None,
        help="ambient predicate backend while loading and replaying",
    )
    parser.add_argument(
        "--journal",
        action="append",
        default=[],
        metavar="PATH",
        help=(
            "also verify a shard-checkpoint journal's sha256 chain "
            "(repeatable); rejected journals fail the run"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help=(
            "emit one JSON document on stdout instead of human-readable "
            "lines; exit codes are unchanged (0 verified, 1 rejected, "
            "2 usage, 3 truncated)"
        ),
    )
    args = parser.parse_args(argv)
    target = Path(args.artifacts)
    if target.is_file():
        paths = [target]
    else:
        # Foreign JSON strays are skipped with a warning; damaged or
        # tampered envelopes still reach the loader and fail loudly.
        paths = list(scan_artifacts(target))
    if not paths and not args.journal:
        print(f"no *.cert.json artifacts under {target}", file=sys.stderr)
        return 1

    def tell(line: str) -> None:
        if not args.as_json:
            print(line)

    def run() -> int:
        artifact_records: List[Dict[str, Any]] = []
        journal_records: List[Dict[str, Any]] = []
        failures = 0
        truncated = 0
        for path in paths:
            try:
                artifact = load(path)
                outcome = replay_artifact(artifact)
            except TruncatedArtifactError as exc:
                truncated += 1
                artifact_records.append(
                    {"path": str(path), "status": "truncated", "error": str(exc)}
                )
                tell(f"TRUNCATED {path.name}: {exc}")
                continue
            except CertificateError as exc:
                failures += 1
                artifact_records.append(
                    {"path": str(path), "status": "rejected", "error": str(exc)}
                )
                tell(f"FAIL {path.name}: {exc}")
                continue
            artifact_records.append(
                {
                    "path": str(path),
                    "status": "verified",
                    "kind": artifact.kind,
                    "model": artifact.model,
                    "verdict": outcome.verdict,
                    "details": outcome.details,
                }
            )
            tell(
                f"OK   {path.name}: {artifact.kind} [{artifact.model}] "
                f"— {outcome.verdict}"
            )
        for journal_path in args.journal:
            from ..robustness import JournalError, verify_journal

            try:
                summary = verify_journal(journal_path)
            except JournalError as exc:
                failures += 1
                journal_records.append(
                    {
                        "path": str(journal_path),
                        "status": "rejected",
                        "error": str(exc),
                    }
                )
                tell(f"FAIL {journal_path}: {exc}")
                continue
            journal_records.append(
                {
                    "path": str(journal_path),
                    "status": "verified",
                    "program": summary["program"],
                    "complete": summary["complete"],
                    "shards_journaled": summary["shards_journaled"],
                    "shard_count": summary["shard_count"],
                    "candidates_checked": summary["candidates_checked"],
                }
            )
            shape = (
                "complete"
                if summary["complete"]
                else f"{summary['shards_journaled']}/{summary['shard_count']} shards"
            )
            tell(
                f"OK   {journal_path}: shard journal [{summary['program']}] "
                f"— chain verified, {shape}, "
                f"{summary['candidates_checked']} candidates"
            )
        checked = len(paths) + len(args.journal)
        bad = failures + truncated
        status = "all verdicts re-established" if not bad else "REJECTED"
        tell(f"{checked - bad}/{checked} artifacts verified — {status}")
        if truncated:
            # Truncation dominates: nothing semantic can be said about a
            # partial file, and the caller's remedy (re-emit) differs.
            code = EXIT_TRUNCATED
        else:
            code = 1 if failures else 0
        if args.as_json:
            print(
                json.dumps(
                    {
                        "artifacts": artifact_records,
                        "journals": journal_records,
                        "summary": {
                            "checked": checked,
                            "verified": checked - bad,
                            "rejected": failures,
                            "truncated": truncated,
                            "exit_code": code,
                        },
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
        return code

    if args.backend is not None:
        with using_backend(args.backend):
            return run()
    return run()


if __name__ == "__main__":  # pragma: no cover — exercised via CLI tests
    sys.exit(main())
