"""The evidence subsystem: proof certificates and an independent replayer.

Solvers emit serializable *certificates* (``emit_certificate=True``
plumbing in :mod:`repro.core.kbp`, :mod:`repro.seqtrans.spec`,
:mod:`repro.proofs.kernel` and the emit drivers here); a minimal,
solver-independent checker (:mod:`repro.certificates.replay`) re-establishes
every verdict from the artifact alone, using only primitive predicate
operations and one-step successor lookups on the exact ``int`` backend.

Round trip::

    python -m repro.certificates.emit artifacts/
    python -m repro.certificates.replay artifacts/

See DESIGN.md §8 for the certificate taxonomy and the replayer's
soundness argument.
"""

from .canonical import (
    CERT_FORMAT,
    CertificateError,
    canonical_dumps,
    payload_digest,
    program_digest,
    space_signature,
)
from .certs import (
    CERTIFICATE_KINDS,
    CandidateRefutation,
    FixpointCertificate,
    InvariantCertificate,
    KbpSolutionEntry,
    KbpSolveCertificate,
    KbpSpecCertificate,
    LeadsToCertificate,
    LeadsToRefutationCertificate,
    NonMonotonicityCertificate,
    S5Certificate,
    S5Instance,
    SafetyRefutationCertificate,
    SpHatCertificate,
    SpecCertificate,
    decode_certificate,
    resolution_table,
)
from .models import MODEL_BUILDERS, Model, build_model
from .store import (
    Artifact,
    ForeignArtifactWarning,
    TruncatedArtifactError,
    iter_artifacts,
    load,
    loads,
    save,
    scan_artifacts,
    wrap,
)

# emit/replay are the CLI entry points (python -m repro.certificates.emit);
# import them lazily so runpy doesn't warn about double-loading them.
_LAZY = {
    "EMITTERS": "emit",
    "emit_all": "emit",
    "ReplayOutcome": "replay",
    "replay_artifact": "replay",
    "replay_path": "replay",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(f".{module}", __name__), name)

__all__ = [
    "CERT_FORMAT",
    "CERTIFICATE_KINDS",
    "Artifact",
    "CandidateRefutation",
    "CertificateError",
    "EMITTERS",
    "FixpointCertificate",
    "ForeignArtifactWarning",
    "InvariantCertificate",
    "KbpSolutionEntry",
    "KbpSolveCertificate",
    "KbpSpecCertificate",
    "LeadsToCertificate",
    "LeadsToRefutationCertificate",
    "MODEL_BUILDERS",
    "Model",
    "NonMonotonicityCertificate",
    "ReplayOutcome",
    "S5Certificate",
    "S5Instance",
    "SafetyRefutationCertificate",
    "SpHatCertificate",
    "SpecCertificate",
    "TruncatedArtifactError",
    "build_model",
    "canonical_dumps",
    "decode_certificate",
    "emit_all",
    "iter_artifacts",
    "load",
    "loads",
    "payload_digest",
    "program_digest",
    "replay_artifact",
    "replay_path",
    "resolution_table",
    "save",
    "scan_artifacts",
    "space_signature",
    "wrap",
]
