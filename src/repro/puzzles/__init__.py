"""Epistemic puzzle workloads: public announcements as SI strengthening."""

from .announcements import AnnouncementSystem, nobody_knows_whether, run_rounds
from .cheating_husbands import (
    ShootingSchedule,
    build_system as build_cheating_husbands,
)
from .cheating_husbands import analyze as analyze_cheating_husbands
from .cheating_husbands import theorem_holds as cheating_husbands_theorem
from .mutex import (
    MutexAnalysis,
    analyze as analyze_mutex,
    mutual_exclusion,
    naive_mutex,
    token_mutex,
)
from .muddy_children import (
    MuddyChildrenResult,
    build_system as build_muddy_children,
)
from .muddy_children import analyze as analyze_muddy_children
from .muddy_children import theorem_holds as muddy_children_theorem

__all__ = [
    "MutexAnalysis",
    "analyze_mutex",
    "mutual_exclusion",
    "naive_mutex",
    "token_mutex",
    "AnnouncementSystem",
    "nobody_knows_whether",
    "run_rounds",
    "ShootingSchedule",
    "build_cheating_husbands",
    "analyze_cheating_husbands",
    "cheating_husbands_theorem",
    "MuddyChildrenResult",
    "build_muddy_children",
    "analyze_muddy_children",
    "muddy_children_theorem",
]
