"""The muddy children puzzle, analyzed with the knowledge transformer.

``n`` children, ``m ≥ 1`` of them with mud on their foreheads.  Every child
sees the others but not itself.  The father announces that at least one
child is muddy, then repeatedly asks "does anyone know whether they are
muddy?".  The classical theorem: after ``m − 1`` rounds of silence, exactly
the muddy children know (round indices here: the muddy children first know
at round ``m``, counting the father's announcement as the start of round 1).

In the paper's terms: each silence is a public announcement strengthening
``SI``; knowledge grows by anti-monotonicity (eq. 20); and the theorem is a
statement about *which* worlds enter ``K_i(muddy_i)`` after each
strengthening.  The analysis below is exact (all ``2^n`` worlds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..predicates import Predicate, var_true
from ..statespace import BoolDomain, StateSpace, Variable
from .announcements import AnnouncementSystem


def child(i: int) -> str:
    """Agent name of child ``i``."""
    return f"child{i}"


def muddy_var(i: int) -> str:
    """Variable name for child ``i``'s state."""
    return f"muddy{i}"


def build_space(n: int) -> StateSpace:
    """All ``2^n`` mud configurations."""
    if n < 1:
        raise ValueError("need at least one child")
    return StateSpace([Variable(muddy_var(i), BoolDomain()) for i in range(n)])


def build_system(n: int) -> AnnouncementSystem:
    """The situation right after the father's announcement.

    Child ``i`` sees every forehead but its own; the initial common
    knowledge is "at least one child is muddy".
    """
    space = build_space(n)
    views = {
        child(i): [muddy_var(j) for j in range(n) if j != i] for i in range(n)
    }
    at_least_one = Predicate.false(space)
    for i in range(n):
        at_least_one = at_least_one | var_true(space, muddy_var(i))
    return AnnouncementSystem.create(space, views, at_least_one)


def questions(space: StateSpace, n: int) -> Dict[str, Predicate]:
    """Each child's question: "am I muddy?"."""
    return {child(i): var_true(space, muddy_var(i)) for i in range(n)}


@dataclass(frozen=True)
class MuddyChildrenResult:
    """Round-by-round verdicts for a concrete mud configuration."""

    n: int
    muddy: Tuple[bool, ...]
    #: knows_at_round[r][i] — does child i know its state after r rounds of
    #: silence (r = 0 is right after the father speaks)?
    knows_at_round: Tuple[Tuple[bool, ...], ...]

    @property
    def muddy_count(self) -> int:
        return sum(self.muddy)

    def first_round_known(self, i: int) -> int:
        """First round (0-based silences) at which child ``i`` knows; -1 if never."""
        for r, row in enumerate(self.knows_at_round):
            if row[i]:
                return r
        return -1


def analyze(muddy: Tuple[bool, ...], max_rounds: int = None) -> MuddyChildrenResult:
    """Run the puzzle for one configuration and report who knows when.

    The classical theorem corresponds to
    ``first_round_known(i) == muddy_count - 1`` for every muddy child ``i``
    (they know after ``m − 1`` silences).
    """
    n = len(muddy)
    if not any(muddy):
        raise ValueError("the father's announcement must be true: someone is muddy")
    system = build_system(n)
    space = system.space
    world = space.index_of({muddy_var(i): muddy[i] for i in range(n)})
    qs = questions(space, n)
    rounds = max_rounds if max_rounds is not None else n + 1
    knows_rows: List[Tuple[bool, ...]] = []
    current = system
    for _ in range(rounds):
        row = tuple(
            current.knows_whether(child(i), qs[child(i)]).holds_at(world)
            for i in range(n)
        )
        knows_rows.append(row)
        if all(row):
            break
        from .announcements import nobody_knows_whether

        silence = nobody_knows_whether(current, qs)
        if not silence.holds_at(world):
            # Someone steps forward; in the classical protocol this is the
            # final announcement, after which everyone can infer their state.
            current = current.announce(current.possible & ~silence)
        else:
            current = current.announce(silence)
    return MuddyChildrenResult(n=n, muddy=tuple(muddy), knows_at_round=tuple(knows_rows))


def theorem_holds(n: int) -> bool:
    """Check the classical theorem for every configuration with ``m ≥ 1``.

    Every muddy child first knows exactly after ``m − 1`` rounds of
    silence, and no earlier.
    """
    import itertools

    for bits in itertools.product([False, True], repeat=n):
        if not any(bits):
            continue
        result = analyze(bits)
        m = result.muddy_count
        for i in range(n):
            if bits[i] and result.first_round_known(i) != m - 1:
                return False
            if bits[i] and any(result.knows_at_round[r][i] for r in range(m - 1)):
                return False
    return True
