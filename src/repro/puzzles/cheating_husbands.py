"""The cheating husbands puzzle [MDH86], via the knowledge transformer.

The dual folklore formulation the paper cites ("Cheating husbands and
other stories"): every wife knows which *other* husbands are unfaithful,
but not her own.  The queen announces that at least one husband cheats and
decrees that a wife who *knows* her husband cheats must shoot him on that
midnight.  With ``m`` cheating husbands, all are shot on night ``m``.

Structurally identical to muddy children with one epistemic twist: a wife
acts on ``K_i(cheat_i)`` — knowing the *positive* fact — rather than on
knowing-whether.  Each silent night is the public announcement "no wife
knew her husband cheats".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..predicates import Predicate, var_true
from ..statespace import BoolDomain, StateSpace, Variable
from .announcements import AnnouncementSystem


def wife(i: int) -> str:
    """Agent name of wife ``i``."""
    return f"wife{i}"


def cheat_var(i: int) -> str:
    """Variable for husband ``i``'s fidelity."""
    return f"cheats{i}"


def build_system(n: int) -> AnnouncementSystem:
    """The situation right after the queen's proclamation."""
    if n < 1:
        raise ValueError("need at least one couple")
    space = StateSpace([Variable(cheat_var(i), BoolDomain()) for i in range(n)])
    views = {
        wife(i): [cheat_var(j) for j in range(n) if j != i] for i in range(n)
    }
    someone_cheats = Predicate.false(space)
    for i in range(n):
        someone_cheats = someone_cheats | var_true(space, cheat_var(i))
    return AnnouncementSystem.create(space, views, someone_cheats)


@dataclass(frozen=True)
class ShootingSchedule:
    """Which husbands are shot on which night (1-based nights)."""

    n: int
    cheats: Tuple[bool, ...]
    shot_on_night: Tuple[int, ...]  # -1 when never shot

    @property
    def cheat_count(self) -> int:
        return sum(self.cheats)


def analyze(cheats: Tuple[bool, ...], max_nights: int = None) -> ShootingSchedule:
    """Run the nights for one configuration.

    The [MDH86] theorem: every cheating husband is shot on night ``m``
    (``m`` = number of cheaters), and no faithful husband is ever shot.
    """
    n = len(cheats)
    if not any(cheats):
        raise ValueError("the queen's proclamation must be true")
    system = build_system(n)
    space = system.space
    world = space.index_of({cheat_var(i): cheats[i] for i in range(n)})
    nights = max_nights if max_nights is not None else n + 1
    shot = [-1] * n
    current = system
    for night in range(1, nights + 1):
        knowers = [
            i
            for i in range(n)
            if shot[i] == -1
            and current.knows(wife(i), var_true(space, cheat_var(i))).holds_at(world)
        ]
        if knowers:
            for i in knowers:
                shot[i] = night
            break
        # A silent night: publicly, no wife knew her husband cheats.
        silence = Predicate.true(space)
        for i in range(n):
            silence = silence & ~current.knows(wife(i), var_true(space, cheat_var(i)))
        current = current.announce(silence)
    return ShootingSchedule(n=n, cheats=tuple(cheats), shot_on_night=tuple(shot))


def theorem_holds(n: int) -> bool:
    """Check the [MDH86] theorem over all configurations with ``m ≥ 1``."""
    import itertools

    for bits in itertools.product([False, True], repeat=n):
        if not any(bits):
            continue
        schedule = analyze(bits)
        m = schedule.cheat_count
        for i in range(n):
            expected = m if bits[i] else -1
            if schedule.shot_on_night[i] != expected:
                return False
    return True
