"""Knowledge-based mutual exclusion — solution *multiplicity* in action.

Section 4's theory allows eq. (25) to have no solution (Figure 1), exactly
one, or **several**; the paper notes "Results are valid for any solution".
This module exhibits the several-solutions case with a natural protocol:

* :func:`naive_mutex` — each process enters its critical section when it
  *knows* the other is out::

      enter_i :  cs_i := true   if  K_i(¬cs_j)

  With no shared state, each process's view is only its own flag, so
  ``K_i(¬cs_j)`` can hold only if ``¬cs_j`` is *invariant*.  The equation
  (25) therefore has exactly **two** solutions, each self-consistently
  asymmetric: in one, process 0 never enters (so process 1 always knows
  ``¬cs_0`` and enters freely) — in the other, the roles swap.  Mutual
  exclusion holds in both; *neither process's liveness holds in both*, so
  the knowledge-based protocol guarantees no progress for anyone.

* :func:`token_mutex` — adding one shared ``turn`` bit makes the equation
  uniquely solvable, with mutual exclusion *and* both processes' liveness.

A compact instance of the paper's broader point: the knowledge-based
description under-determines the system, and its "process-by-process
optimality ... may or may not translate into global optimality".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core import resolve_at, solve_si
from ..predicates import Predicate, pred, var_true
from ..proofs import holds_leads_to
from ..unity import Program, parse_program

NAIVE_MUTEX_TEXT = """
program naive_mutex
var cs0, cs1 : bool
process P0 reads cs0
process P1 reads cs1
init !cs0 && !cs1
assign
  enter0 : cs0 := true  if K[P0](!cs1)
  [] exit0  : cs0 := false if cs0
  [] enter1 : cs1 := true  if K[P1](!cs0)
  [] exit1  : cs1 := false if cs1
end
"""

TOKEN_MUTEX_TEXT = """
program token_mutex
var cs0, cs1, turn : bool
process P0 reads cs0, turn
process P1 reads cs1, turn
init !cs0 && !cs1 && !turn
assign
  enter0 : cs0 := true        if !turn && K[P0](!cs1)
  [] exit0  : cs0, turn := false, true  if cs0
  [] enter1 : cs1 := true        if turn && K[P1](!cs0)
  [] exit1  : cs1, turn := false, false if cs1
end
"""


def naive_mutex() -> Program:
    """The shared-nothing knowledge-based mutex (two solutions)."""
    return parse_program(NAIVE_MUTEX_TEXT)


def token_mutex() -> Program:
    """The token-passing knowledge-based mutex (unique solution)."""
    return parse_program(TOKEN_MUTEX_TEXT)


def mutual_exclusion(program: Program) -> Predicate:
    """``¬(cs0 ∧ cs1)``."""
    return pred(program.space, lambda s: not (s["cs0"] and s["cs1"]))


@dataclass(frozen=True)
class MutexAnalysis:
    """Per-solution verdicts for a knowledge-based mutex."""

    solutions: int
    mutex_in_all: bool
    #: per solution: (process-0 eventually enters, process-1 eventually enters)
    liveness: Tuple[Tuple[bool, bool], ...]

    @property
    def liveness_guaranteed(self) -> Tuple[bool, bool]:
        """What the KBP guarantees: true only if true in *every* solution."""
        if not self.liveness:
            return (False, False)
        return (
            all(row[0] for row in self.liveness),
            all(row[1] for row in self.liveness),
        )


def analyze(program: Program) -> MutexAnalysis:
    """Solve eq. (25) exhaustively and check mutex + liveness per solution."""
    report = solve_si(program)
    space = program.space
    mutex = mutual_exclusion(program)
    liveness: List[Tuple[bool, bool]] = []
    for solution in report.solutions:
        resolved = resolve_at(program, solution)
        liveness.append(
            (
                holds_leads_to(
                    resolved, Predicate.true(space), var_true(space, "cs0"), solution
                ),
                holds_leads_to(
                    resolved, Predicate.true(space), var_true(space, "cs1"), solution
                ),
            )
        )
    return MutexAnalysis(
        solutions=len(report.solutions),
        mutex_in_all=all(s.entails(mutex) for s in report.solutions),
        liveness=tuple(liveness),
    )
