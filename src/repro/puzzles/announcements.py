"""Public-announcement dynamics on top of the knowledge operator.

The classic epistemic puzzles (muddy children, cheating husbands [MDH86])
are driven by *public announcements*: a fact becomes common knowledge, the
set of possible worlds shrinks, and knowledge is re-evaluated.  In the
paper's framework this is precisely **strengthening SI**: the knowledge
transformer is anti-monotonic in SI (eq. 20), so each announcement can only
create knowledge, never destroy it.

:class:`AnnouncementSystem` wraps a state space, the per-process views and
a current possibility predicate; :meth:`announce` conjoins a predicate to
it and returns the updated system (immutably).  The puzzles build their
round structure on top: each round publicly announces *who knew and who
did not* — also known as iterated "no one steps forward" announcements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Mapping, Tuple

from ..core import KnowledgeOperator
from ..predicates import Predicate
from ..statespace import StateSpace


@dataclass(frozen=True)
class AnnouncementSystem:
    """An epistemic situation: views plus the current set of possible worlds."""

    space: StateSpace
    views: Mapping[str, frozenset]
    possible: Predicate

    @classmethod
    def create(
        cls,
        space: StateSpace,
        views: Mapping[str, Iterable[str]],
        initial: Predicate,
    ) -> "AnnouncementSystem":
        """A fresh system; ``initial`` is what is common knowledge at the start."""
        frozen = {name: space.check_vars(vs) for name, vs in views.items()}
        return cls(space=space, views=frozen, possible=initial)

    def operator(self) -> KnowledgeOperator:
        """The knowledge operator for the current possibility set."""
        return KnowledgeOperator(self.space, self.possible, dict(self.views))

    def knows(self, agent: str, fact: Predicate) -> Predicate:
        """Where ``agent`` knows ``fact``, given everything announced so far."""
        return self.operator().knows(agent, fact)

    def knows_whether(self, agent: str, fact: Predicate) -> Predicate:
        """Where the agent knows *whether* ``fact`` (it or its negation)."""
        operator = self.operator()
        return operator.knows(agent, fact) | operator.knows(agent, ~fact)

    def common_knowledge(self, group: Iterable[str], fact: Predicate) -> Predicate:
        """Where ``fact`` is common knowledge in ``group``."""
        return self.operator().common_knowledge(group, fact)

    def announce(self, fact: Predicate) -> "AnnouncementSystem":
        """Publicly announce a (true) fact: possible worlds shrink to it.

        The announcement must be *about* the current situation — callers
        pass predicates such as "no agent knows its own state", evaluated
        against the current system.
        """
        return AnnouncementSystem(
            space=self.space,
            views=self.views,
            possible=self.possible & fact,
        )

    def worlds(self) -> int:
        """Number of currently possible worlds."""
        return self.possible.count()


def nobody_knows_whether(
    system: AnnouncementSystem, questions: Mapping[str, Predicate]
) -> Predicate:
    """The predicate "no agent knows the answer to its own question".

    ``questions[agent]`` is the fact agent must determine (e.g. "I am
    muddy").  Announcing this is one puzzle round where nobody steps
    forward.
    """
    out = Predicate.true(system.space)
    for agent, fact in questions.items():
        out = out & ~system.knows_whether(agent, fact)
    return out


def run_rounds(
    system: AnnouncementSystem,
    questions: Mapping[str, Predicate],
    max_rounds: int,
) -> Tuple[List[Predicate], AnnouncementSystem]:
    """Iterate "nobody knows" announcements until someone would know.

    Returns per-round predicates ``who_knows[r]`` — the set of worlds where
    *some* agent knows its answer after ``r`` full rounds of silence — and
    the final system.  The process stops early once further announcements
    would be false in every world (everyone's knowledge is settled).
    """
    history: List[Predicate] = []
    current = system
    for _ in range(max_rounds):
        silence = nobody_knows_whether(current, questions)
        someone_knows = current.possible & ~silence
        history.append(someone_knows)
        if (current.possible & silence).is_false():
            break
        current = current.announce(silence)
    return history, current
