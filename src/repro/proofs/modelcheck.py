"""Semantic model checking of UNITY properties under statement fairness.

UNITY's execution model: at each step a statement is chosen
nondeterministically, subject to the fairness constraint that *every*
statement is attempted infinitely often (paper section 5).  On a finite
space this makes progress properties decidable.  Two independent
algorithms are provided and cross-validated in the test suite:

1. :func:`wlt` — the **weakest leads-to** least fixpoint.  ``wlt.q`` grows
   from ``q`` by repeatedly adjoining, for some *helpful* statement ``a``,
   the largest set ``X`` with::

       X ⊆ wp.a.Z          (a carries X into the target)
       X ⊆ ∧_b wp.b.(X∨Z)  (meanwhile no statement escapes X∨Z)

   — a greatest fixpoint per candidate helper.  Fairness guarantees ``a``
   eventually runs, so ``X ↦ Z``.  This mirrors exactly how UNITY proofs
   compose ``ensures`` steps, and is complete on finite spaces.

2. :func:`refute_leads_to` — an explicit **fair-cycle search**: ``p ↦ q``
   fails iff some reachable ``p``-state can reach, inside ``¬q``, a
   strongly connected component in which *every* statement has some edge
   staying inside (such an SCC supports an infinite fair run avoiding
   ``q``; an SCC that some statement always exits cannot).

Safety properties (``unless``, ``invariant``, ``stable``) are checked by
:mod:`repro.proofs.checking` directly from the text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from ..predicates import Predicate, limits
from ..transformers import strongest_invariant, wp_statement
from ..unity import Program


def _reachable(program: Program, si: Optional[Predicate]) -> Predicate:
    if si is not None:
        if si.space != program.space:
            raise ValueError("si predicate over a different state space")
        return si
    return strongest_invariant(program)


@dataclass(frozen=True)
class WltReport:
    """The :func:`wlt` fixpoint together with its adjoined ranking stages.

    ``stages`` is the sequence of ``(helper statement name, X)`` pairs in
    the order the least fixpoint adjoined them — each ``X`` satisfied
    ``X ⊆ wp.helper.Z`` and ``X ⊆ ∧_b wp.b.(X ∨ Z)`` against the ``Z``
    accumulated *before* it.  This is exactly the ranking a liveness
    certificate records, and an independent replayer can re-check each
    stage with one-step successor lookups only.
    """

    value: Predicate  # z | ~reach — same as wlt()
    z: Predicate  # the fixpoint inside the reachable set
    reach: Predicate
    stages: Tuple[Tuple[str, Predicate], ...]


def _wlt(
    program: Program,
    q: Predicate,
    si: Optional[Predicate],
    record: Optional[List[Tuple[str, Predicate]]],
) -> WltReport:
    reach = _reachable(program, si)
    z = q & reach
    changed = True
    while changed:
        changed = False
        for helper in program.statements:
            # Greatest fixpoint inside the reachable set:
            #   X := wp.helper.Z ∧ ∧_b wp.b.(X ∨ Z),  iterated down.
            x = wp_statement(program, helper, z) & reach
            while True:
                x_or_z = x | z
                new = x
                for stmt in program.statements:
                    new = new & wp_statement(program, stmt, x_or_z)
                    if new.is_false():
                        break
                if new == x:
                    break
                x = new
            if not (x - z).is_false():
                if record is not None:
                    record.append((helper.name, x))
                z = z | x
                changed = True
    return WltReport(
        value=z | ~reach, z=z, reach=reach, stages=tuple(record or ())
    )


def wlt(program: Program, q: Predicate, si: Optional[Predicate] = None) -> Predicate:
    """The weakest predicate ``w`` with ``w ↦ q`` (relative to ``si``).

    States outside ``si`` are included vacuously (no execution visits
    them), so ``p ↦ q`` holds iff ``[p ⇒ wlt.q]``.

    Every per-state pass is a ``wp`` kernel application: the nested
    fixpoints run through the active predicate backend and the program's
    transformer cache (``wp.b.(X ∨ Z)`` recurs heavily across candidate
    helpers), and all sets stay inside the reachable predicate.
    """
    return _wlt(program, q, si, record=None).value


def wlt_stages(
    program: Program, q: Predicate, si: Optional[Predicate] = None
) -> WltReport:
    """:func:`wlt` with the adjoined ``(helper, X)`` stages recorded."""
    return _wlt(program, q, si, record=[])


def holds_leads_to(
    program: Program, p: Predicate, q: Predicate, si: Optional[Predicate] = None
) -> bool:
    """Whether ``p ↦ q`` is valid under UNITY fairness (via :func:`wlt`)."""
    return p.entails(wlt(program, q, si))


# ----------------------------------------------------------------------
# independent refutation by fair-cycle search
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LeadsToRefutation:
    """A witness that ``p ↦ q`` fails.

    ``start`` is a reachable ``p``-state from which an infinite fair run
    avoids ``q`` forever; ``trap`` is the fair-stayable SCC it ends in.

    When the refuter runs with ``emit_witness=True`` the lasso is made
    concrete: ``prefix_states``/``prefix_statements`` is a labeled path
    from an initial state to ``start``, and
    ``approach_states``/``approach_statements`` continues from ``start``
    to a trap state while staying inside ``¬q`` throughout.
    """

    start: int
    trap: Tuple[int, ...]
    prefix_states: Tuple[int, ...] = ()
    prefix_statements: Tuple[str, ...] = ()
    approach_states: Tuple[int, ...] = ()
    approach_statements: Tuple[str, ...] = ()


def _tarjan_sccs(nodes: Sequence[int], successors) -> List[List[int]]:
    """Iterative Tarjan SCC over an explicit node list."""
    index_of = {}
    lowlink = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    sccs: List[List[int]] = []
    counter = 0
    for root in nodes:
        if root in index_of:
            continue
        work = [(root, iter(successors(root)))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index_of:
                    index_of[nxt] = lowlink[nxt] = counter
                    counter += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(successors(nxt))))
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
    return sccs


def labeled_path(
    program: Program,
    source_mask: int,
    goal_mask: int,
    allowed_mask: Optional[int] = None,
) -> Optional[Tuple[Tuple[int, ...], Tuple[str, ...]]]:
    """A statement-labeled BFS path from ``source_mask`` into ``goal_mask``.

    ``allowed_mask`` restricts the visited states (sources must lie inside
    it too); ``None`` allows the whole space.  Returns ``(states,
    statements)`` with ``len(statements) == len(states) - 1``, or ``None``
    when the goal is unreachable.  Used to make refutation lassos and
    safety counterexamples concrete.

    Explicit-only (per-state BFS over successor arrays); the symbolic
    fixpoint checkers (:func:`wlt`) run unguarded instead.
    """
    limits.check_explicit_size(
        program.space.size, "materializing a labeled counterexample path"
    )
    if allowed_mask is None:
        allowed_mask = (1 << program.space.size) - 1
    arrays = [(s.name, program.successor_array(s)) for s in program.statements]
    frontier: List[int] = []
    parent: dict = {}
    m = source_mask & allowed_mask
    while m:
        low = m & -m
        i = low.bit_length() - 1
        parent[i] = None
        frontier.append(i)
        m ^= low

    def unwind(i: int) -> Tuple[Tuple[int, ...], Tuple[str, ...]]:
        states: List[int] = [i]
        labels: List[str] = []
        while parent[states[-1]] is not None:
            prev, label = parent[states[-1]]
            states.append(prev)
            labels.append(label)
        return tuple(reversed(states)), tuple(reversed(labels))

    for i in list(parent):
        if goal_mask >> i & 1:
            return unwind(i)
    while frontier:
        nxt_frontier: List[int] = []
        for i in frontier:
            for name, array in arrays:
                j = array[i]
                if j in parent or not (allowed_mask >> j & 1):
                    continue
                parent[j] = (i, name)
                if goal_mask >> j & 1:
                    return unwind(j)
                nxt_frontier.append(j)
        frontier = nxt_frontier
    return None


def refute_leads_to(
    program: Program,
    p: Predicate,
    q: Predicate,
    si: Optional[Predicate] = None,
    emit_witness: bool = False,
) -> Optional[LeadsToRefutation]:
    """Search for a fair run refuting ``p ↦ q``; ``None`` when the property holds.

    Independent of :func:`wlt` — used to cross-validate it.  With
    ``emit_witness=True`` the refutation carries a concrete lasso: a
    labeled path from ``init`` to the starting ``p``-state and a labeled
    ``¬q`` path from there into the trap (certificate material).

    Explicit-only (per-state Tarjan over successor arrays); cross-validate
    huge spaces against :func:`wlt` on sliced-down model instances instead.
    """
    space = program.space
    limits.check_explicit_size(space.size, "the explicit fair-cycle refuter")
    reach = _reachable(program, si)
    arrays = [program.successor_array(s) for s in program.statements]
    avoid_mask = reach.mask & ~q.mask  # candidate states: reachable, ¬q

    def inside(i: int) -> bool:
        return bool(avoid_mask >> i & 1)

    nodes = [i for i in range(space.size) if inside(i)]

    def successors(i: int):
        for array in arrays:
            j = array[i]
            if inside(j):
                yield j

    sccs = _tarjan_sccs(nodes, successors)
    # Fair-stayable: every statement has at least one edge staying inside.
    # (An infinite fair run's infinitely-visited set is strongly connected
    # and must absorb one firing of every statement.)
    trap_mask = 0
    stayable_components: List[Tuple[int, ...]] = []
    for component in sccs:
        members = set(component)
        if len(component) == 1:
            # A trivial SCC supports an infinite run only as a fixed point
            # of *every* statement (each firing must stay on the state).
            only = component[0]
            if all(array[only] == only for array in arrays):
                trap_mask |= 1 << only
                stayable_components.append((only,))
            continue
        stayable = all(
            any(array[i] in members for i in component) for array in arrays
        )
        if stayable:
            stayable_components.append(tuple(sorted(component)))
            for i in component:
                trap_mask |= 1 << i
    if trap_mask == 0:
        return None
    # Backward reachability inside ¬q to the traps.
    can_trap = trap_mask
    changed = True
    while changed:
        changed = False
        for i in nodes:
            if can_trap >> i & 1:
                continue
            for array in arrays:
                j = array[i]
                if inside(j) and can_trap >> j & 1:
                    can_trap |= 1 << i
                    changed = True
                    break
    bad_starts = p.mask & can_trap
    if bad_starts == 0:
        return None
    start = (bad_starts & -bad_starts).bit_length() - 1
    trap_states = tuple(
        i for i in range(space.size) if trap_mask >> i & 1
    )
    if not emit_witness:
        return LeadsToRefutation(start=start, trap=trap_states)
    prefix = labeled_path(program, program.init.mask, 1 << start)
    if prefix is None:
        raise ValueError(
            f"refutation start state {start} lies in the supplied si but is "
            "not reachable from init; cannot emit a concrete lasso witness"
        )
    approach = labeled_path(
        program, 1 << start, trap_mask, allowed_mask=avoid_mask | trap_mask
    )
    if approach is None:  # pragma: no cover — contradicts can_trap
        raise ValueError("no ¬q path from the start state into the trap")
    # A concrete lasso circulates in ONE component: narrow the witness trap
    # to the SCC the approach path actually enters, so a replayer can check
    # strong connectivity of exactly what the run stays in.
    entered = approach[0][-1]
    witness_trap = next(
        c for c in stayable_components if entered in c
    )
    return LeadsToRefutation(
        start=start,
        trap=witness_trap,
        prefix_states=prefix[0],
        prefix_statements=prefix[1],
        approach_states=approach[0],
        approach_statements=approach[1],
    )


def check_leads_to_both(
    program: Program, p: Predicate, q: Predicate, si: Optional[Predicate] = None
) -> bool:
    """Run both algorithms and assert they agree; returns the verdict.

    Used by tests and benches as a self-checking oracle.
    """
    by_wlt = holds_leads_to(program, p, q, si)
    by_refuter = refute_leads_to(program, p, q, si) is None
    if by_wlt != by_refuter:
        raise AssertionError(
            f"leads-to algorithms disagree on {p!r} ↦ {q!r}: "
            f"wlt={by_wlt} refuter={by_refuter}"
        )
    return by_wlt
