"""Semantic model checking of UNITY properties under statement fairness.

UNITY's execution model: at each step a statement is chosen
nondeterministically, subject to the fairness constraint that *every*
statement is attempted infinitely often (paper section 5).  On a finite
space this makes progress properties decidable.  Two independent
algorithms are provided and cross-validated in the test suite:

1. :func:`wlt` — the **weakest leads-to** least fixpoint.  ``wlt.q`` grows
   from ``q`` by repeatedly adjoining, for some *helpful* statement ``a``,
   the largest set ``X`` with::

       X ⊆ wp.a.Z          (a carries X into the target)
       X ⊆ ∧_b wp.b.(X∨Z)  (meanwhile no statement escapes X∨Z)

   — a greatest fixpoint per candidate helper.  Fairness guarantees ``a``
   eventually runs, so ``X ↦ Z``.  This mirrors exactly how UNITY proofs
   compose ``ensures`` steps, and is complete on finite spaces.

2. :func:`refute_leads_to` — an explicit **fair-cycle search**: ``p ↦ q``
   fails iff some reachable ``p``-state can reach, inside ``¬q``, a
   strongly connected component in which *every* statement has some edge
   staying inside (such an SCC supports an infinite fair run avoiding
   ``q``; an SCC that some statement always exits cannot).

Safety properties (``unless``, ``invariant``, ``stable``) are checked by
:mod:`repro.proofs.checking` directly from the text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from ..predicates import Predicate
from ..transformers import strongest_invariant, wp_statement
from ..unity import Program


def _reachable(program: Program, si: Optional[Predicate]) -> Predicate:
    if si is not None:
        if si.space != program.space:
            raise ValueError("si predicate over a different state space")
        return si
    return strongest_invariant(program)


def wlt(program: Program, q: Predicate, si: Optional[Predicate] = None) -> Predicate:
    """The weakest predicate ``w`` with ``w ↦ q`` (relative to ``si``).

    States outside ``si`` are included vacuously (no execution visits
    them), so ``p ↦ q`` holds iff ``[p ⇒ wlt.q]``.

    Every per-state pass is a ``wp`` kernel application: the nested
    fixpoints run through the active predicate backend and the program's
    transformer cache (``wp.b.(X ∨ Z)`` recurs heavily across candidate
    helpers), and all sets stay inside the reachable predicate.
    """
    reach = _reachable(program, si)
    z = q & reach
    changed = True
    while changed:
        changed = False
        for helper in program.statements:
            # Greatest fixpoint inside the reachable set:
            #   X := wp.helper.Z ∧ ∧_b wp.b.(X ∨ Z),  iterated down.
            x = wp_statement(program, helper, z) & reach
            while True:
                x_or_z = x | z
                new = x
                for stmt in program.statements:
                    new = new & wp_statement(program, stmt, x_or_z)
                    if new.is_false():
                        break
                if new == x:
                    break
                x = new
            if not (x - z).is_false():
                z = z | x
                changed = True
    return z | ~reach


def holds_leads_to(
    program: Program, p: Predicate, q: Predicate, si: Optional[Predicate] = None
) -> bool:
    """Whether ``p ↦ q`` is valid under UNITY fairness (via :func:`wlt`)."""
    return p.entails(wlt(program, q, si))


# ----------------------------------------------------------------------
# independent refutation by fair-cycle search
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LeadsToRefutation:
    """A witness that ``p ↦ q`` fails.

    ``start`` is a reachable ``p``-state from which an infinite fair run
    avoids ``q`` forever; ``trap`` is the fair-stayable SCC it ends in.
    """

    start: int
    trap: Tuple[int, ...]


def _tarjan_sccs(nodes: Sequence[int], successors) -> List[List[int]]:
    """Iterative Tarjan SCC over an explicit node list."""
    index_of = {}
    lowlink = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    sccs: List[List[int]] = []
    counter = 0
    for root in nodes:
        if root in index_of:
            continue
        work = [(root, iter(successors(root)))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index_of:
                    index_of[nxt] = lowlink[nxt] = counter
                    counter += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(successors(nxt))))
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
    return sccs


def refute_leads_to(
    program: Program, p: Predicate, q: Predicate, si: Optional[Predicate] = None
) -> Optional[LeadsToRefutation]:
    """Search for a fair run refuting ``p ↦ q``; ``None`` when the property holds.

    Independent of :func:`wlt` — used to cross-validate it.
    """
    space = program.space
    reach = _reachable(program, si)
    arrays = [program.successor_array(s) for s in program.statements]
    avoid_mask = reach.mask & ~q.mask  # candidate states: reachable, ¬q

    def inside(i: int) -> bool:
        return bool(avoid_mask >> i & 1)

    nodes = [i for i in range(space.size) if inside(i)]

    def successors(i: int):
        for array in arrays:
            j = array[i]
            if inside(j):
                yield j

    sccs = _tarjan_sccs(nodes, successors)
    # Fair-stayable: every statement has at least one edge staying inside.
    # (An infinite fair run's infinitely-visited set is strongly connected
    # and must absorb one firing of every statement.)
    trap_mask = 0
    for component in sccs:
        members = set(component)
        if len(component) == 1:
            # A trivial SCC supports an infinite run only as a fixed point
            # of *every* statement (each firing must stay on the state).
            only = component[0]
            if all(array[only] == only for array in arrays):
                trap_mask |= 1 << only
            continue
        stayable = all(
            any(array[i] in members for i in component) for array in arrays
        )
        if stayable:
            for i in component:
                trap_mask |= 1 << i
    if trap_mask == 0:
        return None
    # Backward reachability inside ¬q to the traps.
    can_trap = trap_mask
    changed = True
    while changed:
        changed = False
        for i in nodes:
            if can_trap >> i & 1:
                continue
            for array in arrays:
                j = array[i]
                if inside(j) and can_trap >> j & 1:
                    can_trap |= 1 << i
                    changed = True
                    break
    bad_starts = p.mask & can_trap
    if bad_starts == 0:
        return None
    start = (bad_starts & -bad_starts).bit_length() - 1
    trap_states = tuple(
        i for i in range(space.size) if trap_mask >> i & 1
    )
    return LeadsToRefutation(start=start, trap=trap_states)


def check_leads_to_both(
    program: Program, p: Predicate, q: Predicate, si: Optional[Predicate] = None
) -> bool:
    """Run both algorithms and assert they agree; returns the verdict.

    Used by tests and benches as a self-checking oracle.
    """
    by_wlt = holds_leads_to(program, p, q, si)
    by_refuter = refute_leads_to(program, p, q, si) is None
    if by_wlt != by_refuter:
        raise AssertionError(
            f"leads-to algorithms disagree on {p!r} ↦ {q!r}: "
            f"wlt={by_wlt} refuter={by_refuter}"
        )
    return by_wlt
