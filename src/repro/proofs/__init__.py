"""UNITY proof theory: properties, from-text checks, fair model checking, kernel."""

from .checking import (
    helpful_statements,
    holds_ensures,
    holds_invariant,
    holds_invariant_by_induction,
    holds_stable,
    holds_unless,
)
from .kernel import Proof, ProofContext, ProofError
from .modelcheck import (
    LeadsToRefutation,
    WltReport,
    check_leads_to_both,
    holds_leads_to,
    labeled_path,
    refute_leads_to,
    wlt,
    wlt_stages,
)
from .properties import Ensures, Invariant, LeadsTo, Property, Stable, Unless

__all__ = [
    "helpful_statements",
    "holds_ensures",
    "holds_invariant",
    "holds_invariant_by_induction",
    "holds_stable",
    "holds_unless",
    "Proof",
    "ProofContext",
    "ProofError",
    "LeadsToRefutation",
    "WltReport",
    "check_leads_to_both",
    "holds_leads_to",
    "labeled_path",
    "refute_leads_to",
    "wlt",
    "wlt_stages",
    "Ensures",
    "Invariant",
    "LeadsTo",
    "Property",
    "Stable",
    "Unless",
]
