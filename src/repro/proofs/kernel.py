"""A machine-checked proof kernel for the UNITY logic of the paper.

The paper's correctness arguments (section 6) are *derivations*: chains of
basic proof-rule applications (eqs. 27–33) and metatheorems (appendix 8 —
consequence weakening, conjunction, cancellation, generalized disjunction,
PSP, plus transitivity (30), disjunction (31) and induction).  This module
replays such derivations mechanically: every rule application validates its
side conditions semantically on the finite space and returns a
:class:`Proof` object; invalid steps raise :class:`ProofError`.

Assumed properties — the paper's mixed-specification assumptions such as
the channel liveness properties (St-1)–(St-4) and the stable-knowledge
assumptions (Kbp-3)/(Kbp-4) — enter derivations through
:meth:`ProofContext.assume`, and are recorded in the proof tree so the
final theorem explicitly carries its assumption set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from ..predicates import Predicate
from ..transformers import strongest_invariant
from ..unity import Program
from . import checking
from .properties import Ensures, Invariant, LeadsTo, Property, Stable, Unless


class ProofError(Exception):
    """A proof rule was applied with unsatisfied side conditions."""


@dataclass(frozen=True)
class Proof:
    """A checked derivation of a UNITY property.

    ``rule`` names the applied rule; ``premises`` are sub-proofs.  A proof
    whose transitive premises contain rule ``"assumption"`` is valid only
    relative to those assumptions (exactly the paper's usage).
    """

    conclusion: Property
    rule: str
    premises: Tuple["Proof", ...] = ()
    note: str = ""

    def assumptions(self) -> List[Property]:
        """All assumption leaves in the derivation."""
        if self.rule == "assumption":
            return [self.conclusion]
        out: List[Property] = []
        for premise in self.premises:
            out.extend(premise.assumptions())
        return out

    def size(self) -> int:
        """Number of rule applications in the tree."""
        return 1 + sum(premise.size() for premise in self.premises)

    def pretty(self, indent: int = 0) -> str:
        """Render the proof tree, one rule per line."""
        pad = "  " * indent
        note = f"   # {self.note}" if self.note else ""
        lines = [f"{pad}{self.conclusion}   ⟨{self.rule}⟩{note}"]
        for premise in self.premises:
            lines.append(premise.pretty(indent + 1))
        return "\n".join(lines)


class ProofContext:
    """A program, an invariant baseline, and a set of admitted assumptions.

    ``si`` defaults to the program's computed strongest invariant; pass
    ``Predicate.true(space)`` to reason without it (strictly harder
    obligations, as the paper notes about choosing ``I = true`` in (32)).
    """

    def __init__(
        self,
        program: Program,
        si: Optional[Predicate] = None,
        assumptions: Iterable[Property] = (),
        emit_certificates: bool = False,
    ):
        self.program = program
        self.space = program.space
        self.si = si if si is not None else strongest_invariant(program)
        self.assumptions: Tuple[Property, ...] = tuple(assumptions)
        #: With ``emit_certificates=True``, every model-checked leads-to
        #: leaf appends its replayable ranking-stage certificate here.
        self.emit_certificates = emit_certificates
        self.certificates: List[object] = []

    # ------------------------------------------------------------------
    # small helpers
    # ------------------------------------------------------------------

    def _require(self, condition: bool, message: str) -> None:
        if not condition:
            raise ProofError(message)

    def _valid(self, p: Predicate) -> bool:
        """``[SI ⇒ p]`` — validity relative to the invariant baseline."""
        return self.si.entails(p)

    def false(self) -> Predicate:
        return Predicate.false(self.space)

    def true(self) -> Predicate:
        return Predicate.true(self.space)

    # ------------------------------------------------------------------
    # leaves
    # ------------------------------------------------------------------

    def assume(self, prop: Property) -> Proof:
        """Use an admitted assumption (must be registered in the context)."""
        self._require(
            prop in self.assumptions,
            f"{prop} is not among the context's admitted assumptions",
        )
        return Proof(prop, "assumption")

    def unless_from_text(self, p: Predicate, q: Predicate, note: str = "") -> Proof:
        """Eq. (27) checked against every statement."""
        self._require(
            checking.holds_unless(self.program, p, q, self.si),
            f"unless does not follow from the text: {Unless(p, q)}",
        )
        return Proof(Unless(p, q), "unless-from-text", note=note)

    def ensures_from_text(self, p: Predicate, q: Predicate, note: str = "") -> Proof:
        """Eq. (28) checked against every statement."""
        self._require(
            checking.holds_ensures(self.program, p, q, self.si),
            f"ensures does not follow from the text: {Ensures(p, q)}",
        )
        return Proof(Ensures(p, q), "ensures-from-text", note=note)

    def ensures_from_unless(self, unless_proof: Proof, note: str = "") -> Proof:
        """``p unless q`` + a helpful statement from the text ⊢ ``p ensures q``.

        The paper's route in the proof of (40): the ``unless`` part comes
        from metatheorems (keeping the derivation abstract), and only the
        single-statement existential of eq. (28) is read off the text.
        """
        p, q = self._as_unless(unless_proof)
        self._require(
            bool(checking.helpful_statements(self.program, p, q, self.si)),
            f"no single statement establishes q from p ∧ ¬q for {Ensures(p, q)}",
        )
        return Proof(Ensures(p, q), "ensures-from-unless(28)", (unless_proof,), note)

    def stable_from_text(self, p: Predicate, note: str = "") -> Proof:
        """Eq. (33) via (27) with ``q = false``."""
        self._require(
            checking.holds_stable(self.program, p, self.si),
            f"stable does not follow from the text: {Stable(p)}",
        )
        return Proof(Stable(p), "stable-from-text", note=note)

    def invariant_by_induction(
        self,
        p: Predicate,
        auxiliary: Optional[Proof] = None,
        note: str = "",
    ) -> Proof:
        """Eq. (32): inductive invariance relative to a proven invariant ``I``."""
        aux_pred = self.true()
        premises: Tuple[Proof, ...] = ()
        if auxiliary is not None:
            self._require(
                isinstance(auxiliary.conclusion, Invariant),
                "auxiliary premise must be an invariant proof",
            )
            aux_pred = auxiliary.conclusion.p
            premises = (auxiliary,)
        self._require(
            checking.holds_invariant_by_induction(self.program, p, aux_pred),
            f"induction fails for {Invariant(p)}",
        )
        return Proof(Invariant(p), "invariant-induction(32)", premises, note)

    def invariant_by_si(self, p: Predicate, note: str = "") -> Proof:
        """Eq. (5): ``[SI ⇒ p]`` with the context's SI."""
        self._require(self._valid(p), f"[SI ⇒ p] fails for {Invariant(p)}")
        return Proof(Invariant(p), "invariant-by-SI(5)", note=note)

    def invariant_init(self, note: str = "") -> Proof:
        """``invariant true`` — available in every program."""
        return Proof(Invariant(self.true()), "invariant-true", note=note)

    def invariant_by_strengthening(self, p: Predicate, note: str = "") -> Proof:
        """Prove ``invariant p`` by *automatic* auxiliary-invariant search.

        Rule (32) needs an auxiliary invariant ``I`` making ``p ∧ I``
        inductive; this rule computes the canonical choice — the largest
        inductive subset of ``p`` — proves it by induction, and weakens.
        Mechanizes what the paper's proofs do by hand when they chain
        auxiliary invariants.
        """
        from ..transformers import largest_inductive_subset

        strengthened = largest_inductive_subset(self.program, p)
        self._require(
            self.program.init.entails(strengthened),
            f"no inductive strengthening of {Invariant(p)} contains init",
        )
        inductive = self.invariant_by_induction(
            strengthened, note="largest inductive subset"
        )
        return Proof(
            Invariant(p),
            "invariant-auto-strengthening",
            (inductive,),
            note,
        )

    def invariant_weakening(self, proof: Proof, q: Predicate, note: str = "") -> Proof:
        """``invariant p, [p ⇒ q] ⊢ invariant q`` (monotonicity of [SI ⇒ ·])."""
        self._require(
            isinstance(proof.conclusion, Invariant), "premise must be an invariant"
        )
        p = proof.conclusion.p
        self._require(p.entails(q), "side condition [p ⇒ q] fails")
        return Proof(Invariant(q), "invariant-weakening", (proof,), note)

    def invariant_conjunction(self, left: Proof, right: Proof, note: str = "") -> Proof:
        """``invariant p, invariant q ⊢ invariant (p ∧ q)``."""
        for proof in (left, right):
            self._require(
                isinstance(proof.conclusion, Invariant), "premises must be invariants"
            )
        return Proof(
            Invariant(left.conclusion.p & right.conclusion.p),
            "invariant-conjunction",
            (left, right),
            note,
        )

    # ------------------------------------------------------------------
    # structural rules on unless/stable
    # ------------------------------------------------------------------

    def _as_unless(self, proof: Proof) -> Tuple[Predicate, Predicate]:
        conclusion = proof.conclusion
        if isinstance(conclusion, Unless):
            return conclusion.p, conclusion.q
        if isinstance(conclusion, Stable):
            return conclusion.p, self.false()
        if isinstance(conclusion, Ensures):
            # ensures includes its unless part by definition (28).
            return conclusion.p, conclusion.q
        raise ProofError(f"expected an unless/stable premise, got {conclusion}")

    def consequence_weakening_unless(
        self, proof: Proof, r: Predicate, note: str = ""
    ) -> Proof:
        """``p unless q, [q ⇒ r] ⊢ p unless r`` (appendix 8.2)."""
        p, q = self._as_unless(proof)
        self._require(self._valid(q.implies(r)), "side condition [q ⇒ r] fails")
        return Proof(Unless(p, r), "unless-consequence-weakening", (proof,), note)

    def antecedent_strengthening_unless(
        self, proof: Proof, p_new: Predicate, note: str = ""
    ) -> Proof:
        """``p unless q, [p' ⇒ p] ⊢ p' unless q ∨ (p ∧ ¬p')`` — a sound corollary.

        Any step from ``p' ∧ ¬q ⊆ p ∧ ¬q`` lands in ``p ∨ q``, and
        ``p ∨ q ⊆ p' ∨ (q ∨ (p ∧ ¬p'))`` — so the conclusion follows with
        no recheck of the text.
        """
        p, q = self._as_unless(proof)
        self._require(self._valid(p_new.implies(p)), "side condition [p' ⇒ p] fails")
        return Proof(
            Unless(p_new, q | (p & ~p_new)),
            "unless-antecedent-strengthening",
            (proof,),
            note,
        )

    def conjunction_unless(self, left: Proof, right: Proof, note: str = "") -> Proof:
        """Simple conjunction (8.3): ``(p∧p') unless (q∨q')``."""
        p1, q1 = self._as_unless(left)
        p2, q2 = self._as_unless(right)
        return Proof(Unless(p1 & p2, q1 | q2), "unless-conjunction", (left, right), note)

    def general_conjunction_unless(
        self, left: Proof, right: Proof, note: str = ""
    ) -> Proof:
        """General conjunction (8.3): ``(p∧p') unless (p∧q')∨(p'∧q)∨(q∧q')``."""
        p1, q1 = self._as_unless(left)
        p2, q2 = self._as_unless(right)
        q = (p1 & q2) | (p2 & q1) | (q1 & q2)
        return Proof(
            Unless(p1 & p2, q), "unless-general-conjunction", (left, right), note
        )

    def cancellation_unless(self, left: Proof, right: Proof, note: str = "") -> Proof:
        """Cancellation (8.4): ``p unless q, q unless r ⊢ (p∨q) unless r``."""
        p1, q1 = self._as_unless(left)
        p2, q2 = self._as_unless(right)
        self._require(
            self._valid(q1.iff(p2)),
            "cancellation needs the middle predicates to match (q ≡ q')",
        )
        return Proof(Unless(p1 | p2, q2), "unless-cancellation", (left, right), note)

    def general_disjunction_unless(
        self, proofs: Sequence[Proof], note: str = ""
    ) -> Proof:
        """Generalized disjunction (8.5) over a finite family.

        ``(∀i :: p.i unless q.i) ⊢
        (∃i :: p.i) unless (∀i :: ¬p.i ∨ q.i) ∧ (∃i :: q.i)``.
        """
        self._require(bool(proofs), "generalized disjunction needs premises")
        ps: List[Predicate] = []
        qs: List[Predicate] = []
        for proof in proofs:
            p, q = self._as_unless(proof)
            ps.append(p)
            qs.append(q)
        exists_p = self.false()
        for p in ps:
            exists_p = exists_p | p
        all_done = self.true()
        for p, q in zip(ps, qs):
            all_done = all_done & (~p | q)
        exists_q = self.false()
        for q in qs:
            exists_q = exists_q | q
        return Proof(
            Unless(exists_p, all_done & exists_q),
            "unless-general-disjunction",
            tuple(proofs),
            note,
        )

    def stable_from_unless(self, proof: Proof, note: str = "") -> Proof:
        """``p unless false ⊢ stable p`` (eq. 33, packaging direction)."""
        p, q = self._as_unless(proof)
        self._require(self._valid(~q), "unless consequent must be false (mod SI)")
        return Proof(Stable(p), "stable-from-unless", (proof,), note)

    def stable_conjunction(self, left: Proof, right: Proof, note: str = "") -> Proof:
        """``stable p, stable q ⊢ stable (p ∧ q)`` (conjunction with q=q'=false)."""
        for proof in (left, right):
            self._require(
                isinstance(proof.conclusion, Stable), "premises must be stable"
            )
        p1 = left.conclusion.p
        p2 = right.conclusion.p
        return Proof(Stable(p1 & p2), "stable-conjunction", (left, right), note)

    # ------------------------------------------------------------------
    # progress rules
    # ------------------------------------------------------------------

    def _as_leads_to(self, proof: Proof) -> Tuple[Predicate, Predicate]:
        conclusion = proof.conclusion
        if isinstance(conclusion, LeadsTo):
            return conclusion.p, conclusion.q
        raise ProofError(f"expected a leads-to premise, got {conclusion}")

    def promote_ensures(self, proof: Proof, note: str = "") -> Proof:
        """Eq. (29): ``p ensures q ⊢ p ↦ q``."""
        conclusion = proof.conclusion
        self._require(isinstance(conclusion, Ensures), "premise must be ensures")
        return Proof(LeadsTo(conclusion.p, conclusion.q), "leadsto-promotion(29)", (proof,), note)

    def transitivity(self, left: Proof, right: Proof, note: str = "") -> Proof:
        """Eq. (30): ``p ↦ r, r ↦ q ⊢ p ↦ q``."""
        p1, q1 = self._as_leads_to(left)
        p2, q2 = self._as_leads_to(right)
        self._require(
            self._valid(q1.implies(p2)),
            "transitivity needs [r ⇒ r'] between the premises",
        )
        return Proof(LeadsTo(p1, q2), "leadsto-transitivity(30)", (left, right), note)

    def disjunction(self, proofs: Sequence[Proof], note: str = "") -> Proof:
        """Eq. (31): ``(∀m ∈ W : p.m ↦ q) ⊢ (∃m ∈ W : p.m) ↦ q``."""
        self._require(bool(proofs), "disjunction needs at least one premise")
        q_common: Optional[Predicate] = None
        union_p = self.false()
        for proof in proofs:
            p, q = self._as_leads_to(proof)
            union_p = union_p | p
            if q_common is None:
                q_common = q
            else:
                self._require(
                    q_common == q, "disjunction premises must share the target q"
                )
        assert q_common is not None
        return Proof(LeadsTo(union_p, q_common), "leadsto-disjunction(31)", tuple(proofs), note)

    def leads_to_checked(self, p: Predicate, q: Predicate, note: str = "") -> Proof:
        """A leads-to leaf established by the fair model checker.

        Used the way the paper uses its channel liveness assumptions
        (St-3)/(St-4): facts about the environment that the derivation
        builds on.  Here they are *verified* against the concrete channel
        (by fair-cycle search) rather than assumed.
        """
        from .modelcheck import refute_leads_to

        refutation = refute_leads_to(self.program, p, q, self.si)
        self._require(
            refutation is None,
            f"model checker refutes {LeadsTo(p, q)} (from state {getattr(refutation, 'start', '?')})",
        )
        if self.emit_certificates:
            self.certificates.append(self._leads_to_certificate(p, q, note))
        return Proof(LeadsTo(p, q), "leadsto-model-checked", (), note)

    def _leads_to_certificate(self, p: Predicate, q: Predicate, note: str):
        """Replayable evidence for a checked leads-to leaf.

        The certificate embeds the program's own SI chain so it stands
        alone; the context's ``si`` must therefore *be* the strongest
        invariant (the default), not an over-approximation.
        """
        from ..certificates.canonical import program_digest
        from ..certificates.certs import LeadsToCertificate
        from ..transformers import sst
        from .modelcheck import wlt_stages

        result = sst(self.program, self.program.init)
        if not result.predicate == self.si:
            raise ProofError(
                "cannot certify a leads-to leaf: the context's si is not "
                "the program's strongest invariant"
            )
        report = wlt_stages(self.program, q, self.si)
        if not p.entails(report.value):  # pragma: no cover — cross-check
            raise ProofError("wlt disagrees with the fair-cycle refuter")
        return LeadsToCertificate(
            program=program_digest(self.program),
            p=p,
            q=q,
            reach=self.si,
            stages=report.stages,
            si_chain=result.chain,
            label=note or "leadsto-model-checked",
        )

    def implication(self, p: Predicate, q: Predicate, note: str = "") -> Proof:
        """Leads-to implication: ``[SI ⇒ (p ⇒ q)] ⊢ p ↦ q``.

        (Immediate from promotion of the trivial ensures; relied on
        throughout the paper's liveness proofs.)
        """
        self._require(self._valid(p.implies(q)), "side condition [p ⇒ q] fails")
        return Proof(LeadsTo(p, q), "leadsto-implication", (), note)

    def consequence_weakening_leads_to(
        self, proof: Proof, r: Predicate, note: str = ""
    ) -> Proof:
        """``p ↦ q, [q ⇒ r] ⊢ p ↦ r`` (appendix 8.2)."""
        p, q = self._as_leads_to(proof)
        self._require(self._valid(q.implies(r)), "side condition [q ⇒ r] fails")
        return Proof(LeadsTo(p, r), "leadsto-consequence-weakening", (proof,), note)

    def antecedent_strengthening_leads_to(
        self, proof: Proof, p_new: Predicate, note: str = ""
    ) -> Proof:
        """``p ↦ q, [p' ⇒ p] ⊢ p' ↦ q`` (from implication + transitivity)."""
        p, q = self._as_leads_to(proof)
        self._require(self._valid(p_new.implies(p)), "side condition [p' ⇒ p] fails")
        return Proof(
            LeadsTo(p_new, q), "leadsto-antecedent-strengthening", (proof,), note
        )

    def psp(self, progress: Proof, safety: Proof, note: str = "") -> Proof:
        """PSP (8.6): ``p ↦ q, r unless b ⊢ (p∧r) ↦ (q∧r) ∨ b``."""
        p, q = self._as_leads_to(progress)
        r, b = self._as_unless(safety)
        return Proof(
            LeadsTo(p & r, (q & r) | b), "leadsto-PSP", (progress, safety), note
        )

    def induction(
        self,
        metric: Callable[[int], int],
        family: Callable[[int], Proof],
        values: Sequence[int],
        p: Predicate,
        q: Predicate,
        note: str = "",
    ) -> Proof:
        """Well-founded induction over a finite metric.

        Premises: for every metric value ``m`` in ``values``,
        ``p ∧ (M = m) ↦ (p ∧ M < m) ∨ q``.  Conclusion: ``p ↦ q``.
        Also checks ``values`` covers the metric on ``p ∧ SI``.
        """
        covered = {metric(i) for i in (p & self.si).indices()}
        missing = covered - set(values)
        self._require(
            not missing, f"induction values do not cover metric values {sorted(missing)}"
        )
        premises: List[Proof] = []
        for m in values:
            proof = family(m)
            lhs, rhs = self._as_leads_to(proof)
            level = Predicate.from_callable(
                self.space, lambda s, m=m: metric(s.index) == m
            )
            below = Predicate.from_callable(
                self.space, lambda s, m=m: metric(s.index) < m
            )
            self._require(
                self._valid((p & level).implies(lhs)),
                f"induction premise for m={m} has the wrong antecedent",
            )
            self._require(
                self._valid(rhs.implies((p & below) | q)),
                f"induction premise for m={m} has the wrong consequent",
            )
            premises.append(proof)
        return Proof(LeadsTo(p, q), "leadsto-induction", tuple(premises), note)

    # ------------------------------------------------------------------
    # the substitution metatheorem (appendix 8.1)
    # ------------------------------------------------------------------

    def substitution(
        self, proof: Proof, new_property: Property, note: str = ""
    ) -> Proof:
        """Rewrite a property modulo the context's invariant baseline.

        Appendix 8.1: any invariant may be replaced by ``true`` and vice
        versa — semantically, two predicates equal under ``SI`` are
        interchangeable.  Valid when each predicate of the new property is
        SI-equivalent to its counterpart.
        """
        old = proof.conclusion
        pairs = _predicate_pairs(old, new_property)
        if pairs is None:
            raise ProofError(
                f"substitution cannot turn {old} into {new_property} (shape mismatch)"
            )
        for old_p, new_p in pairs:
            self._require(
                self._valid(old_p.iff(new_p)),
                "substitution predicates differ under SI",
            )
        return Proof(new_property, "substitution(8.1)", (proof,), note)


def _predicate_pairs(old: Property, new: Property):
    if type(old) is not type(new):
        return None
    if isinstance(old, (Invariant, Stable)):
        return [(old.p, new.p)]
    return [(old.p, new.p), (old.q, new.q)]
