"""Direct "from the program text" checks of UNITY properties (eqs. 27–33).

These implement the paper's basic proof rules literally, using the semantic
``wp`` of each statement:

* eq. (27)  ``p unless q  ≡  (∀s :: [SI ⇒ ((p ∧ ¬q) ⇒ wp.s.(p ∨ q))])``
* eq. (28)  ``p ensures q ≡  p unless q ∧ (∃s :: [SI ⇒ ((p ∧ ¬q) ⇒ wp.s.q)])``
* eq. (32)  the invariant rule with an auxiliary invariant ``I``
* eq. (33)  ``stable p ≡ p unless false``

All rules are relative to an invariant: Sanders' reformulation of UNITY
[San91] replaces Chandy–Misra's substitution axiom by making ``unless`` and
``ensures`` explicitly SI-relative.  Pass ``si`` yourself (e.g. ``true`` for
the conservative check, or a proven invariant) or leave it ``None`` to use
the program's computed strongest invariant.

The per-state quantifications are vectorized over numpy (the obligations
range over the whole space, not just the reachable set, whenever the
auxiliary invariant is weaker than SI).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..predicates import Predicate
from ..predicates.npbits import mask_to_array
from ..transformers import strongest_invariant
from ..unity import Program, Statement


def _resolve_si(program: Program, si: Optional[Predicate]) -> Predicate:
    if si is not None:
        if si.space != program.space:
            raise ValueError("si predicate over a different state space")
        return si
    return strongest_invariant(program)


def holds_unless(
    program: Program, p: Predicate, q: Predicate, si: Optional[Predicate] = None
) -> bool:
    """Eq. (27): ``p unless q`` directly from the text."""
    si = _resolve_si(program, si)
    size = program.space.size
    danger = np.flatnonzero(mask_to_array((si & p & ~q).mask, size))
    if danger.size == 0:
        return True
    target = mask_to_array((p | q).mask, size)
    for stmt in program.statements:
        successors = program.successor_np(stmt)
        if not target[successors[danger]].all():
            return False
    return True


def holds_ensures(
    program: Program, p: Predicate, q: Predicate, si: Optional[Predicate] = None
) -> bool:
    """Eq. (28): ``p ensures q`` — ``unless`` plus a single helpful statement."""
    if not holds_unless(program, p, q, si):
        return False
    return bool(helpful_statements(program, p, q, si))


def helpful_statements(
    program: Program, p: Predicate, q: Predicate, si: Optional[Predicate] = None
) -> List[Statement]:
    """The statements witnessing the existential in eq. (28)."""
    si = _resolve_si(program, si)
    size = program.space.size
    danger = np.flatnonzero(mask_to_array((si & p & ~q).mask, size))
    target = mask_to_array(q.mask, size)
    out: List[Statement] = []
    for stmt in program.statements:
        successors = program.successor_np(stmt)
        if danger.size == 0 or target[successors[danger]].all():
            out.append(stmt)
    return out


def holds_stable(
    program: Program, p: Predicate, si: Optional[Predicate] = None
) -> bool:
    """Eq. (33): ``stable p ≡ p unless false``."""
    return holds_unless(program, p, Predicate.false(program.space), si)


def holds_invariant_by_induction(
    program: Program,
    p: Predicate,
    auxiliary: Optional[Predicate] = None,
) -> bool:
    """Eq. (32): ``invariant I ∧ (∀s :: [(p ∧ I) ⇒ wp.s.p]) ⇒ invariant p``.

    ``auxiliary`` is the already-proven invariant ``I`` (``true`` when
    omitted — always an invariant).  Also requires ``[init ⇒ p]``, which the
    paper's statement of the rule leaves implicit in the definition of
    **invariant** ("p holds initially...").
    """
    if not program.init.entails(p):
        return False
    size = program.space.size
    inductive = p if auxiliary is None else p & auxiliary
    sources = np.flatnonzero(mask_to_array(inductive.mask, size))
    if sources.size == 0:
        return True
    target = mask_to_array(p.mask, size)
    for stmt in program.statements:
        successors = program.successor_np(stmt)
        if not target[successors[sources]].all():
            return False
    return True


def holds_invariant(program: Program, p: Predicate) -> bool:
    """Eq. (5): ``invariant p ≡ [SI ⇒ p]`` — the definition, via computed SI."""
    return strongest_invariant(program).entails(p)
