"""UNITY specification properties (paper section 5).

The basic specification language has four properties — ``invariant``,
``unless``, ``ensures`` and leads-to (``↦``) — plus ``stable`` as the
special case ``p unless false`` (eq. 33).  Property objects are immutable
value types; whether a property *holds* of a program is decided by
:mod:`repro.proofs.checking` (directly from the text, eqs. 27–28/32) or
:mod:`repro.proofs.modelcheck` (semantically, under UNITY's fairness), and
*derivations* are built by :mod:`repro.proofs.kernel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..predicates import Predicate


@dataclass(frozen=True)
class Unless:
    """``p unless q``: once ``p ∧ ¬q`` holds, it persists until ``q`` holds.

    Proof-rule reading (eq. 27): every statement started in ``p ∧ ¬q``
    (within SI) ends in ``p ∨ q``.
    """

    p: Predicate
    q: Predicate

    def __str__(self) -> str:
        return f"{_short(self.p)} unless {_short(self.q)}"


@dataclass(frozen=True)
class Ensures:
    """``p ensures q``: ``p unless q`` plus one statement that establishes ``q``.

    Eq. (28) — the single-statement requirement is what injects fairness
    into progress proofs.
    """

    p: Predicate
    q: Predicate

    def __str__(self) -> str:
        return f"{_short(self.p)} ensures {_short(self.q)}"


@dataclass(frozen=True)
class LeadsTo:
    """``p ↦ q``: whenever ``p`` holds, eventually ``q`` will hold.

    The transitive, disjunctive closure of ``ensures`` (eqs. 29–31).
    """

    p: Predicate
    q: Predicate

    def __str__(self) -> str:
        return f"{_short(self.p)} ↦ {_short(self.q)}"


@dataclass(frozen=True)
class Invariant:
    """``invariant p``: ``p`` holds initially and in every reachable state.

    Definitionally ``[SI ⇒ p]`` (eq. 5).
    """

    p: Predicate

    def __str__(self) -> str:
        return f"invariant {_short(self.p)}"


@dataclass(frozen=True)
class Stable:
    """``stable p``: once ``p`` holds it holds forever (``p unless false``)."""

    p: Predicate

    def __str__(self) -> str:
        return f"stable {_short(self.p)}"

    def as_unless(self) -> Unless:
        """The defining ``unless`` form (eq. 33)."""
        return Unless(self.p, Predicate.false(self.p.space))


Property = Union[Unless, Ensures, LeadsTo, Invariant, Stable]


def _short(p: Predicate) -> str:
    count = p.count()
    if count == 0:
        return "false"
    if count == p.space.size:
        return "true"
    return f"⟨{count} states⟩"
