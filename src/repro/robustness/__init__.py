"""Fault tolerance for the sharded eq.-(25) solver.

Three cooperating pieces (DESIGN.md §10):

* :mod:`supervisor` — a shard lease manager that re-dispatches shards lost
  to worker crashes or deadlines, re-spawning the pool when it breaks, and
  degrades to an in-process serial sweep once a shard's retry budget is
  exhausted.  Every incident lands in a structured :class:`FaultLog`.
* :mod:`checkpoint` — an append-only, sha256-chained journal of completed
  shards, so a killed solve resumes from disk and the merged certificate
  is byte-identical to an uninterrupted run.
* :mod:`faults` — a deterministic, seeded fault-injection layer (worker
  crash, shard hang, delayed result, parent kill, torn journal record)
  driven by the ``REPRO_FAULT_PLAN`` grammar; the chaos suite uses it to
  assert that solutions, candidate counts, and certificate digests are
  invariant under every injected fault schedule.
"""

from .checkpoint import (
    JOURNAL_FORMAT,
    JournalError,
    ShardJournal,
    ShardRecord,
    verify_journal,
)
from .faults import (
    FAULT_PLAN_ENV_VAR,
    FaultClause,
    FaultPlan,
    FaultPlanError,
    NetworkFaultPlan,
    SimulatedKill,
)
from .supervisor import (
    FaultIncident,
    FaultLog,
    FaultPolicy,
    ShardSupervisor,
    SolveProgress,
    SolverWorkerError,
)

__all__ = [
    "FAULT_PLAN_ENV_VAR",
    "FaultClause",
    "FaultIncident",
    "FaultLog",
    "FaultPlan",
    "FaultPlanError",
    "FaultPolicy",
    "JOURNAL_FORMAT",
    "JournalError",
    "NetworkFaultPlan",
    "ShardJournal",
    "ShardRecord",
    "ShardSupervisor",
    "SimulatedKill",
    "SolveProgress",
    "SolverWorkerError",
    "verify_journal",
]
