"""Deterministic, seeded fault injection for the sharded solver.

The chaos suite needs faults that are *reproducible* — the same plan, the
same program, the same shard layout must produce the same incident
sequence on every run — and *bounded* — a one-shot fault must not re-fire
forever once the supervisor re-dispatches the shard it hit.  Both follow
from two decisions:

* faults target **shard indices** (positions in the shard-mask list), not
  workers or wall-clock times, so which sweep gets hit does not depend on
  scheduling; ``chaos`` clauses draw their target indices from a seeded
  PRNG once the shard count is known (:meth:`FaultPlan.bind`);
* each clause fires at most ``times`` times, tracked by marker files under
  a scratch directory (created with ``O_CREAT|O_EXCL``, so the count is
  exact even across re-spawned worker processes that share nothing but the
  filesystem).

Plan grammar (the ``REPRO_FAULT_PLAN`` environment variable)::

    plan    :=  clause (';' clause)*
    clause  :=  kind '@' target (':' key '=' value)*

    crash@2                 worker sweeping shard 2 dies (os._exit) once
    crash@2:times=3         ... on its first three attempts
    hang@0:seconds=1.5      shard 0's first attempt stalls before sweeping
    delay@1:seconds=0.2     shard 1's first result arrives 0.2 s late
    kill@3                  the parent dies after journaling 3 shards
    torn@3                  the parent dies halfway through writing the
                            3rd journal record (a torn tail)
    chaos@7:crash=2:hang=1:seconds=0.5
                            seed 7 picks 2 crash shards and 1 hang shard

``crash``/``hang``/``delay`` run inside worker processes; ``kill`` and
``torn`` are parent-side faults that simulate the whole solve being killed
(they raise :class:`SimulatedKill`, which callers treat like SIGKILL — the
checkpoint journal is what survives).
"""

from __future__ import annotations

import os
import random
import tempfile
import time
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

#: Environment knob holding a fault plan for the next solve.
FAULT_PLAN_ENV_VAR = "REPRO_FAULT_PLAN"

#: Worker exit status used by ``crash`` clauses (visible in pool logs).
CRASH_EXIT_STATUS = 66

_WORKER_KINDS = ("crash", "hang", "delay")
_PARENT_KINDS = ("kill", "torn")
_KINDS = _WORKER_KINDS + _PARENT_KINDS + ("chaos",)

#: Network fault kinds (NetworkFaultPlan): ``connrefused`` fires client-side
#: in ``SocketTransport`` (targets a *worker index*); the rest fire inside
#: the worker daemon around result delivery (targeting shard indices), and
#: ``netchaos`` is the seeded picker over all of them.
_NET_CLIENT_KINDS = ("connrefused",)
_NET_WORKER_KINDS = ("disconnect", "stall", "dupresult", "corruptframe")
_NET_KINDS = _NET_CLIENT_KINDS + _NET_WORKER_KINDS + ("netchaos",)


class FaultPlanError(ValueError):
    """A fault plan failed to parse.

    Subclasses :class:`ValueError` for backward compatibility; the message
    always names the offending clause and the valid fault kinds, so a typo
    in ``REPRO_FAULT_PLAN`` is diagnosable from the error alone.
    """


class SimulatedKill(BaseException):
    """The fault plan killed the parent process (simulated).

    Derives from ``BaseException`` so no solver-level ``except Exception``
    can accidentally "recover" from it — a real SIGKILL would not be
    catchable either.  The chaos tests catch it explicitly and then resume
    from the checkpoint journal.
    """


@dataclass(frozen=True)
class FaultClause:
    """One injection: a kind, a target shard (or count), and parameters.

    ``crashes``/``hangs`` are only meaningful on ``chaos`` clauses, whose
    ``target`` is the PRNG seed rather than a shard index.
    """

    kind: str
    target: int
    times: int = 1
    seconds: float = 0.0
    crashes: int = 0
    hangs: int = 0
    #: netchaos-only counts (how many of each network fault the seed picks)
    refused: int = 0
    disconnects: int = 0
    stalls: int = 0
    dups: int = 0
    corrupts: int = 0

    def describe(self) -> str:
        extras = []
        if self.times != 1:
            extras.append(f"times={self.times}")
        if self.seconds:
            extras.append(f"seconds={self.seconds}")
        suffix = (":" + ":".join(extras)) if extras else ""
        return f"{self.kind}@{self.target}{suffix}"


def _parse_clause(
    text: str, kinds: Tuple[str, ...] = _KINDS
) -> Tuple[str, int, Dict[str, float]]:
    head, _, tail = text.partition(":")
    kind, at, target = head.partition("@")
    if not at:
        raise FaultPlanError(
            f"fault clause {text!r} has no '@': expected "
            f"'<kind>@<target>[:k=v...]' with kind one of {', '.join(kinds)}"
        )
    if kind not in kinds:
        raise FaultPlanError(
            f"fault clause {text!r} names unknown fault kind {kind!r}; "
            f"valid kinds are {', '.join(kinds)}"
        )
    try:
        index = int(target)
    except ValueError:
        raise FaultPlanError(
            f"fault clause {text!r} has a non-integer target {target!r}"
        ) from None
    params: Dict[str, float] = {}
    if tail:
        for pair in tail.split(":"):
            key, eq, value = pair.partition("=")
            if not eq:
                raise FaultPlanError(
                    f"fault clause {text!r}: {pair!r} is not k=v"
                )
            try:
                params[key] = float(value)
            except ValueError:
                raise FaultPlanError(
                    f"fault clause {text!r}: {value!r} is not numeric"
                ) from None
    return kind, index, params


@dataclass(frozen=True)
class FaultPlan:
    """A parsed fault schedule plus the scratch dir tracking fired clauses."""

    clauses: Tuple[FaultClause, ...]
    scratch: str = field(default_factory=lambda: tempfile.mkdtemp(prefix="repro-faults-"))

    #: valid clause kinds for this plan class (subclasses extend)
    KINDS = _KINDS

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def _build_clause(
        cls, kind: str, target: int, params: Dict[str, float]
    ) -> FaultClause:
        if kind == "chaos":
            return FaultClause(
                kind="chaos",
                target=target,  # the seed
                seconds=params.get("seconds", 0.5),
                crashes=int(params.get("crash", 1)),
                hangs=int(params.get("hang", 0)),
            )
        return FaultClause(
            kind=kind,
            target=target,
            times=int(params.get("times", 1)),
            seconds=params.get("seconds", 0.0),
        )

    @classmethod
    def parse(cls, text: str, scratch: Optional[str] = None) -> "FaultPlan":
        clauses = []
        for raw in text.split(";"):
            raw = raw.strip()
            if not raw:
                continue
            kind, target, params = _parse_clause(raw, cls.KINDS)
            clauses.append(cls._build_clause(kind, target, params))
        if scratch is None:
            return cls(clauses=tuple(clauses))
        return cls(clauses=tuple(clauses), scratch=scratch)

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan named by ``REPRO_FAULT_PLAN``, or ``None`` when unset.

        A plan that uses any network fault kind parses as
        :class:`NetworkFaultPlan` so socket solves can inject network
        faults straight from the environment.
        """
        raw = os.environ.get(FAULT_PLAN_ENV_VAR)
        if not raw:
            return None
        if cls is FaultPlan and any(
            clause.strip().partition("@")[0] in _NET_KINDS
            for clause in raw.split(";")
        ):
            return NetworkFaultPlan.parse(raw)
        return cls.parse(raw)

    def bind(self, shard_count: int, worker_count: int = 1) -> "FaultPlan":
        """Resolve seeded ``chaos`` clauses into concrete shard targets.

        Deterministic: the clause's seed and the shard count fully determine
        which indices are hit, independent of scheduling.  ``worker_count``
        is unused here; :class:`NetworkFaultPlan` draws connection-level
        targets from it.
        """
        bound = []
        for clause in self.clauses:
            if clause.kind != "chaos":
                bound.append(clause)
                continue
            rng = random.Random(clause.target)
            want = min(clause.crashes + clause.hangs, shard_count)
            picks = rng.sample(range(shard_count), want)
            for i, index in enumerate(picks):
                kind = "crash" if i < clause.crashes else "hang"
                bound.append(
                    FaultClause(kind=kind, target=index, seconds=clause.seconds)
                )
        return replace(self, clauses=tuple(bound))

    # ------------------------------------------------------------------
    # one-shot accounting
    # ------------------------------------------------------------------

    def _fire(self, clause: FaultClause) -> bool:
        """Atomically claim one of the clause's ``times`` firings.

        Marker files make the count exact across processes: a re-spawned
        worker sees the markers its crashed predecessor left behind.
        """
        os.makedirs(self.scratch, exist_ok=True)
        stem = f"{clause.kind}-{clause.target}"
        for attempt in range(clause.times):
            path = os.path.join(self.scratch, f"{stem}.{attempt}")
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            return True
        return False

    # ------------------------------------------------------------------
    # worker-side hooks (threaded through _init_worker)
    # ------------------------------------------------------------------

    def before_shard(self, shard_index: int) -> None:
        """Crash or stall the worker about to sweep ``shard_index``."""
        for clause in self.clauses:
            if clause.target != shard_index:
                continue
            if clause.kind == "crash" and self._fire(clause):
                os._exit(CRASH_EXIT_STATUS)
            if clause.kind == "hang" and self._fire(clause):
                time.sleep(clause.seconds)

    def after_shard(self, shard_index: int) -> None:
        """Delay the completed result of ``shard_index`` (still valid)."""
        for clause in self.clauses:
            if (
                clause.kind == "delay"
                and clause.target == shard_index
                and self._fire(clause)
            ):
                time.sleep(clause.seconds)

    # ------------------------------------------------------------------
    # parent-side hooks (journal writes)
    # ------------------------------------------------------------------

    def tears_record(self, completion_count: int) -> bool:
        """Whether the ``completion_count``-th journal append is torn."""
        for clause in self.clauses:
            if (
                clause.kind == "torn"
                and clause.target == completion_count
                and self._fire(clause)
            ):
                return True
        return False

    def after_journal_append(self, completion_count: int) -> None:
        """Kill the parent once ``completion_count`` shards are journaled."""
        for clause in self.clauses:
            if (
                clause.kind == "kill"
                and clause.target == completion_count
                and self._fire(clause)
            ):
                raise SimulatedKill(
                    f"fault plan killed the solve after {completion_count} "
                    "journaled shards"
                )


@dataclass(frozen=True)
class NetworkFaultPlan(FaultPlan):
    """The PR-4 fault grammar extended with network failure modes.

    All base kinds keep working (a worker daemon runs ``crash``/``hang``/
    ``delay`` clauses inside its sweep exactly like a pool worker, so
    ``crash@k`` kills the whole daemon mid-shard).  The new kinds::

        connrefused@0            SocketTransport's connect to worker 0 is
                                 refused once (client-side; retries/backoff
                                 then reach the real daemon)
        disconnect@2             the daemon drops the connection halfway
                                 through writing shard 2's result frame
        stall@1:seconds=30       the daemon goes silent (no heartbeats, no
                                 result) for 30 s before delivering shard 1
        dupresult@3              shard 3's result frame is sent twice
        corruptframe@2           shard 2's result body is sent with one bit
                                 flipped (the frame digest then fails)
        netchaos@7:refused=1:disconnect=1:stall=1:dup=1:corrupt=1:seconds=20
                                 seed 7 deterministically picks targets for
                                 each count once shard/worker counts are
                                 known (:meth:`bind`)

    Like every clause, each fires at most ``times`` times via the marker
    files in ``scratch`` — the scratch path travels inside the pickled
    plan, so a localhost daemon shares the same one-shot accounting as the
    coordinator.  (Cross-host chaos would need a shared scratch mount; the
    chaos suite runs on localhost.)
    """

    KINDS = _KINDS + _NET_KINDS

    @classmethod
    def _build_clause(
        cls, kind: str, target: int, params: Dict[str, float]
    ) -> FaultClause:
        if kind == "netchaos":
            return FaultClause(
                kind="netchaos",
                target=target,  # the seed
                seconds=params.get("seconds", 20.0),
                refused=int(params.get("refused", 0)),
                disconnects=int(params.get("disconnect", 0)),
                stalls=int(params.get("stall", 0)),
                dups=int(params.get("dup", 0)),
                corrupts=int(params.get("corrupt", 0)),
            )
        if kind == "stall":
            clause = super()._build_clause(kind, target, params)
            if not clause.seconds:
                clause = replace(clause, seconds=20.0)
            return clause
        return super()._build_clause(kind, target, params)

    def bind(self, shard_count: int, worker_count: int = 1) -> "FaultPlan":
        """Resolve ``chaos``/``netchaos`` seeds into concrete targets.

        Shard-level kinds draw distinct shard indices, connection-level
        ``connrefused`` draws worker indices — both from the clause's own
        seeded PRNG, so the incident set is a pure function of
        (seed, shard_count, worker_count).
        """
        base = super().bind(shard_count, worker_count)
        bound = []
        for clause in base.clauses:
            if clause.kind != "netchaos":
                bound.append(clause)
                continue
            rng = random.Random(clause.target)
            shard_kinds = (
                ["disconnect"] * clause.disconnects
                + ["stall"] * clause.stalls
                + ["dupresult"] * clause.dups
                + ["corruptframe"] * clause.corrupts
            )
            want = min(len(shard_kinds), shard_count)
            picks = rng.sample(range(shard_count), want)
            for kind, index in zip(shard_kinds, picks):
                bound.append(
                    FaultClause(kind=kind, target=index, seconds=clause.seconds)
                )
            for _ in range(min(clause.refused, worker_count)):
                bound.append(
                    FaultClause(
                        kind="connrefused",
                        target=rng.randrange(worker_count),
                    )
                )
        return replace(base, clauses=tuple(bound))

    # ------------------------------------------------------------------
    # client-side hook (SocketTransport)
    # ------------------------------------------------------------------

    def refuses_connect(self, worker_index: int) -> bool:
        """Whether this connect attempt to ``worker_index`` is refused."""
        for clause in self.clauses:
            if (
                clause.kind == "connrefused"
                and clause.target == worker_index
                and self._fire(clause)
            ):
                return True
        return False

    # ------------------------------------------------------------------
    # daemon-side hook (repro.worker result delivery)
    # ------------------------------------------------------------------

    def before_result(self, shard_index: int) -> Tuple[FaultClause, ...]:
        """Fired network clauses to apply to ``shard_index``'s result.

        The daemon interprets each returned clause: ``disconnect`` truncates
        the result frame and closes the connection, ``stall`` suppresses
        heartbeats and sleeps, ``dupresult`` sends the frame twice,
        ``corruptframe`` flips a body bit under an honest length header.
        """
        fired = []
        for clause in self.clauses:
            if (
                clause.kind in _NET_WORKER_KINDS
                and clause.target == shard_index
                and self._fire(clause)
            ):
                fired.append(clause)
        return tuple(fired)
