"""Deterministic, seeded fault injection for the sharded solver.

The chaos suite needs faults that are *reproducible* — the same plan, the
same program, the same shard layout must produce the same incident
sequence on every run — and *bounded* — a one-shot fault must not re-fire
forever once the supervisor re-dispatches the shard it hit.  Both follow
from two decisions:

* faults target **shard indices** (positions in the shard-mask list), not
  workers or wall-clock times, so which sweep gets hit does not depend on
  scheduling; ``chaos`` clauses draw their target indices from a seeded
  PRNG once the shard count is known (:meth:`FaultPlan.bind`);
* each clause fires at most ``times`` times, tracked by marker files under
  a scratch directory (created with ``O_CREAT|O_EXCL``, so the count is
  exact even across re-spawned worker processes that share nothing but the
  filesystem).

Plan grammar (the ``REPRO_FAULT_PLAN`` environment variable)::

    plan    :=  clause (';' clause)*
    clause  :=  kind '@' target (':' key '=' value)*

    crash@2                 worker sweeping shard 2 dies (os._exit) once
    crash@2:times=3         ... on its first three attempts
    hang@0:seconds=1.5      shard 0's first attempt stalls before sweeping
    delay@1:seconds=0.2     shard 1's first result arrives 0.2 s late
    kill@3                  the parent dies after journaling 3 shards
    torn@3                  the parent dies halfway through writing the
                            3rd journal record (a torn tail)
    chaos@7:crash=2:hang=1:seconds=0.5
                            seed 7 picks 2 crash shards and 1 hang shard

``crash``/``hang``/``delay`` run inside worker processes; ``kill`` and
``torn`` are parent-side faults that simulate the whole solve being killed
(they raise :class:`SimulatedKill`, which callers treat like SIGKILL — the
checkpoint journal is what survives).
"""

from __future__ import annotations

import os
import random
import tempfile
import time
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

#: Environment knob holding a fault plan for the next solve.
FAULT_PLAN_ENV_VAR = "REPRO_FAULT_PLAN"

#: Worker exit status used by ``crash`` clauses (visible in pool logs).
CRASH_EXIT_STATUS = 66

_WORKER_KINDS = ("crash", "hang", "delay")
_PARENT_KINDS = ("kill", "torn")
_KINDS = _WORKER_KINDS + _PARENT_KINDS + ("chaos",)


class FaultPlanError(ValueError):
    """A fault plan failed to parse.

    Subclasses :class:`ValueError` for backward compatibility; the message
    always names the offending clause and the valid fault kinds, so a typo
    in ``REPRO_FAULT_PLAN`` is diagnosable from the error alone.
    """


class SimulatedKill(BaseException):
    """The fault plan killed the parent process (simulated).

    Derives from ``BaseException`` so no solver-level ``except Exception``
    can accidentally "recover" from it — a real SIGKILL would not be
    catchable either.  The chaos tests catch it explicitly and then resume
    from the checkpoint journal.
    """


@dataclass(frozen=True)
class FaultClause:
    """One injection: a kind, a target shard (or count), and parameters.

    ``crashes``/``hangs`` are only meaningful on ``chaos`` clauses, whose
    ``target`` is the PRNG seed rather than a shard index.
    """

    kind: str
    target: int
    times: int = 1
    seconds: float = 0.0
    crashes: int = 0
    hangs: int = 0

    def describe(self) -> str:
        extras = []
        if self.times != 1:
            extras.append(f"times={self.times}")
        if self.seconds:
            extras.append(f"seconds={self.seconds}")
        suffix = (":" + ":".join(extras)) if extras else ""
        return f"{self.kind}@{self.target}{suffix}"


def _parse_clause(text: str) -> Tuple[str, int, Dict[str, float]]:
    head, _, tail = text.partition(":")
    kind, at, target = head.partition("@")
    if not at:
        raise FaultPlanError(
            f"fault clause {text!r} has no '@': expected "
            f"'<kind>@<target>[:k=v...]' with kind one of {', '.join(_KINDS)}"
        )
    if kind not in _KINDS:
        raise FaultPlanError(
            f"fault clause {text!r} names unknown fault kind {kind!r}; "
            f"valid kinds are {', '.join(_KINDS)}"
        )
    try:
        index = int(target)
    except ValueError:
        raise FaultPlanError(
            f"fault clause {text!r} has a non-integer target {target!r}"
        ) from None
    params: Dict[str, float] = {}
    if tail:
        for pair in tail.split(":"):
            key, eq, value = pair.partition("=")
            if not eq:
                raise FaultPlanError(
                    f"fault clause {text!r}: {pair!r} is not k=v"
                )
            try:
                params[key] = float(value)
            except ValueError:
                raise FaultPlanError(
                    f"fault clause {text!r}: {value!r} is not numeric"
                ) from None
    return kind, index, params


@dataclass(frozen=True)
class FaultPlan:
    """A parsed fault schedule plus the scratch dir tracking fired clauses."""

    clauses: Tuple[FaultClause, ...]
    scratch: str = field(default_factory=lambda: tempfile.mkdtemp(prefix="repro-faults-"))

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, text: str, scratch: Optional[str] = None) -> "FaultPlan":
        clauses = []
        for raw in text.split(";"):
            raw = raw.strip()
            if not raw:
                continue
            kind, target, params = _parse_clause(raw)
            if kind == "chaos":
                clauses.append(
                    FaultClause(
                        kind="chaos",
                        target=target,  # the seed
                        seconds=params.get("seconds", 0.5),
                        crashes=int(params.get("crash", 1)),
                        hangs=int(params.get("hang", 0)),
                    )
                )
                continue
            clauses.append(
                FaultClause(
                    kind=kind,
                    target=target,
                    times=int(params.get("times", 1)),
                    seconds=params.get("seconds", 0.0),
                )
            )
        if scratch is None:
            return cls(clauses=tuple(clauses))
        return cls(clauses=tuple(clauses), scratch=scratch)

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan named by ``REPRO_FAULT_PLAN``, or ``None`` when unset."""
        raw = os.environ.get(FAULT_PLAN_ENV_VAR)
        if not raw:
            return None
        return cls.parse(raw)

    def bind(self, shard_count: int) -> "FaultPlan":
        """Resolve seeded ``chaos`` clauses into concrete shard targets.

        Deterministic: the clause's seed and the shard count fully determine
        which indices are hit, independent of scheduling.
        """
        bound = []
        for clause in self.clauses:
            if clause.kind != "chaos":
                bound.append(clause)
                continue
            rng = random.Random(clause.target)
            want = min(clause.crashes + clause.hangs, shard_count)
            picks = rng.sample(range(shard_count), want)
            for i, index in enumerate(picks):
                kind = "crash" if i < clause.crashes else "hang"
                bound.append(
                    FaultClause(kind=kind, target=index, seconds=clause.seconds)
                )
        return replace(self, clauses=tuple(bound))

    # ------------------------------------------------------------------
    # one-shot accounting
    # ------------------------------------------------------------------

    def _fire(self, clause: FaultClause) -> bool:
        """Atomically claim one of the clause's ``times`` firings.

        Marker files make the count exact across processes: a re-spawned
        worker sees the markers its crashed predecessor left behind.
        """
        os.makedirs(self.scratch, exist_ok=True)
        stem = f"{clause.kind}-{clause.target}"
        for attempt in range(clause.times):
            path = os.path.join(self.scratch, f"{stem}.{attempt}")
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            return True
        return False

    # ------------------------------------------------------------------
    # worker-side hooks (threaded through _init_worker)
    # ------------------------------------------------------------------

    def before_shard(self, shard_index: int) -> None:
        """Crash or stall the worker about to sweep ``shard_index``."""
        for clause in self.clauses:
            if clause.target != shard_index:
                continue
            if clause.kind == "crash" and self._fire(clause):
                os._exit(CRASH_EXIT_STATUS)
            if clause.kind == "hang" and self._fire(clause):
                time.sleep(clause.seconds)

    def after_shard(self, shard_index: int) -> None:
        """Delay the completed result of ``shard_index`` (still valid)."""
        for clause in self.clauses:
            if (
                clause.kind == "delay"
                and clause.target == shard_index
                and self._fire(clause)
            ):
                time.sleep(clause.seconds)

    # ------------------------------------------------------------------
    # parent-side hooks (journal writes)
    # ------------------------------------------------------------------

    def tears_record(self, completion_count: int) -> bool:
        """Whether the ``completion_count``-th journal append is torn."""
        for clause in self.clauses:
            if (
                clause.kind == "torn"
                and clause.target == completion_count
                and self._fire(clause)
            ):
                return True
        return False

    def after_journal_append(self, completion_count: int) -> None:
        """Kill the parent once ``completion_count`` shards are journaled."""
        for clause in self.clauses:
            if (
                clause.kind == "kill"
                and clause.target == completion_count
                and self._fire(clause)
            ):
                raise SimulatedKill(
                    f"fault plan killed the solve after {completion_count} "
                    "journaled shards"
                )
