"""The append-only shard-completion journal behind checkpoint/resume.

A journal is a JSONL file: one canonical-JSON record per line, each
carrying a ``chain`` digest that sha256-links it to everything before it::

    {"chain": c0, ...header: format, program digest, shard layout...}
    {"chain": c1, "type": "shard", "index": 3, "solutions": [...], ...}
    {"chain": c2, "type": "shard", "index": 0, ...}

where ``c0 = sha256(canonical(header body))`` and
``c_{n} = sha256(c_{n-1} + canonical(body_n))`` (the ``chain`` key itself
is excluded from the hashed body).  The chain gives the same tamper
evidence as the certificate envelopes (PR 2): editing or reordering any
journaled shard invalidates every later digest.

Failure semantics on load distinguish the two ways a journal goes bad:

* a **torn tail** — the final line is unparsable or its chain digest does
  not verify — is what a crash mid-append legitimately leaves behind; the
  record is discarded and the resume simply re-sweeps that shard;
* anything wrong **before** the final line (bad JSON, a broken chain link,
  a malformed record) cannot be produced by a crash and raises
  :class:`JournalError` — resuming from a tampered journal would forfeit
  the byte-identical-certificate guarantee.

The header pins the program digest (via ``certificates.canonical``) and
the exact shard layout; :meth:`ShardJournal.open` refuses to resume a
solve whose parameters differ in any way from the journaled ones.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..certificates.canonical import canonical_dumps

#: Journal line format tag; bump on incompatible record changes.
JOURNAL_FORMAT = "repro-shard-journal/v1"


class JournalError(Exception):
    """A journal failed to parse, verify its chain, or match its solve."""


@dataclass(frozen=True)
class ShardRecord:
    """One journaled shard completion."""

    index: int
    fixed_mask: int
    solutions: Tuple[int, ...]
    checked: int
    #: encoded per-candidate evidence ([kind, payload] pairs), certified only
    evidence: Tuple[Any, ...] = ()

    def body(self) -> Dict[str, Any]:
        return {
            "type": "shard",
            "index": self.index,
            "fixed_mask": self.fixed_mask,
            "solutions": list(self.solutions),
            "checked": self.checked,
            "evidence": list(self.evidence),
        }

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "ShardRecord":
        for key in ("index", "fixed_mask", "solutions", "checked"):
            if key not in body:
                raise JournalError(f"shard record missing {key!r}")
        return cls(
            index=body["index"],
            fixed_mask=body["fixed_mask"],
            solutions=tuple(body["solutions"]),
            checked=body["checked"],
            evidence=tuple(body.get("evidence", [])),
        )


def _chain_digest(previous: str, body: Dict[str, Any]) -> str:
    text = previous + canonical_dumps(body)
    return "sha256:" + hashlib.sha256(text.encode("ascii")).hexdigest()


def _parse_line(line: str) -> Tuple[Dict[str, Any], str]:
    """One journal line → (body without chain, recorded chain digest)."""
    record = json.loads(line)
    if not isinstance(record, dict) or "chain" not in record:
        raise ValueError("journal record has no chain digest")
    chain = record.pop("chain")
    return record, chain


class ShardJournal:
    """Appendable, resumable journal of one solve's shard completions.

    ``record_cls`` makes the journal reusable beyond solver shards (the
    soak harness journals its cells through the same chain format): any
    class with ``index``, ``body()`` and ``from_body()`` in
    :class:`ShardRecord`'s shape plugs in.
    """

    def __init__(self, path: Union[str, Path], record_cls: type = ShardRecord):
        self.path = Path(path)
        self.record_cls = record_cls
        self._chain = ""
        self._header: Optional[Dict[str, Any]] = None
        self._count = 0
        #: set by the fault plan to tear the next append mid-write
        self.tear_next = False

    # ------------------------------------------------------------------
    # open / resume
    # ------------------------------------------------------------------

    def open(self, header: Dict[str, Any]) -> Dict[int, Any]:
        """Start (or resume) a journal for the solve described by ``header``.

        Returns the already-completed shards, empty for a fresh journal.
        A journal written for any *different* solve — another program,
        init, shard layout, batch size, or certificate mode — raises
        :class:`JournalError` instead of silently mixing results.
        """
        header = {"format": JOURNAL_FORMAT, **header}
        if self.path.exists() and self.path.stat().st_size > 0:
            recorded, records = _load_records(self.path)
            if recorded != header:
                raise JournalError(
                    f"journal {self.path} was written for a different solve "
                    "(program, shard layout, or solver options differ); "
                    "refusing to resume from it"
                )
            self._header = recorded
            self._chain = _chain_digest("", recorded)
            completed: Dict[int, Any] = {}
            for body in records:
                record = self.record_cls.from_body(body)
                if record.index in completed:
                    raise JournalError(
                        f"journal records shard {record.index} twice"
                    )
                completed[record.index] = record
                self._chain = _chain_digest(self._chain, body)
                self._count += 1
            return completed
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._header = header
        self._chain = _chain_digest("", header)
        self._write_line(header, self._chain)
        # The header line is fsynced, but the *directory entry* for a fresh
        # journal file is not until its parent is — a crash right here could
        # otherwise lose the whole file while the solve believes it is
        # journaling.
        self._fsync_parent()
        return {}

    def _fsync_parent(self) -> None:
        try:
            fd = os.open(self.path.parent, os.O_RDONLY)
        except OSError:  # pragma: no cover - exotic filesystems
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # ------------------------------------------------------------------
    # append
    # ------------------------------------------------------------------

    def append(self, record: Any) -> int:
        """Journal one completed shard; returns the completion count.

        When the fault plan armed :attr:`tear_next`, only half the line is
        written (no newline) and :class:`SimulatedKill` is raised — the
        exact artifact a mid-write crash leaves on disk.
        """
        if self._header is None:
            raise JournalError("journal is not open")
        body = record.body()
        self._chain = _chain_digest(self._chain, body)
        if self.tear_next:
            from .faults import SimulatedKill

            line = self._encode_line(body, self._chain)
            with open(self.path, "a", encoding="ascii") as handle:
                handle.write(line[: max(1, len(line) // 2)])
                handle.flush()
                os.fsync(handle.fileno())
            raise SimulatedKill(
                f"fault plan tore the journal record for shard {record.index}"
            )
        self._write_line(body, self._chain)
        self._count += 1
        return self._count

    def _encode_line(self, body: Dict[str, Any], chain: str) -> str:
        return canonical_dumps({**body, "chain": chain}) + "\n"

    def _write_line(self, body: Dict[str, Any], chain: str) -> None:
        with open(self.path, "a", encoding="ascii") as handle:
            handle.write(self._encode_line(body, chain))
            handle.flush()
            os.fsync(handle.fileno())


def _load_records(
    path: Path,
) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Parse and chain-verify a journal; returns (header, shard bodies).

    The final line is allowed to be torn (unparsable or chain-broken) and
    is then discarded; any earlier damage raises :class:`JournalError`.
    """
    text = path.read_text(encoding="ascii", errors="replace")
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines:
        raise JournalError(f"journal {path} is empty")

    parsed: List[Tuple[Dict[str, Any], str]] = []
    for position, line in enumerate(lines):
        last = position == len(lines) - 1
        try:
            parsed.append(_parse_line(line))
        except ValueError as exc:
            if last:
                break  # torn tail: discard the partial record
            raise JournalError(
                f"journal {path} is corrupt at line {position + 1}: {exc}"
            ) from None
    if not parsed:
        raise JournalError(f"journal {path} has no intact header line")

    header, header_chain = parsed[0]
    if header.get("format") != JOURNAL_FORMAT:
        raise JournalError(
            f"journal {path} has format {header.get('format')!r}; "
            f"expected {JOURNAL_FORMAT!r}"
        )
    chain = _chain_digest("", header)
    if chain != header_chain:
        raise JournalError(f"journal {path}: header chain digest mismatch")

    bodies: List[Dict[str, Any]] = []
    for position, (body, recorded) in enumerate(parsed[1:], start=1):
        last = position == len(parsed) - 1
        chained = _chain_digest(chain, body)
        if chained != recorded:
            if last:
                break  # torn tail: valid JSON but written over a stale chain
            raise JournalError(
                f"journal {path}: chain digest broken at record {position} — "
                "a journaled shard was edited, reordered, or dropped"
            )
        chain = chained
        bodies.append(body)
    return header, bodies


def verify_journal(path: Union[str, Path]) -> Dict[str, Any]:
    """Independently verify a journal's chain; returns a summary dict.

    Used by ``python -m repro.certificates.replay --journal`` so that the
    evidence toolchain can vouch for resume artifacts, not just final
    certificates.  Raises :class:`JournalError` on any non-tail damage.
    """
    path = Path(path)
    if not path.is_file():
        raise JournalError(f"{path} is not a file")
    header, bodies = _load_records(path)
    records = [ShardRecord.from_body(b) for b in bodies]
    indices = [r.index for r in records]
    if len(set(indices)) != len(indices):
        raise JournalError(f"journal {path} records a shard twice")
    shard_count = header.get("shard_count")
    complete = (
        isinstance(shard_count, int) and len(records) == shard_count
    )
    return {
        "path": str(path),
        "program": header.get("program", {}).get("name"),
        "shards_journaled": len(records),
        "shard_count": shard_count,
        "complete": complete,
        "candidates_checked": sum(r.checked for r in records),
        "solutions": sorted(m for r in records for m in r.solutions),
        "emit_certificate": bool(header.get("emit_certificate")),
    }
