"""The shard lease manager: leases, deadlines, retries, fallback.

The PR-3 solver dispatched shards to a fork pool and called
``future.result()`` bare — one OOM-killed or wedged worker aborted the
whole solve and discarded every completed shard.  The supervisor wraps the
same pool with a lease discipline:

* every in-flight shard has an attempt count and (optionally) a deadline;
* a broken pool (worker crash, fork-context death) loses every in-flight
  lease at once: the pool is killed and re-spawned, the lost shards are
  re-dispatched with exponential backoff;
* a shard past its deadline wedges its pool slot (a hung worker cannot be
  preempted through the executor API), so deadline expiry is treated the
  same way — kill, re-spawn, re-dispatch;
* a shard that exhausts its retry budget degrades to the serial in-process
  sweep (guaranteed progress: the same code path ``workers=1`` runs), or
  raises :class:`SolverWorkerError` when the policy forbids fallback;
* every incident is appended to a structured :class:`FaultLog` that rides
  on the final ``SolveReport``.

The supervisor is deliberately generic: it knows nothing about Φ, shards
arrive as opaque ``(index, payload)`` leases and results as opaque tuples,
so :mod:`repro.core.parallel` can hand it closures without a circular
import.  Completed-shard results are merged in shard-index order, which —
together with the ``_merged_certificate`` re-sort — keeps reports and
certificate digests byte-identical to the unsupervised sweep no matter
which faults fired.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .checkpoint import ShardJournal, ShardRecord
from .faults import FaultPlan


class SolverWorkerError(RuntimeError):
    """A shard could not be completed within its retry budget.

    Names the shard's fixed-bit mask and the completed/pending shard
    counts, and points at the two escape hatches: the serial sweep and the
    supervisor's in-process fallback.
    """

    def __init__(
        self,
        shard_mask: int,
        attempts: int,
        completed: int,
        pending: int,
        cause: str,
    ):
        self.shard_mask = shard_mask
        self.attempts = attempts
        self.completed = completed
        self.pending = pending
        super().__init__(
            f"solver worker lost shard (fixed-bit mask {bin(shard_mask)}) "
            f"{attempts} time(s): {cause}; {completed} shard(s) completed, "
            f"{pending} pending — re-run with solve_si(parallel=\"never\") "
            "for the serial sweep, or FaultPolicy(serial_fallback=True) to "
            "let the supervisor finish lost shards in-process"
        )


@dataclass(frozen=True)
class FaultPolicy:
    """How the supervisor reacts to lost shards.

    ``max_retries`` counts *re-dispatches* per shard (0 = one attempt).
    ``shard_deadline`` is seconds per attempt; ``None`` disables deadlines
    (the fault-free wait loop then has zero polling overhead).  With
    ``supervised=False`` the solver runs the bare PR-3 wait loop, except
    that a broken pool raises :class:`SolverWorkerError` instead of a raw
    ``BrokenProcessPool`` traceback.
    """

    max_retries: int = 2
    shard_deadline: Optional[float] = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0
    serial_fallback: bool = True
    supervised: bool = True

    @classmethod
    def off(cls) -> "FaultPolicy":
        """The PR-3 behavior: no leases, no retries, no fallback."""
        return cls(max_retries=0, serial_fallback=False, supervised=False)

    def backoff(self, attempt: int) -> float:
        """Seconds to pause before re-dispatching attempt ``attempt``."""
        if attempt <= 1:
            return 0.0
        delay = self.backoff_base * self.backoff_factor ** (attempt - 2)
        return min(delay, self.backoff_cap)


@dataclass(frozen=True)
class SolveProgress:
    """One progress tick of a supervised sharded solve.

    Emitted through the supervisor's ``progress`` callback — once per
    journal-resumed batch (``kind="resume"``) and once per completed shard
    (``kind="shard-completed"``), in exactly the order shard completions
    reach the journal.  Counts are cumulative, so a consumer can render
    ``shards_completed/shards_total`` without any state of its own.
    """

    kind: str  # "resume" | "shard-completed"
    #: the shard that just completed; ``None`` for resume batches
    shard_index: Optional[int]
    shards_completed: int
    shards_total: int
    #: cumulative candidates examined (journal-resumed ones included)
    candidates_checked: int
    #: candidates loaded from a checkpoint journal instead of re-swept
    candidates_resumed: int


@dataclass(frozen=True)
class FaultIncident:
    """One supervised event: what happened, to which shard, which attempt."""

    kind: str  # worker-crash | shard-timeout | pool-respawn | retry |
    #            serial-fallback | duplicate-result | resume | worker-lost |
    #            worker-unreachable | degraded-to-local | link-retry
    shard_index: Optional[int]
    attempt: int
    detail: str


@dataclass
class FaultLog:
    """Structured incident history attached to ``SolveReport.fault_log``."""

    incidents: List[FaultIncident] = field(default_factory=list)
    #: shards loaded from a checkpoint journal instead of being re-swept
    shards_resumed: int = 0
    #: candidates those journaled shards had already checked
    candidates_resumed: int = 0

    def record(
        self,
        kind: str,
        shard_index: Optional[int] = None,
        attempt: int = 0,
        detail: str = "",
    ) -> None:
        self.incidents.append(
            FaultIncident(
                kind=kind, shard_index=shard_index, attempt=attempt, detail=detail
            )
        )

    def count(self, kind: str) -> int:
        return sum(1 for i in self.incidents if i.kind == kind)

    @property
    def clean(self) -> bool:
        """No incidents and nothing resumed — a fault-free fresh solve."""
        return not self.incidents and not self.shards_resumed


def _kill_pool(pool) -> None:
    """Tear a pool down hard: hung workers would pin their slots forever.

    Transports (:class:`repro.core.transport.ShardTransport`) expose this
    as ``terminate()``; bare executors are dismantled by hand.
    """
    terminate = getattr(pool, "terminate", None)
    if callable(terminate):
        terminate()
        return
    pool.shutdown(wait=False, cancel_futures=True)
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # racing a worker's own exit is fine
            pass


#: One shard's sweep outcome: (solution_masks, checked, evidence).
ShardResult = Tuple[List[int], int, List[Any]]


class ShardSupervisor:
    """Drives one sharded solve to completion through worker failures."""

    def __init__(
        self,
        *,
        pool_factory: Optional[Callable[[], Any]],
        task: Callable[..., ShardResult],
        shard_masks: Sequence[int],
        policy: FaultPolicy,
        any_solution: bool = False,
        journal: Optional[ShardJournal] = None,
        journal_header: Optional[Dict[str, Any]] = None,
        fault_plan: Optional[FaultPlan] = None,
        serial_runner: Optional[Callable[[int, int], ShardResult]] = None,
        encode_evidence: Callable[[List[Any]], List[Any]] = lambda e: [],
        decode_evidence: Callable[[Sequence[Any]], List[Any]] = lambda e: [],
        progress: Optional[Callable[[SolveProgress], None]] = None,
        drain_hook: Optional[Callable[[Any], None]] = None,
        log: Optional[FaultLog] = None,
    ):
        self.pool_factory = pool_factory
        self.task = task
        self.shard_masks = list(shard_masks)
        self.policy = policy
        self.any_solution = any_solution
        self.journal = journal
        self.journal_header = journal_header or {}
        self.fault_plan = fault_plan
        self.serial_runner = serial_runner
        self.encode_evidence = encode_evidence
        self.decode_evidence = decode_evidence
        self.progress = progress
        #: called with the live pool after a clean pool phase, before
        #: teardown — the solver's hook for worker RSS sampling; failures
        #: are swallowed (metrics must never fail a solve).
        self.drain_hook = drain_hook
        #: callers may pass a shared log so transport-level incidents (e.g.
        #: socket-to-local degradation inside the pool factory) land in the
        #: same history the report carries.
        self.log = log if log is not None else FaultLog()
        self._pool: Any = None

    # ------------------------------------------------------------------
    # the run loop
    # ------------------------------------------------------------------

    def run(self) -> Tuple[List[int], int, List[Any]]:
        """Sweep every shard; returns merged (solutions, checked, evidence)."""
        results: Dict[int, ShardResult] = self._resume()
        todo = [i for i in range(len(self.shard_masks)) if i not in results]
        attempts: Dict[int, int] = {i: 1 for i in todo}
        fallback: List[int] = []
        stopped = False  # any_solution early exit

        if todo and self.pool_factory is None:
            # In-process mode (workers=1): same lease bookkeeping — journal
            # appends, parent-side faults, early exit — without a pool.
            if self.serial_runner is None:
                raise ValueError("in-process supervision needs a serial_runner")
            for index in todo:
                result = self.serial_runner(index, self.shard_masks[index])
                self._complete(index, result, results)
                if self.any_solution and result[0]:
                    stopped = True
                    break
        elif todo:
            self._pool = self.pool_factory()
            try:
                stopped = self._pool_phase(todo, attempts, results, fallback)
                if not stopped and self.drain_hook is not None:
                    try:
                        self.drain_hook(self._pool)
                    except Exception:  # pragma: no cover - metrics only
                        pass
            finally:
                _kill_pool(self._pool)

        if fallback and not stopped:
            self._serial_phase(fallback, results)

        merged_solutions: List[int] = []
        checked = 0
        evidence: List[Any] = []
        for index in sorted(results):
            masks, shard_checked, shard_evidence = results[index]
            merged_solutions.extend(masks)
            checked += shard_checked
            evidence.extend(shard_evidence)
        return merged_solutions, checked, evidence

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------

    def _resume(self) -> Dict[int, ShardResult]:
        """Load journaled shard completions; open a fresh journal otherwise."""
        if self.journal is None:
            return {}
        completed = self.journal.open(self.journal_header)
        results: Dict[int, ShardResult] = {}
        for index, record in completed.items():
            if not 0 <= index < len(self.shard_masks) or (
                self.shard_masks[index] != record.fixed_mask
            ):
                from .checkpoint import JournalError

                raise JournalError(
                    f"journaled shard {index} does not match the solve's "
                    "shard layout"
                )
            results[index] = (
                list(record.solutions),
                record.checked,
                self.decode_evidence(record.evidence),
            )
        if results:
            self.log.shards_resumed = len(results)
            self.log.candidates_resumed = sum(
                r[1] for r in results.values()
            )
            self.log.record(
                "resume",
                detail=(
                    f"{len(results)} shard(s) / "
                    f"{self.log.candidates_resumed} candidates from "
                    f"{self.journal.path}"
                ),
            )
            self._emit_progress("resume", None, results)
        return results

    def _pool_phase(
        self,
        todo: List[int],
        attempts: Dict[int, int],
        results: Dict[int, ShardResult],
        fallback: List[int],
    ) -> bool:
        """Dispatch ``todo`` through the pool; returns True on early exit."""
        from ..core.transport import ShardLeaseRevoked

        policy = self.policy
        inflight: Dict[Any, Tuple[int, float]] = {}
        for index in todo:
            inflight[
                self._pool.submit(self.task, index, self.shard_masks[index])
            ] = (index, time.monotonic())

        while inflight:
            timeout = (
                None
                if policy.shard_deadline is None
                else max(policy.shard_deadline / 4.0, 0.01)
            )
            done, _ = wait(
                set(inflight), timeout=timeout, return_when=FIRST_COMPLETED
            )
            lost: List[int] = []
            broken = False
            for future in done:
                index, _started = inflight.pop(future)
                try:
                    result = future.result()
                except BrokenProcessPool:
                    broken = True
                    lost.append(index)
                    self.log.record(
                        "worker-crash",
                        shard_index=index,
                        attempt=attempts[index],
                        detail="process pool broke under this shard's lease",
                    )
                except ShardLeaseRevoked as exc:
                    # One socket worker vanished; the pool (and every other
                    # lease) is still healthy, so only this shard re-enters
                    # the retry machinery — no respawn.
                    lost.append(index)
                    self.log.record(
                        "worker-lost",
                        shard_index=index,
                        attempt=attempts[index],
                        detail=str(exc),
                    )
                else:
                    if index in results:
                        # A late duplicate from a pre-respawn lease.
                        self.log.record(
                            "duplicate-result",
                            shard_index=index,
                            detail="stale lease result ignored",
                        )
                        continue
                    self._complete(index, result, results)
                    if self.any_solution and result[0]:
                        return True
            if broken:
                # The pool is unusable: every still-inflight lease is lost.
                for future, (index, _started) in inflight.items():
                    lost.append(index)
                inflight.clear()
                self._respawn("pool broke")
            elif policy.shard_deadline is not None:
                now = time.monotonic()
                expired = [
                    (future, index)
                    for future, (index, started) in inflight.items()
                    if now - started > policy.shard_deadline
                ]
                if expired:
                    for _future, index in expired:
                        self.log.record(
                            "shard-timeout",
                            shard_index=index,
                            attempt=attempts[index],
                            detail=(
                                f"no result within {policy.shard_deadline}s"
                            ),
                        )
                    # Hung workers pin their pool slots; take no chances.
                    lost.extend(index for _f, index in expired)
                    survivors = [
                        index
                        for future, (index, _s) in inflight.items()
                        if all(future is not f for f, _i in expired)
                    ]
                    lost.extend(survivors)
                    inflight.clear()
                    self._respawn("shard deadline expired")

            if lost:
                retry = self._triage(lost, attempts, results, fallback)
                if retry:
                    pause = max(
                        policy.backoff(attempts[index]) for index in retry
                    )
                    if pause:
                        time.sleep(pause)
                    for index in retry:
                        self.log.record(
                            "retry",
                            shard_index=index,
                            attempt=attempts[index],
                            detail=f"re-dispatched after {pause:.3f}s backoff",
                        )
                        inflight[
                            self._pool.submit(
                                self.task, index, self.shard_masks[index]
                            )
                        ] = (index, time.monotonic())
        return False

    def _triage(
        self,
        lost: Sequence[int],
        attempts: Dict[int, int],
        results: Dict[int, ShardResult],
        fallback: List[int],
    ) -> List[int]:
        """Split lost shards into retries and budget-exhausted fallbacks."""
        retry: List[int] = []
        seen = set()
        for index in lost:
            if index in seen or index in results:
                continue
            seen.add(index)
            attempts[index] += 1
            if attempts[index] <= self.policy.max_retries + 1:
                retry.append(index)
                continue
            if not self.policy.serial_fallback:
                raise SolverWorkerError(
                    shard_mask=self.shard_masks[index],
                    attempts=attempts[index] - 1,
                    completed=len(results),
                    pending=len(self.shard_masks) - len(results),
                    cause="retry budget exhausted",
                )
            self.log.record(
                "serial-fallback",
                shard_index=index,
                attempt=attempts[index] - 1,
                detail="retry budget exhausted; shard queued for the "
                "in-process sweep",
            )
            fallback.append(index)
        return retry

    def _respawn(self, why: str) -> None:
        _kill_pool(self._pool)
        self.log.record("pool-respawn", detail=why)
        self._pool = self.pool_factory()

    def _serial_phase(
        self, fallback: List[int], results: Dict[int, ShardResult]
    ) -> None:
        """Graceful degradation: sweep abandoned shards in-process."""
        if self.serial_runner is None:
            raise SolverWorkerError(
                shard_mask=self.shard_masks[fallback[0]],
                attempts=self.policy.max_retries + 1,
                completed=len(results),
                pending=len(self.shard_masks) - len(results),
                cause="no serial runner available",
            )
        for index in sorted(fallback):
            if index in results:
                continue
            result = self.serial_runner(index, self.shard_masks[index])
            self._complete(index, result, results)

    # ------------------------------------------------------------------
    # completion bookkeeping
    # ------------------------------------------------------------------

    def _complete(
        self, index: int, result: ShardResult, results: Dict[int, ShardResult]
    ) -> None:
        results[index] = result
        if self.journal is not None:
            masks, checked, evidence = result
            if self.fault_plan is not None and self.fault_plan.tears_record(
                len([i for i in results]) - self.log.shards_resumed
            ):
                self.journal.tear_next = True
            count = self.journal.append(
                ShardRecord(
                    index=index,
                    fixed_mask=self.shard_masks[index],
                    solutions=tuple(masks),
                    checked=checked,
                    evidence=tuple(self.encode_evidence(evidence)),
                )
            )
            if self.fault_plan is not None:
                self.fault_plan.after_journal_append(count)
        self._emit_progress("shard-completed", index, results)

    def _emit_progress(
        self,
        kind: str,
        index: Optional[int],
        results: Dict[int, ShardResult],
    ) -> None:
        """Tick the progress callback with cumulative counts.

        For ``shard-completed`` this runs *after* the journal append, so a
        consumer that replays the journal sees the same completion order the
        callback reported (torn appends raise before reaching here).
        """
        if self.progress is None:
            return
        self.progress(
            SolveProgress(
                kind=kind,
                shard_index=index,
                shards_completed=len(results),
                shards_total=len(self.shard_masks),
                candidates_checked=sum(r[1] for r in results.values()),
                candidates_resumed=self.log.candidates_resumed,
            )
        )
