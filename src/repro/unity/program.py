"""UNITY programs: declarations, processes, init, and a statement set.

A program execution begins in a state satisfying ``init``, then repeatedly
executes statements chosen nondeterministically under the fairness
constraint that each statement is attempted infinitely often (paper
section 5).  There is no flow of control; all control information lives in
the guards.

A *process* carries no code of its own — following the paper's minimal
notion, a process is simply a named subset of the program variables (its
address space).  Processes are what knowledge is ascribed to.

For standard (knowledge-free) programs this module precomputes, per
statement, the total successor function as an index array, from which the
semantic ``sp``/``wp`` transformers and the program-level ``SP`` (eq. 26)
are one pass of integer arithmetic (see :mod:`repro.transformers`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..predicates import Predicate, limits
from ..predicates.backends import backend_for_size
from ..predicates.cache import TransformerCache
from ..statespace import State, StateSpace
from .expressions import EvalError, Expr, ExprLike, Knowledge, as_expr
from .statements import Statement


class GuardDomainError(EvalError):
    """A statement left the declared domain of some variable."""


@dataclass(frozen=True)
class Process:
    """A named set of variables accessible to one process."""

    name: str
    variables: FrozenSet[str]

    def __repr__(self) -> str:
        return f"Process({self.name}: {{{', '.join(sorted(self.variables))}}})"


class Program:
    """An (extended) UNITY program over a finite state space.

    Parameters
    ----------
    space:
        The finite state space of all declared variables.
    init:
        Predicate characterizing allowed initial states; an :class:`Expr`
        is accepted and converted.
    statements:
        The non-empty assign section.
    processes:
        Mapping from process name to the variables it can access.  Shared
        memory is expressed by listing a variable in several processes.
    properties:
        Assumed properties of the environment (a *mixed specification*,
        [San90]) — e.g. the channel liveness assumptions (St-1)–(St-4).
        Stored as opaque objects interpreted by :mod:`repro.proofs`.
    name:
        Optional program name for diagnostics.
    """

    def __init__(
        self,
        space: StateSpace,
        init: Any,
        statements: Sequence[Statement],
        processes: Optional[Mapping[str, Iterable[str]]] = None,
        properties: Sequence[Any] = (),
        name: str = "program",
    ):
        if not statements:
            raise ValueError("a UNITY program needs a non-empty assign section")
        names = [s.name for s in statements]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate statement names: {names}")
        self.space = space
        self.name = name
        self.statements: Tuple[Statement, ...] = tuple(statements)
        self.properties: Tuple[Any, ...] = tuple(properties)
        self.init: Predicate = self._to_predicate(init)
        self.processes: Dict[str, Process] = {}
        for pname, variables in (processes or {}).items():
            var_set = space.check_vars(variables)
            self.processes[pname] = Process(pname, var_set)
        self._validate_statement_vars()
        self._successors: Dict[str, List[int]] = {}
        self._successors_np: Dict[str, Any] = {}
        self._enabled: Dict[str, Predicate] = {}
        #: backend-specific successor tables, keyed by (backend name, stmt name)
        self._kernel_tables: Dict[Tuple[str, str], Any] = {}
        #: memoized sp/wp applications, keyed by predicate fingerprint
        self.transformer_cache = TransformerCache()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _to_predicate(self, value: Any) -> Predicate:
        if isinstance(value, Predicate):
            if value.space != self.space:
                raise ValueError("init predicate over a different state space")
            return value
        if isinstance(value, Expr):
            return self.expr_predicate(value)
        if callable(value):
            return Predicate.from_callable(self.space, value)
        raise TypeError(f"cannot interpret {value!r} as an initial condition")

    def _validate_statement_vars(self) -> None:
        declared = set(self.space.names)
        for stmt in self.statements:
            unknown = (stmt.read_vars() | stmt.written_vars()) - declared
            if unknown:
                raise ValueError(
                    f"statement {stmt.name!r} uses undeclared variables {sorted(unknown)}"
                )

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------

    def is_knowledge_based(self) -> bool:
        """Whether any statement contains a knowledge term (section 4)."""
        return any(s.is_knowledge_based() for s in self.statements)

    def knowledge_terms(self) -> FrozenSet[Knowledge]:
        """All knowledge terms occurring in the program."""
        out: FrozenSet[Knowledge] = frozenset()
        for s in self.statements:
            out |= s.knowledge_terms()
        return out

    def process(self, name: str) -> Process:
        """The process named ``name``."""
        try:
            return self.processes[name]
        except KeyError:
            raise KeyError(
                f"no process {name!r} in program {self.name!r} "
                f"(have {sorted(self.processes)})"
            ) from None

    def statement(self, name: str) -> Statement:
        """The statement named ``name``."""
        for s in self.statements:
            if s.name == name:
                return s
        raise KeyError(f"no statement {name!r} in program {self.name!r}")

    # ------------------------------------------------------------------
    # expression ↔ predicate bridge
    # ------------------------------------------------------------------

    def expr_predicate(self, expr: ExprLike) -> Predicate:
        """The predicate denoted by a (knowledge-free) Boolean expression.

        Explicit backends evaluate once per state; past the explicit-state
        limit the expression is compiled symbolically by the ROBDD backend
        (support enumeration only, never a state sweep).
        """
        e = as_expr(expr)
        if e.knowledge_terms():
            raise EvalError(
                f"{e!r} contains knowledge terms; resolve them first "
                "(repro.core.kbp) or use KnowledgeOperator"
            )
        space = self.space
        if space.size > limits.get_limit("explicit"):
            backend = backend_for_size(space.size)
            if getattr(backend, "symbolic", False):
                return backend.wrap(space, backend.expr_handle(space, e))
            limits.check_explicit_size(space.size, f"evaluating {e!r} per state")
        mask = 0
        for i in range(space.size):
            if e.eval(State(space, i)):
                mask |= 1 << i
        return Predicate(space, mask)

    # ------------------------------------------------------------------
    # operational semantics
    # ------------------------------------------------------------------

    def successor_array(self, stmt: Statement) -> List[int]:
        """Total successor function of ``stmt`` as an array over state indices.

        ``array[i]`` is the index of the state reached by executing ``stmt``
        in state ``i`` (skip when the guard is false).  Cached per statement
        name.  Raises :class:`GuardDomainError` if an assignment leaves a
        variable's declared domain — bounded models must guard against that
        explicitly, mirroring the care the paper takes with ``nat`` bounds.
        """
        if stmt.is_knowledge_based():
            raise EvalError(
                f"statement {stmt.name!r} is knowledge-based; resolve it first"
            )
        cached = self._successors.get(stmt.name)
        if cached is not None:
            return cached
        space = self.space
        limits.check_explicit_size(
            space.size,
            f"building the successor array of statement {stmt.name!r} "
            "(the symbolic backend compiles statements to relations instead)",
        )
        array: List[int] = [0] * space.size
        for i in range(space.size):
            state = State(space, i)
            if not stmt.guard.eval(state):
                array[i] = i
                continue
            changes = {}
            for target, expr in zip(stmt.targets, stmt.exprs):
                value = expr.eval(state)
                domain = space.var(target).domain
                if value not in domain:
                    raise GuardDomainError(
                        f"statement {stmt.name!r} assigns {target} := {value!r} "
                        f"outside domain {domain.name} in state {state.as_dict()!r}"
                    )
                changes[target] = value
            array[i] = space.reindex(i, changes)
        self._successors[stmt.name] = array
        return array

    def successor_np(self, stmt: Statement):
        """The successor array as a numpy int64 array (cached).

        Used by the vectorized fast paths in :mod:`repro.proofs` and
        :mod:`repro.transformers`.
        """
        cached = self._successors_np.get(stmt.name)
        if cached is None:
            import numpy as np

            cached = np.asarray(self.successor_array(stmt), dtype=np.int64)
            self._successors_np[stmt.name] = cached
        return cached

    def kernel_table(self, backend, stmt: Statement) -> Any:
        """``stmt``'s successor map in ``backend``'s preferred form (cached).

        Each predicate backend asks for a different representation (int
        predecessor tables, numpy index arrays, …); caching per (backend,
        statement) keeps kernel calls free of per-invocation conversion.
        """
        key = (backend.name, stmt.name)
        cached = self._kernel_tables.get(key)
        if cached is None:
            cached = backend.build_table(self, stmt)
            self._kernel_tables[key] = cached
        return cached

    def adopt_operational_caches(self, donor: "Program", stmt: Statement) -> None:
        """Share ``donor``'s cached semantics for a statement both programs contain.

        Sound only when the statement means the same thing in both — the
        KBP solver uses this to avoid recomputing successor arrays of
        knowledge-*free* statements for every candidate-SI resolution.
        """
        name = stmt.name
        cached = donor._successors.get(name)
        if cached is not None:
            self._successors.setdefault(name, cached)
        cached_np = donor._successors_np.get(name)
        if cached_np is not None:
            self._successors_np.setdefault(name, cached_np)
        enabled = donor._enabled.get(name)
        if enabled is not None:
            self._enabled.setdefault(name, enabled)
        for key, table in donor._kernel_tables.items():
            if key[1] == name:
                self._kernel_tables.setdefault(key, table)

    def step(self, state: State, stmt: Statement) -> State:
        """Execute one statement atomically from ``state``."""
        return State(self.space, self.successor_array(stmt)[state.index])

    def enabled(self, stmt: Statement) -> Predicate:
        """The predicate where ``stmt``'s guard holds (cached per statement)."""
        cached = self._enabled.get(stmt.name)
        if cached is None:
            cached = self.expr_predicate(stmt.guard)
            self._enabled[stmt.name] = cached
        return cached

    def fixed_point(self) -> Predicate:
        """``FP`` — states where no statement changes the state.

        UNITY's analogue of termination: the program has reached a fixed
        point when every statement is a skip.
        """
        space = self.space
        limits.check_explicit_size(space.size, "computing the FP predicate")
        mask = space.full_mask
        for stmt in self.statements:
            array = self.successor_array(stmt)
            stmt_mask = 0
            for i in range(space.size):
                if array[i] == i:
                    stmt_mask |= 1 << i
            mask &= stmt_mask
        return Predicate(space, mask)

    # ------------------------------------------------------------------
    # derived programs
    # ------------------------------------------------------------------

    def resolve(self, resolution: Mapping[Knowledge, Predicate]) -> "Program":
        """The standard program with every knowledge term replaced.

        This is the paper's conversion of a knowledge-based protocol to a
        standard protocol "by replacing all the knowledge predicates with
        the corresponding standard predicate" (section 4) — validity of the
        resolution is checked separately by :mod:`repro.core.kbp`.
        """
        missing = self.knowledge_terms() - set(resolution)
        if missing:
            raise KeyError(f"resolution missing knowledge terms: {sorted(map(repr, missing))}")
        return Program(
            space=self.space,
            init=self.init,
            statements=[s.resolve(resolution) for s in self.statements],
            processes={p.name: p.variables for p in self.processes.values()},
            properties=self.properties,
            name=f"{self.name}@resolved",
        )

    def with_init(self, init: Any) -> "Program":
        """The same program with a different initial condition.

        Central to reproducing Figure 2: strengthening ``init`` can change
        the strongest invariant of a knowledge-based protocol
        non-monotonically.
        """
        return Program(
            space=self.space,
            init=init,
            statements=self.statements,
            processes={p.name: p.variables for p in self.processes.values()},
            properties=self.properties,
            name=self.name,
        )

    def with_statements(
        self, statements: Sequence[Statement], name_suffix: str = "@extended"
    ) -> "Program":
        """The same declarations with a different assign section."""
        return Program(
            space=self.space,
            init=self.init,
            statements=statements,
            processes={p.name: p.variables for p in self.processes.values()},
            properties=self.properties,
            name=self.name + name_suffix,
        )

    def __repr__(self) -> str:
        kind = "knowledge-based" if self.is_knowledge_based() else "standard"
        return (
            f"Program({self.name!r}: {kind}, {len(self.statements)} statements, "
            f"{self.space.size} states, {len(self.processes)} processes)"
        )


def union_programs(left: Program, right: Program, name: Optional[str] = None) -> Program:
    """UNITY program union ``F ▯ G``: the statements of both, run together.

    Both programs must share the state space; the union's initial condition
    is the conjunction of the components'.  Statement names must be
    disjoint (rename before composing if they clash).  Processes are merged
    by name (shared names must agree on their variable sets).

    The union theorems of UNITY — e.g. ``p unless q`` holds in ``F ▯ G``
    iff it holds in both components (w.r.t. a common invariant baseline) —
    are exercised in the test suite.
    """
    if left.space != right.space:
        raise ValueError("program union needs a common state space")
    clash = {s.name for s in left.statements} & {s.name for s in right.statements}
    if clash:
        raise ValueError(f"statement names clash in union: {sorted(clash)}")
    processes: Dict[str, FrozenSet[str]] = {
        p.name: p.variables for p in left.processes.values()
    }
    for process in right.processes.values():
        existing = processes.get(process.name)
        if existing is not None and existing != process.variables:
            raise ValueError(
                f"process {process.name!r} has different views in the components"
            )
        processes[process.name] = process.variables
    return Program(
        space=left.space,
        init=left.init & right.init,
        statements=list(left.statements) + list(right.statements),
        processes=processes,
        properties=left.properties + right.properties,
        name=name or f"({left.name} ▯ {right.name})",
    )
