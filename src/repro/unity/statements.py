"""Guarded, multiple, deterministic, terminating assignment statements.

A UNITY statement has the shape (paper section 5)::

    x, y := f(x, y), g(x, y, z)   if b

Executed atomically: first ``b`` and every right-hand side are evaluated in
the current state, then — if ``b`` holds — the computed results are assigned
simultaneously.  If the guard does not hold, execution has **no effect** (a
skip), so every statement denotes a *total deterministic* function on states.

Guards may contain :class:`~repro.unity.expressions.Knowledge` terms, making
the statement knowledge-based; such statements cannot be executed until the
knowledge terms are resolved against a strongest-invariant candidate
(:mod:`repro.core.kbp`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from .expressions import (
    Const,
    Expr,
    ExprLike,
    Ite,
    Knowledge,
    as_expr,
)


@dataclass(frozen=True)
class Statement:
    """A guarded multiple assignment ``targets := exprs if guard``."""

    name: str
    targets: Tuple[str, ...]
    exprs: Tuple[Expr, ...]
    guard: Expr = field(default_factory=lambda: Const(True))

    def __post_init__(self):
        if len(self.targets) != len(self.exprs):
            raise ValueError(
                f"statement {self.name!r}: {len(self.targets)} targets "
                f"but {len(self.exprs)} expressions"
            )
        if len(set(self.targets)) != len(self.targets):
            raise ValueError(
                f"statement {self.name!r}: duplicate assignment targets {self.targets}"
            )

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------

    def knowledge_terms(self) -> FrozenSet[Knowledge]:
        """Knowledge terms in the guard and right-hand sides."""
        out = self.guard.knowledge_terms()
        for e in self.exprs:
            out |= e.knowledge_terms()
        return out

    def is_knowledge_based(self) -> bool:
        """Whether any knowledge term occurs in this statement."""
        return bool(self.knowledge_terms())

    def read_vars(self) -> FrozenSet[str]:
        """Variables the statement reads (guard + right-hand sides)."""
        out = self.guard.free_vars()
        for e in self.exprs:
            out |= e.free_vars()
        return out

    def written_vars(self) -> FrozenSet[str]:
        """Variables the statement may write."""
        return frozenset(self.targets)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def apply(
        self,
        state: Mapping[str, Any],
        resolution: Optional[Mapping[Knowledge, Any]] = None,
    ) -> Dict[str, Any]:
        """Execute the statement once, returning the successor assignment.

        Evaluates the guard and all right-hand sides *before* assigning
        (simultaneous assignment).  Guard false ⇒ identical copy.
        """
        out = dict(state)
        if not self.guard.eval(state, resolution):
            return out
        values = [e.eval(state, resolution) for e in self.exprs]
        for target, value in zip(self.targets, values):
            out[target] = value
        return out

    def resolve(self, resolution: Mapping[Knowledge, "object"]) -> "Statement":
        """Replace knowledge terms with concrete predicate tests.

        Produces a *standard* statement whose guard is a
        :class:`ResolvedKnowledge` wrapper — still an :class:`Expr`, but one
        that evaluates by predicate lookup instead of raising.
        """
        return Statement(
            name=self.name,
            targets=self.targets,
            exprs=tuple(_resolve_expr(e, resolution) for e in self.exprs),
            guard=_resolve_expr(self.guard, resolution),
        )

    # ------------------------------------------------------------------
    # symbolic weakest precondition
    # ------------------------------------------------------------------

    def wp_expr(self, post: ExprLike) -> Expr:
        """Textbook symbolic ``wp``: ``(b ∧ q[E/x]) ∨ (¬b ∧ q)``.

        Since UNITY statements always terminate, ``wp = wlp`` here.  Only
        valid for standard statements (knowledge terms block substitution).
        """
        post_expr = as_expr(post)
        substituted = post_expr.subst(dict(zip(self.targets, self.exprs)))
        return Ite(self.guard, substituted, post_expr)

    def __repr__(self) -> str:
        lhs = ", ".join(self.targets)
        rhs = ", ".join(map(repr, self.exprs))
        if isinstance(self.guard, Const) and self.guard.value is True:
            return f"<{self.name}: {lhs} := {rhs}>"
        return f"<{self.name}: {lhs} := {rhs} if {self.guard!r}>"


@dataclass(frozen=True)
class ResolvedKnowledge(Expr):
    """A knowledge term bound to a concrete predicate.

    Created by :meth:`Statement.resolve`; evaluates by bitmask lookup on the
    state index.  Keeps a reference to the original term for provenance.
    """

    term: Knowledge
    predicate: Any  # repro.predicates.Predicate; Any avoids a layering cycle

    def eval(self, state, resolution=None):
        index = getattr(state, "index", None)
        if index is None:
            raise ValueError(
                f"resolved knowledge {self.term!r} needs an indexed State"
            )
        return self.predicate.holds_at(index)

    def subst(self, bindings):
        touched = bindings.keys() & self.term.free_vars()
        if touched:
            raise ValueError(
                f"cannot substitute {sorted(touched)} under resolved knowledge {self.term!r}"
            )
        return self

    def free_vars(self):
        return self.term.free_vars()

    def knowledge_terms(self):
        return frozenset()

    def __repr__(self):
        return f"⟦{self.term!r}⟧"

    def __hash__(self):
        return hash((self.term, self.predicate.mask))

    def __eq__(self, other):
        return (
            isinstance(other, ResolvedKnowledge)
            and self.term == other.term
            and self.predicate == other.predicate
        )


def _resolve_expr(expr: Expr, resolution: Mapping[Knowledge, Any]) -> Expr:
    """Structurally replace each knowledge term with its resolved wrapper."""
    if isinstance(expr, Knowledge):
        if expr not in resolution:
            raise KeyError(f"no resolution for knowledge term {expr!r}")
        return ResolvedKnowledge(expr, resolution[expr])
    if not expr.knowledge_terms():
        return expr
    # Recurse through composite nodes generically via their dataclass fields.
    import dataclasses

    replacements = {}
    for f in dataclasses.fields(expr):
        value = getattr(expr, f.name)
        if isinstance(value, Expr):
            replacements[f.name] = _resolve_expr(value, resolution)
        elif isinstance(value, tuple) and value and isinstance(value[0], Expr):
            replacements[f.name] = tuple(_resolve_expr(v, resolution) for v in value)
    return dataclasses.replace(expr, **replacements)


def assign(
    name: str,
    updates: Mapping[str, ExprLike],
    guard: ExprLike = True,
) -> Statement:
    """Build a statement from a dict of ``target: expression`` updates."""
    targets = tuple(updates.keys())
    exprs = tuple(as_expr(e) for e in updates.values())
    return Statement(name=name, targets=targets, exprs=exprs, guard=as_expr(guard))


def quantified(
    name_format: str,
    values: Iterable[Any],
    maker: Callable[[Any], Statement],
) -> List[Statement]:
    """Generate a family of statements ``⟨ ▯ v : v ∈ values : stmt(v) ⟩``.

    Mirrors UNITY's quantified statement notation; ``name_format`` is
    applied to each value to produce unique statement names.
    """
    out: List[Statement] = []
    for value in values:
        stmt = maker(value)
        out.append(
            Statement(
                name=name_format.format(value),
                targets=stmt.targets,
                exprs=stmt.exprs,
                guard=stmt.guard,
            )
        )
    names = [s.name for s in out]
    if len(set(names)) != len(names):
        raise ValueError(f"quantified statement names collide: {names}")
    return out
