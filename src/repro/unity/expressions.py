"""Expression AST for UNITY programs.

Expressions appear in guards and on the right-hand side of assignments.
They evaluate against a state (any mapping from variable name to value) and
support simultaneous substitution, which gives the textbook *symbolic*
weakest precondition ``wp.(x := E if b).q = (b ∧ q[E/x]) ∨ (¬b ∧ q)`` —
cross-checked in the test suite against the semantic ``wp`` computed from
successor arrays.

The :class:`Knowledge` node makes the AST expressive enough for
*knowledge-based protocols* (paper section 4): ``K[i](p)`` in a guard.  A
knowledge term has no standalone value — it denotes a predicate that depends
on the program's strongest invariant — so evaluating one requires a
*resolution* (a mapping from each knowledge term to a concrete
:class:`~repro.predicates.Predicate`), supplied by the machinery in
:mod:`repro.core.kbp`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Mapping, Optional, Tuple

__all__ = [
    "Expr",
    "Const",
    "Var",
    "Unary",
    "Binary",
    "Ite",
    "TupleExpr",
    "Proj",
    "Index",
    "Length",
    "Append",
    "IsPrefix",
    "Contains",
    "Knowledge",
    "EvalError",
    "UnresolvedKnowledgeError",
    "tup",
    "var",
    "const",
    "land",
    "lor",
    "lnot",
    "implies",
    "iff",
    "ite",
    "knows",
]


class EvalError(Exception):
    """An expression could not be evaluated in the given state."""


class UnresolvedKnowledgeError(EvalError):
    """A knowledge term was evaluated without a resolution for it.

    Knowledge terms denote predicates defined in terms of the strongest
    invariant (paper eq. 13); they only acquire a value once a candidate SI
    has been fixed and the term resolved (paper eq. 25).
    """


Resolution = Mapping["Knowledge", Any]  # Knowledge -> Predicate


class Expr:
    """Base class for expression nodes.  Nodes are immutable and hashable."""

    __slots__ = ()

    def eval(self, state: Mapping[str, Any], resolution: Optional[Resolution] = None) -> Any:
        """Value of the expression in ``state``.

        ``resolution`` maps :class:`Knowledge` subterms to concrete
        predicates; it is required iff the expression contains any.
        """
        raise NotImplementedError

    def subst(self, bindings: Mapping[str, "Expr"]) -> "Expr":
        """Simultaneous substitution of expressions for variables."""
        raise NotImplementedError

    def free_vars(self) -> FrozenSet[str]:
        """Variables occurring in the expression (including under ``K``)."""
        raise NotImplementedError

    def knowledge_terms(self) -> FrozenSet["Knowledge"]:
        """All :class:`Knowledge` subterms (deduplicated structurally)."""
        raise NotImplementedError

    # -- operator sugar -------------------------------------------------

    def __add__(self, other: "ExprLike") -> "Expr":
        return Binary("+", self, as_expr(other))

    def __radd__(self, other: "ExprLike") -> "Expr":
        return Binary("+", as_expr(other), self)

    def __sub__(self, other: "ExprLike") -> "Expr":
        return Binary("-", self, as_expr(other))

    def __rsub__(self, other: "ExprLike") -> "Expr":
        return Binary("-", as_expr(other), self)

    def __mul__(self, other: "ExprLike") -> "Expr":
        return Binary("*", self, as_expr(other))

    def __rmul__(self, other: "ExprLike") -> "Expr":
        return Binary("*", as_expr(other), self)

    def __mod__(self, other: "ExprLike") -> "Expr":
        return Binary("%", self, as_expr(other))

    def eq(self, other: "ExprLike") -> "Expr":
        return Binary("==", self, as_expr(other))

    def ne(self, other: "ExprLike") -> "Expr":
        return Binary("!=", self, as_expr(other))

    def __lt__(self, other: "ExprLike") -> "Expr":
        return Binary("<", self, as_expr(other))

    def __le__(self, other: "ExprLike") -> "Expr":
        return Binary("<=", self, as_expr(other))

    def __gt__(self, other: "ExprLike") -> "Expr":
        return Binary(">", self, as_expr(other))

    def __ge__(self, other: "ExprLike") -> "Expr":
        return Binary(">=", self, as_expr(other))

    def __and__(self, other: "ExprLike") -> "Expr":
        return Binary("and", self, as_expr(other))

    def __or__(self, other: "ExprLike") -> "Expr":
        return Binary("or", self, as_expr(other))

    def __invert__(self) -> "Expr":
        return Unary("not", self)

    def __getitem__(self, key: "ExprLike") -> "Expr":
        return Index(self, as_expr(key))


ExprLike = Any  # Expr | constant value


def as_expr(value: ExprLike) -> Expr:
    """Coerce a Python constant to :class:`Const`; pass expressions through."""
    if isinstance(value, Expr):
        return value
    return Const(value)


@dataclass(frozen=True)
class Const(Expr):
    """A literal value."""

    value: Any

    def eval(self, state, resolution=None):
        return self.value

    def subst(self, bindings):
        return self

    def free_vars(self):
        return frozenset()

    def knowledge_terms(self):
        return frozenset()

    def __repr__(self):
        return repr(self.value)


@dataclass(frozen=True)
class Var(Expr):
    """A variable reference."""

    name: str

    def eval(self, state, resolution=None):
        try:
            return state[self.name]
        except KeyError:
            raise EvalError(f"variable {self.name!r} not in state") from None

    def subst(self, bindings):
        return bindings.get(self.name, self)

    def free_vars(self):
        return frozenset((self.name,))

    def knowledge_terms(self):
        return frozenset()

    def __repr__(self):
        return self.name


_UNARY_FNS: Dict[str, Callable[[Any], Any]] = {
    "not": lambda v: not v,
    "-": lambda v: -v,
}

_BINARY_FNS: Dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "//": lambda a, b: a // b,
    "%": lambda a, b: a % b,
    "min": min,
    "max": max,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "and": lambda a, b: bool(a) and bool(b),
    "or": lambda a, b: bool(a) or bool(b),
    "=>": lambda a, b: (not a) or bool(b),
    "<=>": lambda a, b: bool(a) == bool(b),
}


@dataclass(frozen=True)
class Unary(Expr):
    """Unary operator application: ``not`` or arithmetic negation."""

    op: str
    operand: Expr

    def __post_init__(self):
        if self.op not in _UNARY_FNS:
            raise ValueError(f"unknown unary operator {self.op!r}")

    def eval(self, state, resolution=None):
        return _UNARY_FNS[self.op](self.operand.eval(state, resolution))

    def subst(self, bindings):
        return Unary(self.op, self.operand.subst(bindings))

    def free_vars(self):
        return self.operand.free_vars()

    def knowledge_terms(self):
        return self.operand.knowledge_terms()

    def __repr__(self):
        if self.op == "not":
            return f"¬({self.operand!r})"
        return f"{self.op}({self.operand!r})"


@dataclass(frozen=True)
class Binary(Expr):
    """Binary operator application (arithmetic, comparison, Boolean)."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in _BINARY_FNS:
            raise ValueError(f"unknown binary operator {self.op!r}")

    def eval(self, state, resolution=None):
        fn = _BINARY_FNS[self.op]
        # Short-circuit the Boolean connectives so guards like
        # ``j < n and x[j] == a`` stay total on bounded domains.
        if self.op == "and":
            return bool(self.left.eval(state, resolution)) and bool(
                self.right.eval(state, resolution)
            )
        if self.op == "or":
            return bool(self.left.eval(state, resolution)) or bool(
                self.right.eval(state, resolution)
            )
        if self.op == "=>":
            return (not self.left.eval(state, resolution)) or bool(
                self.right.eval(state, resolution)
            )
        try:
            return fn(self.left.eval(state, resolution), self.right.eval(state, resolution))
        except TypeError as exc:
            raise EvalError(f"cannot evaluate {self!r}: {exc}") from None

    def subst(self, bindings):
        return Binary(self.op, self.left.subst(bindings), self.right.subst(bindings))

    def free_vars(self):
        return self.left.free_vars() | self.right.free_vars()

    def knowledge_terms(self):
        return self.left.knowledge_terms() | self.right.knowledge_terms()

    def __repr__(self):
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class Ite(Expr):
    """Conditional expression ``if cond then a else b``."""

    cond: Expr
    then: Expr
    orelse: Expr

    def eval(self, state, resolution=None):
        if self.cond.eval(state, resolution):
            return self.then.eval(state, resolution)
        return self.orelse.eval(state, resolution)

    def subst(self, bindings):
        return Ite(
            self.cond.subst(bindings),
            self.then.subst(bindings),
            self.orelse.subst(bindings),
        )

    def free_vars(self):
        return self.cond.free_vars() | self.then.free_vars() | self.orelse.free_vars()

    def knowledge_terms(self):
        return (
            self.cond.knowledge_terms()
            | self.then.knowledge_terms()
            | self.orelse.knowledge_terms()
        )

    def __repr__(self):
        return f"(if {self.cond!r} then {self.then!r} else {self.orelse!r})"


@dataclass(frozen=True)
class TupleExpr(Expr):
    """Tuple construction, e.g. the message ``(i, y)`` of Figure 3.

    Construct via :func:`tup` for automatic constant coercion.
    """

    items: Tuple[Expr, ...]

    def eval(self, state, resolution=None):
        return tuple(e.eval(state, resolution) for e in self.items)

    def subst(self, bindings):
        return TupleExpr(tuple(e.subst(bindings) for e in self.items))

    def free_vars(self):
        out: FrozenSet[str] = frozenset()
        for e in self.items:
            out |= e.free_vars()
        return out

    def knowledge_terms(self):
        out: FrozenSet[Knowledge] = frozenset()
        for e in self.items:
            out |= e.knowledge_terms()
        return out

    def __repr__(self):
        return "(" + ", ".join(map(repr, self.items)) + ")"


@dataclass(frozen=True)
class Proj(Expr):
    """Tuple projection ``proj_k`` (0-based), e.g. ``proj_1(z')`` in [HZar]."""

    operand: Expr
    k: int

    def eval(self, state, resolution=None):
        value = self.operand.eval(state, resolution)
        try:
            return value[self.k]
        except (TypeError, IndexError):
            raise EvalError(f"cannot project component {self.k} of {value!r}") from None

    def subst(self, bindings):
        return Proj(self.operand.subst(bindings), self.k)

    def free_vars(self):
        return self.operand.free_vars()

    def knowledge_terms(self):
        return self.operand.knowledge_terms()

    def __repr__(self):
        return f"{self.operand!r}.{self.k}"


@dataclass(frozen=True)
class Index(Expr):
    """Sequence indexing ``seq[k]`` (0-based, as the paper's ``x_k``)."""

    seq: Expr
    at: Expr

    def eval(self, state, resolution=None):
        sequence = self.seq.eval(state, resolution)
        k = self.at.eval(state, resolution)
        try:
            if k < 0 or k >= len(sequence):
                raise EvalError(f"index {k} out of range for {sequence!r}")
            return sequence[k]
        except TypeError:
            raise EvalError(f"cannot index {sequence!r} with {k!r}") from None

    def subst(self, bindings):
        return Index(self.seq.subst(bindings), self.at.subst(bindings))

    def free_vars(self):
        return self.seq.free_vars() | self.at.free_vars()

    def knowledge_terms(self):
        return self.seq.knowledge_terms() | self.at.knowledge_terms()

    def __repr__(self):
        return f"{self.seq!r}[{self.at!r}]"


@dataclass(frozen=True)
class Length(Expr):
    """Sequence length ``|seq|``."""

    seq: Expr

    def eval(self, state, resolution=None):
        value = self.seq.eval(state, resolution)
        try:
            return len(value)
        except TypeError:
            raise EvalError(f"cannot take length of {value!r}") from None

    def subst(self, bindings):
        return Length(self.seq.subst(bindings))

    def free_vars(self):
        return self.seq.free_vars()

    def knowledge_terms(self):
        return self.seq.knowledge_terms()

    def __repr__(self):
        return f"|{self.seq!r}|"


@dataclass(frozen=True)
class Append(Expr):
    """Sequence append ``seq ; elem`` (the paper writes ``w := w; α``)."""

    seq: Expr
    elem: Expr

    def eval(self, state, resolution=None):
        sequence = self.seq.eval(state, resolution)
        element = self.elem.eval(state, resolution)
        if not isinstance(sequence, tuple):
            raise EvalError(f"append target {sequence!r} is not a sequence")
        return sequence + (element,)

    def subst(self, bindings):
        return Append(self.seq.subst(bindings), self.elem.subst(bindings))

    def free_vars(self):
        return self.seq.free_vars() | self.elem.free_vars()

    def knowledge_terms(self):
        return self.seq.knowledge_terms() | self.elem.knowledge_terms()

    def __repr__(self):
        return f"({self.seq!r} ; {self.elem!r})"


@dataclass(frozen=True)
class IsPrefix(Expr):
    """The prefix relation ``left ⊑ right`` on sequences (paper eq. 34)."""

    left: Expr
    right: Expr

    def eval(self, state, resolution=None):
        a = self.left.eval(state, resolution)
        b = self.right.eval(state, resolution)
        if not isinstance(a, tuple) or not isinstance(b, tuple):
            raise EvalError(f"⊑ needs two sequences, got {a!r} and {b!r}")
        return len(a) <= len(b) and b[: len(a)] == a

    def subst(self, bindings):
        return IsPrefix(self.left.subst(bindings), self.right.subst(bindings))

    def free_vars(self):
        return self.left.free_vars() | self.right.free_vars()

    def knowledge_terms(self):
        return self.left.knowledge_terms() | self.right.knowledge_terms()

    def __repr__(self):
        return f"({self.left!r} ⊑ {self.right!r})"


@dataclass(frozen=True)
class Contains(Expr):
    """Membership ``elem ∈ seq`` (used by the channel history invariants St-1/St-2)."""

    elem: Expr
    seq: Expr

    def eval(self, state, resolution=None):
        element = self.elem.eval(state, resolution)
        sequence = self.seq.eval(state, resolution)
        try:
            return element in sequence
        except TypeError:
            raise EvalError(f"cannot test membership in {sequence!r}") from None

    def subst(self, bindings):
        return Contains(self.elem.subst(bindings), self.seq.subst(bindings))

    def free_vars(self):
        return self.elem.free_vars() | self.seq.free_vars()

    def knowledge_terms(self):
        return self.elem.knowledge_terms() | self.seq.knowledge_terms()

    def __repr__(self):
        return f"({self.elem!r} ∈ {self.seq!r})"


@dataclass(frozen=True)
class Knowledge(Expr):
    """A knowledge term ``K[process](formula)`` appearing in a guard.

    Semantically this is the predicate transformer of paper eq. (13) applied
    to the (pure) ``formula``; it cannot be evaluated pointwise without a
    resolution because it depends on the strongest invariant of the whole
    program.  Nested knowledge (``K_S K_R p``) is expressed by nesting.

    Evaluation protocol: the state must be an indexable
    :class:`~repro.statespace.State` and ``resolution`` must map this term
    (by structural equality) to a concrete predicate.
    """

    process: str
    formula: Expr

    def __post_init__(self):
        if self.formula.knowledge_terms():
            # Nested knowledge is fine; nothing to validate beyond structure.
            pass

    def eval(self, state, resolution=None):
        if resolution is None or self not in resolution:
            raise UnresolvedKnowledgeError(
                f"knowledge term {self!r} evaluated without a resolution; "
                "solve the protocol's SI equation first (repro.core.kbp)"
            )
        predicate = resolution[self]
        index = getattr(state, "index", None)
        if index is None:
            raise EvalError(
                f"knowledge term {self!r} needs an indexed State, got {type(state).__name__}"
            )
        return predicate.holds_at(index)

    def subst(self, bindings):
        touched = bindings.keys() & self.formula.free_vars()
        if touched:
            raise EvalError(
                f"cannot substitute {sorted(touched)} under the knowledge operator "
                f"{self!r}: K is not syntactic; resolve the term first"
            )
        return self

    def free_vars(self):
        return self.formula.free_vars()

    def knowledge_terms(self):
        return frozenset((self,)) | self.formula.knowledge_terms()

    def __repr__(self):
        return f"K[{self.process}]({self.formula!r})"


# ----------------------------------------------------------------------
# builder helpers
# ----------------------------------------------------------------------


def var(name: str) -> Var:
    """Shorthand for :class:`Var`."""
    return Var(name)


def const(value: Any) -> Const:
    """Shorthand for :class:`Const`."""
    return Const(value)


def land(*terms: ExprLike) -> Expr:
    """N-ary conjunction (empty conjunction is ``true``)."""
    exprs = [as_expr(t) for t in terms]
    if not exprs:
        return Const(True)
    out = exprs[0]
    for e in exprs[1:]:
        out = Binary("and", out, e)
    return out


def lor(*terms: ExprLike) -> Expr:
    """N-ary disjunction (empty disjunction is ``false``)."""
    exprs = [as_expr(t) for t in terms]
    if not exprs:
        return Const(False)
    out = exprs[0]
    for e in exprs[1:]:
        out = Binary("or", out, e)
    return out


def lnot(term: ExprLike) -> Expr:
    """Negation."""
    return Unary("not", as_expr(term))


def implies(antecedent: ExprLike, consequent: ExprLike) -> Expr:
    """Pointwise implication ``⇒``."""
    return Binary("=>", as_expr(antecedent), as_expr(consequent))


def iff(left: ExprLike, right: ExprLike) -> Expr:
    """Pointwise equivalence ``≡``."""
    return Binary("<=>", as_expr(left), as_expr(right))


def ite(cond: ExprLike, then: ExprLike, orelse: ExprLike) -> Expr:
    """Conditional expression."""
    return Ite(as_expr(cond), as_expr(then), as_expr(orelse))


def knows(process: str, formula: ExprLike) -> Knowledge:
    """The knowledge guard ``K[process](formula)``."""
    return Knowledge(process, as_expr(formula))


def tup(*items: ExprLike) -> TupleExpr:
    """Tuple construction with constant coercion, e.g. ``tup(var("i"), var("y"))``."""
    return TupleExpr(tuple(as_expr(e) for e in items))
