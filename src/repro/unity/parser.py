"""A small text notation for (knowledge-based) UNITY programs.

The paper presents programs as declaration / processes / init / assign
sections (Figures 1–4).  This module parses a faithful ASCII rendition::

    program fig1
    var shared, x : bool
    process P0 reads shared
    process P1 reads shared, x
    init !shared && !x
    assign
      s0 : shared := true if K[P0](!x)
      [] s1 : x, shared := true, false if shared
    end

Grammar (informal)::

    program   ::= "program" IDENT section* "end"?
    section   ::= vardecl | procdecl | initdecl | assigns
    vardecl   ::= "var" names ":" type (";" names ":" type)*
    type      ::= "bool" | INT ".." INT | "enum" "{" IDENT ("," IDENT)* "}"
    procdecl  ::= "process" IDENT "reads" names
    initdecl  ::= "init" expr
    assigns   ::= "assign" stmt ("[]" stmt)*
    stmt      ::= (IDENT ":")? names ":=" exprs ("if" expr)?
    expr      ::= precedence-climbing over  <=>  =>  ||  &&  !  (cmp)  + -  * %
                  with primaries: INT, "true", "false", IDENT,
                  "K" "[" IDENT "]" "(" expr ")",  "(" expr ")",  IDENT "[" expr "]"

Only Booleans, bounded integers and enums are declarable in the DSL — the
richer domains (sequences, options, tuples) are available through the
library API, which the sequence-transmission models use directly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..statespace import BoolDomain, Domain, EnumDomain, IntRangeDomain, StateSpace, Variable
from .expressions import (
    Binary,
    Const,
    Expr,
    Index,
    Knowledge,
    Unary,
    Var,
)
from .program import Program
from .statements import Statement


class ParseError(Exception):
    """The program text is not well-formed."""

    def __init__(self, message: str, position: Optional[int] = None):
        self.position = position
        super().__init__(message if position is None else f"{message} (near token {position})")


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident' | 'int' | 'sym'
    text: str


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|\#[^\n]*)
  | (?P<int>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9']*)
  | (?P<sym><=>|=>|:=|\.\.|==|!=|<=|>=|&&|\|\||\[\]|[()\[\]{},:;!<>+\-*%=|])
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "program",
    "var",
    "process",
    "reads",
    "init",
    "assign",
    "end",
    "if",
    "true",
    "false",
    "bool",
    "enum",
    "K",
    "not",
    "and",
    "or",
}


def tokenize(text: str) -> List[Token]:
    """Split program text into tokens; comments run from ``#`` to end of line."""
    tokens: List[Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r} at offset {pos}")
        pos = match.end()
        if match.lastgroup == "ws":
            continue
        kind = match.lastgroup
        tokens.append(Token(kind, match.group()))
    return tokens


class _Parser:
    """Recursive-descent / precedence-climbing parser over a token list."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token primitives ----------------------------------------------

    def peek(self, offset: int = 0) -> Optional[Token]:
        index = self.pos + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def advance(self) -> Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input", self.pos)
        self.pos += 1
        return token

    def expect(self, text: str) -> Token:
        token = self.advance()
        if token.text != text:
            raise ParseError(f"expected {text!r}, found {token.text!r}", self.pos - 1)
        return token

    def accept(self, text: str) -> bool:
        token = self.peek()
        if token is not None and token.text == text:
            self.pos += 1
            return True
        return False

    def ident(self) -> str:
        token = self.advance()
        if token.kind != "ident" or token.text in _KEYWORDS - {"K"}:
            raise ParseError(f"expected identifier, found {token.text!r}", self.pos - 1)
        return token.text

    # -- program structure ----------------------------------------------

    def parse_program(self) -> Tuple[str, List[Variable], Dict[str, List[str]], Optional[Expr], List[Statement]]:
        self.expect("program")
        name = self.ident()
        variables: List[Variable] = []
        processes: Dict[str, List[str]] = {}
        init_expr: Optional[Expr] = None
        statements: List[Statement] = []
        while self.peek() is not None:
            token = self.peek()
            if token.text == "end":
                self.advance()
                break
            if token.text == "var":
                self.advance()
                variables.extend(self.parse_var_decls())
            elif token.text == "process":
                self.advance()
                pname = self.ident()
                self.expect("reads")
                processes[pname] = self.parse_name_list()
            elif token.text == "init":
                self.advance()
                if init_expr is not None:
                    raise ParseError("duplicate init section", self.pos)
                init_expr = self.parse_expr()
            elif token.text == "assign":
                self.advance()
                statements.extend(self.parse_statements())
            else:
                raise ParseError(f"unexpected token {token.text!r}", self.pos)
        return name, variables, processes, init_expr, statements

    def parse_var_decls(self) -> List[Variable]:
        out: List[Variable] = []
        while True:
            names = self.parse_name_list()
            self.expect(":")
            domain = self.parse_type()
            out.extend(Variable(n, domain) for n in names)
            if not self.accept(";"):
                break
            # Allow a trailing semicolon before the next section keyword.
            nxt = self.peek()
            if nxt is None or nxt.text in ("var", "process", "init", "assign", "end"):
                break
        return out

    def parse_type(self) -> Domain:
        token = self.advance()
        if token.text == "bool":
            return BoolDomain()
        if token.kind == "int":
            lo = int(token.text)
            self.expect("..")
            hi_token = self.advance()
            if hi_token.kind != "int":
                raise ParseError(f"expected integer, found {hi_token.text!r}", self.pos - 1)
            return IntRangeDomain(lo, int(hi_token.text))
        if token.text == "enum":
            self.expect("{")
            values = [self.ident()]
            while self.accept(","):
                values.append(self.ident())
            self.expect("}")
            return EnumDomain("enum{" + ",".join(values) + "}", values)
        raise ParseError(f"expected a type, found {token.text!r}", self.pos - 1)

    def parse_name_list(self) -> List[str]:
        names = [self.ident()]
        while self.accept(","):
            names.append(self.ident())
        return names

    def parse_statements(self) -> List[Statement]:
        statements = [self.parse_statement(0)]
        while self.accept("[]"):
            statements.append(self.parse_statement(len(statements)))
        return statements

    def parse_statement(self, ordinal: int) -> Statement:
        label = f"s{ordinal}"
        token = self.peek()
        nxt = self.peek(1)
        if (
            token is not None
            and token.kind == "ident"
            and nxt is not None
            and nxt.text == ":"
        ):
            label = self.ident()
            self.expect(":")
        targets = self.parse_name_list()
        self.expect(":=")
        exprs = [self.parse_expr()]
        while self.accept(","):
            exprs.append(self.parse_expr())
        guard: Expr = Const(True)
        if self.accept("if"):
            guard = self.parse_expr()
        return Statement(name=label, targets=tuple(targets), exprs=tuple(exprs), guard=guard)

    # -- expressions ------------------------------------------------------

    # binding powers, loosest first
    _BINARY_LEVELS = [
        ("<=>",),
        ("=>",),
        ("||", "or"),
        ("&&", "and"),
        ("==", "!=", "<", "<=", ">", ">="),
        ("+", "-"),
        ("*", "%"),
    ]

    def parse_expr(self, level: int = 0) -> Expr:
        if level >= len(self._BINARY_LEVELS):
            return self.parse_unary()
        ops = self._BINARY_LEVELS[level]
        left = self.parse_expr(level + 1)
        while True:
            token = self.peek()
            if token is None or token.text not in ops:
                return left
            self.advance()
            op = {"||": "or", "&&": "and"}.get(token.text, token.text)
            if op == "=>":
                # implication associates to the right
                right = self.parse_expr(level)
                return Binary("=>", left, right)
            right = self.parse_expr(level + 1)
            left = Binary(op, left, right)

    def parse_unary(self) -> Expr:
        if self.accept("!") or self.accept("not"):
            return Unary("not", self.parse_unary())
        if self.accept("-"):
            return Unary("-", self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> Expr:
        expr = self.parse_primary()
        while True:
            if self.accept("["):
                index = self.parse_expr()
                self.expect("]")
                expr = Index(expr, index)
            else:
                return expr

    def parse_primary(self) -> Expr:
        token = self.advance()
        if token.kind == "int":
            return Const(int(token.text))
        if token.text == "true":
            return Const(True)
        if token.text == "false":
            return Const(False)
        if token.text == "K":
            self.expect("[")
            process = self.ident()
            self.expect("]")
            self.expect("(")
            formula = self.parse_expr()
            self.expect(")")
            return Knowledge(process, formula)
        if token.text == "(":
            expr = self.parse_expr()
            self.expect(")")
            return expr
        if token.kind == "ident" and token.text not in _KEYWORDS:
            return Var(token.text)
        raise ParseError(f"unexpected token {token.text!r} in expression", self.pos - 1)


def parse_expression(text: str) -> Expr:
    """Parse a standalone expression, e.g. ``parse_expression("K[P0](!x)")``."""
    parser = _Parser(tokenize(text))
    expr = parser.parse_expr()
    if parser.peek() is not None:
        raise ParseError(f"trailing input after expression: {parser.peek().text!r}", parser.pos)
    return expr


def parse_program(text: str) -> Program:
    """Parse a full program text into a :class:`~repro.unity.Program`."""
    parser = _Parser(tokenize(text))
    name, variables, processes, init_expr, statements = parser.parse_program()
    if parser.peek() is not None:
        raise ParseError(f"trailing input after program: {parser.peek().text!r}", parser.pos)
    if not variables:
        raise ParseError("program declares no variables")
    if not statements:
        raise ParseError("program has no assign section")
    space = StateSpace(variables)
    init: Any = init_expr if init_expr is not None else Const(True)
    return Program(
        space=space,
        init=init,
        statements=statements,
        processes=processes,
        name=name,
    )
