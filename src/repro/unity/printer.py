"""Pretty-printing programs and expressions back to the DSL syntax.

``program_to_text(parse_program(text))`` re-parses to an equivalent
program — the round-trip property the test suite checks.  Only programs
whose variables use DSL-expressible domains (bool, integer ranges, enums
of identifiers) and whose expressions use DSL operators can be printed;
:class:`UnprintableError` is raised otherwise.
"""

from __future__ import annotations

from typing import List

from ..statespace import BoolDomain, Domain, EnumDomain, IntRangeDomain
from .expressions import (
    Binary,
    Const,
    Expr,
    Index,
    Ite,
    Knowledge,
    Unary,
    Var,
)
from .program import Program
from .statements import Statement


class UnprintableError(ValueError):
    """The object uses constructs outside the DSL subset."""


#: binding strength per operator — mirrors the parser's precedence table.
_LEVELS = {
    "<=>": 1,
    "=>": 2,
    "or": 3,
    "and": 4,
    "==": 5,
    "!=": 5,
    "<": 5,
    "<=": 5,
    ">": 5,
    ">=": 5,
    "+": 6,
    "-": 6,
    "*": 7,
    "%": 7,
}

_RENDER = {"or": "||", "and": "&&"}


def expr_to_text(expr: Expr, parent_level: int = 0) -> str:
    """Render an expression with minimal parentheses."""
    if isinstance(expr, Const):
        if expr.value is True:
            return "true"
        if expr.value is False:
            return "false"
        if isinstance(expr.value, int):
            return str(expr.value)
        raise UnprintableError(f"constant {expr.value!r} has no DSL syntax")
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Unary):
        operand = expr_to_text(expr.operand, 8)
        if expr.op == "not":
            return f"!{operand}"
        if expr.op == "-":
            return f"-{operand}"
        raise UnprintableError(f"unary {expr.op!r} has no DSL syntax")
    if isinstance(expr, Binary):
        level = _LEVELS.get(expr.op)
        if level is None:
            raise UnprintableError(f"operator {expr.op!r} has no DSL syntax")
        symbol = _RENDER.get(expr.op, expr.op)
        # Right-associative implication; everything else left-associative.
        if expr.op == "=>":
            left = expr_to_text(expr.left, level + 1)
            right = expr_to_text(expr.right, level)
        else:
            left = expr_to_text(expr.left, level)
            right = expr_to_text(expr.right, level + 1)
        text = f"{left} {symbol} {right}"
        if level < parent_level:
            return f"({text})"
        return text
    if isinstance(expr, Index):
        return f"{expr_to_text(expr.seq, 8)}[{expr_to_text(expr.at)}]"
    if isinstance(expr, Knowledge):
        return f"K[{expr.process}]({expr_to_text(expr.formula)})"
    if isinstance(expr, Ite):
        raise UnprintableError("conditional expressions have no DSL syntax")
    raise UnprintableError(f"{type(expr).__name__} has no DSL syntax")


def _domain_to_text(domain: Domain) -> str:
    if isinstance(domain, BoolDomain) or domain == BoolDomain():
        return "bool"
    if isinstance(domain, IntRangeDomain):
        return f"{domain.lo}..{domain.hi}"
    if isinstance(domain, EnumDomain) and all(
        isinstance(v, str) and v.isidentifier() for v in domain.values
    ):
        return "enum { " + ", ".join(domain.values) + " }"
    raise UnprintableError(f"domain {domain!r} has no DSL syntax")


def statement_to_text(stmt: Statement) -> str:
    """Render one guarded multiple assignment."""
    lhs = ", ".join(stmt.targets)
    rhs = ", ".join(expr_to_text(e) for e in stmt.exprs)
    text = f"{stmt.name} : {lhs} := {rhs}"
    if not (isinstance(stmt.guard, Const) and stmt.guard.value is True):
        text += f" if {expr_to_text(stmt.guard)}"
    return text


def program_to_text(program: Program, init_expr: Expr = None) -> str:
    """Render a whole program in the DSL.

    The initial condition is a semantic predicate; pass ``init_expr`` when
    you have the syntactic form, otherwise the init is rendered as an
    explicit disjunction of full-state equalities (exact but verbose).
    """
    lines: List[str] = [f"program {program.name.replace('-', '_').replace('@', '_')}"]
    for variable in program.space.variables:
        lines.append(f"var {variable.name} : {_domain_to_text(variable.domain)}")
    for process in program.processes.values():
        ordered = [n for n in program.space.names if n in process.variables]
        lines.append(f"process {process.name} reads {', '.join(ordered)}")
    if init_expr is not None:
        lines.append(f"init {expr_to_text(init_expr)}")
    elif not program.init.is_everywhere():
        lines.append(f"init {_predicate_to_text(program)}")
    lines.append("assign")
    rendered = [statement_to_text(s) for s in program.statements]
    lines.append("  " + "\n  [] ".join(rendered))
    lines.append("end")
    return "\n".join(lines)


def _predicate_to_text(program: Program) -> str:
    """The init predicate as a disjunction of complete state descriptions."""
    disjuncts = []
    for state in program.init.states():
        parts = []
        for name in program.space.names:
            value = state[name]
            if value is True:
                parts.append(name)
            elif value is False:
                parts.append(f"!{name}")
            elif isinstance(value, int):
                parts.append(f"{name} == {value}")
            else:
                raise UnprintableError(
                    f"init value {value!r} for {name} has no DSL syntax"
                )
        disjuncts.append("(" + " && ".join(parts) + ")")
    if not disjuncts:
        raise UnprintableError("init is unsatisfiable; no DSL rendering")
    return " || ".join(disjuncts)
