"""repro — knowledge as a predicate transformer, and knowledge-based protocols.

A complete, executable reproduction of Beverly Sanders' *"A Predicate
Transformer Approach to Knowledge and Knowledge-Based Protocols"*
(PODC 1991 extended abstract / ETH technical report, 1992).

The library provides, bottom-up:

* :mod:`repro.statespace` — finite domains, variables, state enumeration;
* :mod:`repro.predicates` — exact semantic predicates (bitsets), the
  weakest/strongest cylinders ``wcyl``/``scyl`` (eq. 6), fixpoints;
* :mod:`repro.transformers` — ``sp``/``wp``, the program-level ``SP``
  (eq. 26), the strongest stable predicate ``sst`` and strongest invariant
  ``SI`` (eqs. 1–5), junctivity analyzers;
* :mod:`repro.unity` — UNITY programs (expressions, guarded multiple
  assignments, processes) plus a text DSL with ``K[i](...)`` guards;
* :mod:`repro.core` — **the paper's contribution**: the knowledge operator
  ``K_i`` (eq. 13), S5 and junctivity verification (eqs. 14–24), and the
  knowledge-based-protocol solver for the self-referential SI equation
  (eq. 25) with its well-posedness and monotonicity diagnostics;
* :mod:`repro.proofs` — the UNITY proof theory (eqs. 27–33), the appendix
  metatheorems as a machine-checked kernel, and fair model checking of
  leads-to;
* :mod:`repro.runs` — runs/points/views semantics ([HM90]) for
  cross-validation;
* :mod:`repro.figures` — the paper's Figure 1/2 counterexamples;
* :mod:`repro.seqtrans` — the section-6 sequence transmission case study
  (knowledge-based protocol, standard protocol, channels, classical
  protocol family);
* :mod:`repro.sim` — fair random execution and message-count harnesses;
* :mod:`repro.puzzles` — muddy children / cheating husbands as
  knowledge-analysis workloads.

Quickstart::

    from repro import parse_program, KnowledgeOperator, var_true

    prog = parse_program('''
        program demo
        var a, b : bool
        process P reads a
        init !a && !b
        assign  s0 : a := true if b
             [] s1 : b := true
        end
    ''')
    K = KnowledgeOperator.of_program(prog)
    p = var_true(prog.space, "b")
    print(K.knows("P", p))          # where P knows b
"""

from .core import (
    KnowledgeOperator,
    SolveReport,
    compare_inits,
    instantiates,
    is_solution,
    solve_si,
    solve_si_iterative,
    sp_hat,
)
from .predicates import (
    Predicate,
    depends_only_on,
    everywhere,
    pred,
    scyl,
    support,
    var_cmp,
    var_eq,
    var_in,
    var_true,
    vars_cmp,
    wcyl,
)
from .proofs import (
    Ensures,
    Invariant,
    LeadsTo,
    Proof,
    ProofContext,
    ProofError,
    Stable,
    Unless,
    holds_ensures,
    holds_invariant,
    holds_leads_to,
    holds_stable,
    holds_unless,
)
from .statespace import (
    BOT,
    BoolDomain,
    Domain,
    EnumDomain,
    IntRangeDomain,
    OptionDomain,
    SeqDomain,
    State,
    StateSpace,
    TupleDomain,
    Variable,
    space_of,
)
from .transformers import (
    sp_program,
    sp_statement,
    sst,
    strongest_invariant,
    wp_statement,
)
from .unity import (
    Program,
    Statement,
    assign,
    knows,
    parse_expression,
    parse_program,
    quantified,
    var,
)

__version__ = "1.0.0"

__all__ = [
    "KnowledgeOperator",
    "SolveReport",
    "compare_inits",
    "instantiates",
    "is_solution",
    "solve_si",
    "solve_si_iterative",
    "sp_hat",
    "Predicate",
    "depends_only_on",
    "everywhere",
    "pred",
    "scyl",
    "support",
    "var_cmp",
    "var_eq",
    "var_in",
    "var_true",
    "vars_cmp",
    "wcyl",
    "Ensures",
    "Invariant",
    "LeadsTo",
    "Proof",
    "ProofContext",
    "ProofError",
    "Stable",
    "Unless",
    "holds_ensures",
    "holds_invariant",
    "holds_leads_to",
    "holds_stable",
    "holds_unless",
    "BOT",
    "BoolDomain",
    "Domain",
    "EnumDomain",
    "IntRangeDomain",
    "OptionDomain",
    "SeqDomain",
    "State",
    "StateSpace",
    "TupleDomain",
    "Variable",
    "space_of",
    "sp_program",
    "sp_statement",
    "sst",
    "strongest_invariant",
    "wp_statement",
    "Program",
    "Statement",
    "assign",
    "knows",
    "parse_expression",
    "parse_program",
    "quantified",
    "var",
    "__version__",
]
