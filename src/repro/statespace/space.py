"""State spaces: ordered tuples of variables with mixed-radix state indexing.

A *state* is an assignment of a value to every variable.  The space
enumerates all states and gives each an integer index, so that predicates
can be represented exactly as bitsets (see :mod:`repro.predicates`).

The encoding is row-major ("first variable varies slowest"): state index

    idx = Σ_k  digit_k * stride_k,   stride_k = Π_{m>k} |dom_m|

which makes single-variable updates and projections O(1) integer arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from .domains import Domain


@dataclass(frozen=True)
class Variable:
    """A named program variable with a finite domain."""

    name: str
    domain: Domain

    def __repr__(self) -> str:
        return f"{self.name}:{self.domain.name}"


class State(Mapping):
    """An immutable assignment of values to all variables of a space.

    Behaves as a read-only mapping from variable name to value.  States are
    cheap views: they hold only the space reference and their index.
    """

    __slots__ = ("space", "index")

    def __init__(self, space: "StateSpace", index: int):
        if not 0 <= index < space.size:
            raise IndexError(f"state index {index} out of range for {space}")
        object.__setattr__(self, "space", space)
        object.__setattr__(self, "index", index)

    def __setattr__(self, key: str, value: Any) -> None:
        raise AttributeError("State is immutable")

    def __getitem__(self, name: str) -> Any:
        return self.space.value_at(self.index, name)

    def __iter__(self) -> Iterator[str]:
        return iter(self.space.names)

    def __len__(self) -> int:
        return len(self.space.names)

    def values_tuple(self) -> Tuple[Any, ...]:
        """All variable values in declaration order."""
        return self.space.decode(self.index)

    def as_dict(self) -> Dict[str, Any]:
        """A plain dict snapshot of the assignment."""
        return dict(zip(self.space.names, self.values_tuple()))

    def updated(self, **changes: Any) -> "State":
        """A new state with the given variables reassigned."""
        return State(self.space, self.space.reindex(self.index, changes))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, State):
            return self.space is other.space and self.index == other.index
        return NotImplemented

    def __hash__(self) -> int:
        return hash((id(self.space), self.index))

    def __repr__(self) -> str:
        parts = ", ".join(f"{n}={v!r}" for n, v in self.as_dict().items())
        return f"State({parts})"


class StateSpace:
    """The finite set of all assignments to an ordered list of variables.

    Construction precomputes strides for the mixed-radix encoding; the
    cylinder partition used by ``wcyl`` (paper eq. 6) is cached per variable
    subset via :meth:`cylinder_partition`.
    """

    def __init__(self, variables: Sequence[Variable]):
        if not variables:
            raise ValueError("a state space needs at least one variable")
        names = [v.name for v in variables]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate variable names in {names}")
        self.variables: Tuple[Variable, ...] = tuple(variables)
        self.names: Tuple[str, ...] = tuple(names)
        self._pos: Dict[str, int] = {n: k for k, n in enumerate(names)}
        self._radix: Tuple[int, ...] = tuple(len(v.domain) for v in variables)
        strides: List[int] = [1] * len(variables)
        for k in range(len(variables) - 2, -1, -1):
            strides[k] = strides[k + 1] * self._radix[k + 1]
        self._strides: Tuple[int, ...] = tuple(strides)
        self.size: int = strides[0] * self._radix[0]
        self._full_mask: Optional[int] = None
        self._cylinder_cache: Dict[frozenset, Tuple[List[int], int]] = {}
        self._cylinder_np_cache: Dict[frozenset, Tuple[Any, int]] = {}
        self._cylinder_mask_cache: Dict[frozenset, List[int]] = {}

    @property
    def full_mask(self) -> int:
        """``(1 << size) - 1`` — computed lazily and cached.

        Laziness matters beyond toy sizes: a symbolic (ROBDD) space of
        2^40+ states must never materialize a 2^40-bit integer, and nothing
        on the symbolic path reads this property.
        """
        m = self._full_mask
        if m is None:
            m = (1 << self.size) - 1
            self._full_mask = m
        return m

    # ------------------------------------------------------------------
    # variable lookup
    # ------------------------------------------------------------------

    def var(self, name: str) -> Variable:
        """The variable named ``name``."""
        try:
            return self.variables[self._pos[name]]
        except KeyError:
            raise KeyError(f"no variable {name!r} in {self}") from None

    def position(self, name: str) -> int:
        """Declaration position of ``name``."""
        try:
            return self._pos[name]
        except KeyError:
            raise KeyError(f"no variable {name!r} in {self}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._pos

    def check_vars(self, names: Iterable[str]) -> frozenset:
        """Validate a set of variable names, returning it as a frozenset."""
        fs = frozenset(names)
        unknown = fs - set(self.names)
        if unknown:
            raise KeyError(f"unknown variables {sorted(unknown)} in {self}")
        return fs

    # ------------------------------------------------------------------
    # encoding / decoding
    # ------------------------------------------------------------------

    def encode(self, values: Sequence[Any]) -> int:
        """Index of the state assigning ``values`` in declaration order."""
        if len(values) != len(self.variables):
            raise ValueError(
                f"expected {len(self.variables)} values, got {len(values)}"
            )
        idx = 0
        for var, stride, value in zip(self.variables, self._strides, values):
            idx += var.domain.index(value) * stride
        return idx

    def decode(self, index: int) -> Tuple[Any, ...]:
        """All variable values of the state at ``index``."""
        return tuple(
            var.domain.values[(index // stride) % radix]
            for var, stride, radix in zip(self.variables, self._strides, self._radix)
        )

    def index_of(self, assignment: Mapping[str, Any]) -> int:
        """Index of the state described by a full name→value mapping."""
        missing = set(self.names) - set(assignment)
        if missing:
            raise ValueError(f"assignment missing variables {sorted(missing)}")
        return self.encode([assignment[n] for n in self.names])

    def value_at(self, index: int, name: str) -> Any:
        """Value of variable ``name`` in the state at ``index``."""
        k = self.position(name)
        var = self.variables[k]
        return var.domain.values[(index // self._strides[k]) % self._radix[k]]

    def digit(self, index: int, position: int) -> int:
        """Domain-order position of variable ``position``'s value at ``index``."""
        return (index // self._strides[position]) % self._radix[position]

    def reindex(self, index: int, changes: Mapping[str, Any]) -> int:
        """Index after reassigning the variables in ``changes``."""
        for name, value in changes.items():
            k = self.position(name)
            var = self.variables[k]
            old_digit = self.digit(index, k)
            new_digit = var.domain.index(value)
            index += (new_digit - old_digit) * self._strides[k]
        return index

    # ------------------------------------------------------------------
    # states
    # ------------------------------------------------------------------

    def state_at(self, index: int) -> State:
        """The :class:`State` view at ``index``."""
        return State(self, index)

    def state_of(self, assignment: Mapping[str, Any]) -> State:
        """The state described by a full name→value mapping."""
        return State(self, self.index_of(assignment))

    def states(self) -> Iterator[State]:
        """All states, in index order."""
        return (State(self, i) for i in range(self.size))

    def indices(self) -> range:
        """All state indices."""
        return range(self.size)

    # ------------------------------------------------------------------
    # cylinder structure (the basis of wcyl, paper eq. 6)
    # ------------------------------------------------------------------

    def cylinder_partition(self, names: Iterable[str]) -> Tuple[List[int], int]:
        """Partition states by their projection onto ``names``.

        Returns ``(group_of, n_groups)``: ``group_of[i]`` is the group id of
        state ``i``; two states share a group iff they agree on every
        variable in ``names``.  Group ids are dense in ``0..n_groups-1``.

        Cached per variable subset — ``wcyl`` and the knowledge operator
        call this repeatedly with each process's variable set.
        """
        key = self.check_vars(names)
        cached = self._cylinder_cache.get(key)
        if cached is not None:
            return cached
        from ..predicates import limits  # lazy: guards only, no cycle at import

        limits.check_explicit_size(self.size, "materializing a cylinder partition")
        positions = sorted(self._pos[n] for n in key)
        n_groups = 1
        weights: List[int] = []
        for k in positions:
            weights.append(n_groups)
            n_groups *= self._radix[k]
        group_of = [0] * self.size
        for k, weight in zip(positions, weights):
            stride = self._strides[k]
            radix = self._radix[k]
            for i in range(self.size):
                group_of[i] += ((i // stride) % radix) * weight
        result = (group_of, n_groups)
        self._cylinder_cache[key] = result
        return result

    def cylinder_partition_np(self, names: Iterable[str]) -> Tuple[Any, int]:
        """:meth:`cylinder_partition` as a numpy int64 array (cached).

        Computed directly with vectorized mixed-radix arithmetic — the
        grouped-reduction kernels of the numpy predicate backend consume
        this without ever materializing the Python list.
        """
        import numpy as np

        key = self.check_vars(names)
        cached = self._cylinder_np_cache.get(key)
        if cached is not None:
            return cached
        positions = sorted(self._pos[n] for n in key)
        indices = np.arange(self.size, dtype=np.int64)
        group_of = np.zeros(self.size, dtype=np.int64)
        weight = 1
        for k in positions:
            group_of += ((indices // self._strides[k]) % self._radix[k]) * weight
            weight *= self._radix[k]
        group_of.setflags(write=False)
        result = (group_of, weight)
        self._cylinder_np_cache[key] = result
        return result

    def cylinder_group_masks(self, names: Iterable[str]) -> List[int]:
        """Per-group member bitmasks of the cylinder partition (cached).

        ``masks[g]`` has bit ``i`` set iff state ``i`` belongs to group
        ``g``.  The int predicate backend reduces ``wcyl``/``scyl`` to one
        big-int test per *group* with these, instead of one Python
        iteration per state.
        """
        key = self.check_vars(names)
        cached = self._cylinder_mask_cache.get(key)
        if cached is not None:
            return cached
        group_of, n_groups = self.cylinder_partition(names)
        masks = [0] * n_groups
        bit = 1
        for g in group_of:
            masks[g] |= bit
            bit <<= 1
        self._cylinder_mask_cache[key] = masks
        return masks

    def projection(self, index: int, names: Iterable[str]) -> Tuple[Any, ...]:
        """Values of the given variables (sorted by declaration order) at ``index``."""
        positions = sorted(self.position(n) for n in self.check_vars(names))
        return tuple(
            self.variables[k].domain.values[self.digit(index, k)] for k in positions
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, StateSpace):
            return self.variables == other.variables
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.variables)

    def __repr__(self) -> str:
        return f"StateSpace({', '.join(map(repr, self.variables))}; {self.size} states)"


def space_of(**domains: Domain) -> StateSpace:
    """Convenience constructor: ``space_of(x=BoolDomain(), n=IntRangeDomain(0, 3))``.

    Variable order follows keyword order (Python 3.7+ preserves it).
    """
    return StateSpace([Variable(name, dom) for name, dom in domains.items()])
