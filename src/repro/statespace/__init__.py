"""Finite state spaces: domains, variables, and mixed-radix state enumeration."""

from .domains import (
    BOT,
    BoolDomain,
    Bottom,
    Domain,
    EnumDomain,
    IntRangeDomain,
    OptionDomain,
    SeqDomain,
    TupleDomain,
    bool_domain,
)
from .space import State, StateSpace, Variable, space_of

__all__ = [
    "BOT",
    "BoolDomain",
    "Bottom",
    "Domain",
    "EnumDomain",
    "IntRangeDomain",
    "OptionDomain",
    "SeqDomain",
    "TupleDomain",
    "bool_domain",
    "State",
    "StateSpace",
    "Variable",
    "space_of",
]
