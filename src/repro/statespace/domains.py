"""Finite value domains for program variables.

The paper treats predicates as *semantic* objects — Boolean-valued total
functions on the state space — and never relies on a particular syntax.  To
compute with them exactly, every variable in this library ranges over an
explicit finite, ordered domain.  Unbounded types from the paper (naturals,
infinite sequences) are instantiated with bounded counterparts; see
DESIGN.md section 2 for the substitution argument.

Domains are immutable and hashable.  The order of ``values`` is significant:
it fixes the mixed-radix encoding used by :class:`repro.statespace.StateSpace`.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator, Sequence, Tuple


class Bottom:
    """The distinguished "no value" element, written ``⊥`` in the paper.

    The sequence transmission protocol uses ``z : nat ∪ ⊥`` for "no message
    received or the message was corrupted".  ``BOT`` is the unique instance.
    """

    _instance: "Bottom" = None

    def __new__(cls) -> "Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"

    def __reduce__(self):
        return (Bottom, ())


#: The unique bottom element, usable as a domain value via :class:`OptionDomain`.
BOT = Bottom()


class Domain:
    """An ordered finite set of hashable values.

    Subclasses populate :attr:`values` (a tuple) and :attr:`name`.  The
    class provides indexing, membership and iteration; equality is by
    value tuple so structurally identical domains compare equal.
    """

    __slots__ = ("name", "values", "_index")

    def __init__(self, name: str, values: Sequence[Any]):
        if len(values) == 0:
            raise ValueError(f"domain {name!r} must be non-empty")
        self.name = name
        self.values: Tuple[Any, ...] = tuple(values)
        self._index = {v: i for i, v in enumerate(self.values)}
        if len(self._index) != len(self.values):
            raise ValueError(f"domain {name!r} has duplicate values")

    def index(self, value: Any) -> int:
        """Return the position of ``value`` in the domain order."""
        try:
            return self._index[value]
        except KeyError:
            raise ValueError(f"{value!r} is not in domain {self.name}") from None

    def __contains__(self, value: Any) -> bool:
        try:
            return value in self._index
        except TypeError:
            return False

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Domain) and self.values == other.values

    def __hash__(self) -> int:
        return hash(self.values)

    def __repr__(self) -> str:
        if len(self.values) <= 8:
            return f"Domain({self.name}: {list(self.values)!r})"
        return f"Domain({self.name}: {len(self.values)} values)"


class BoolDomain(Domain):
    """The Boolean domain ``{False, True}`` (False first)."""

    def __init__(self) -> None:
        super().__init__("bool", (False, True))


class IntRangeDomain(Domain):
    """Integers ``lo..hi`` inclusive, in increasing order.

    Used for the bounded counters that replace the paper's naturals
    (``i, j : nat`` in Figures 3 and 4).
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: int, hi: int):
        if hi < lo:
            raise ValueError(f"empty integer range {lo}..{hi}")
        self.lo = lo
        self.hi = hi
        super().__init__(f"{lo}..{hi}", tuple(range(lo, hi + 1)))


class EnumDomain(Domain):
    """An explicitly enumerated domain, e.g. a finite message alphabet ``A``."""

    def __init__(self, name: str, values: Sequence[Any]):
        super().__init__(name, values)


class TupleDomain(Domain):
    """Cartesian product of component domains; values are tuples.

    The standard protocol's ``z' : (nat, A) ∪ ⊥`` uses
    ``OptionDomain(TupleDomain(IntRangeDomain(...), EnumDomain(...)))``.
    """

    __slots__ = ("components",)

    def __init__(self, *components: Domain):
        if not components:
            raise ValueError("TupleDomain needs at least one component")
        self.components = tuple(components)
        values = tuple(itertools.product(*(c.values for c in components)))
        name = "(" + ", ".join(c.name for c in components) + ")"
        super().__init__(name, values)


class SeqDomain(Domain):
    """All sequences over ``elem`` of length at most ``max_len``, as tuples.

    Ordered by length, then lexicographically by element order.  This is the
    bounded stand-in for the paper's ``seq of A`` variables (``w``, and the
    history variables ``ch_S``, ``ch_R``).
    """

    __slots__ = ("elem", "max_len")

    def __init__(self, elem: Domain, max_len: int):
        if max_len < 0:
            raise ValueError("max_len must be >= 0")
        self.elem = elem
        self.max_len = max_len
        values = []
        for length in range(max_len + 1):
            values.extend(itertools.product(elem.values, repeat=length))
        super().__init__(f"seq[{elem.name}]<= {max_len}", tuple(values))


class OptionDomain(Domain):
    """``inner ∪ {⊥}``, with ``BOT`` ordered first."""

    __slots__ = ("inner",)

    def __init__(self, inner: Domain):
        self.inner = inner
        super().__init__(f"{inner.name} ∪ ⊥", (BOT,) + inner.values)


def bool_domain() -> BoolDomain:
    """Shared Boolean domain instance (domains are immutable, sharing is safe)."""
    return _BOOL


_BOOL = BoolDomain()
