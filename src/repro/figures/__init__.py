"""The paper's counterexample programs (Figures 1 and 2) as library objects."""

from .fig1 import FIG1_TEXT, fig1_program
from .fig2 import FIG2_TEXT, fig2_program, fig2_strong_init, fig2_weak_init

__all__ = [
    "FIG1_TEXT",
    "fig1_program",
    "FIG2_TEXT",
    "fig2_program",
    "fig2_strong_init",
    "fig2_weak_init",
]
