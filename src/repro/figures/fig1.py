"""Figure 1: a knowledge-based protocol with **no solution**.

The paper's program::

    var shared, x : boolean
    processes V_0 = {shared}, V_1 = {shared, x}
    init ¬shared ∧ ¬x
    assign
        shared := true           if K_0 ¬x
      ▯ x, shared := true, false if shared

"There is no possible choice for SI for which the resulting ``K_0 ¬x``
will result in a standard protocol which actually yields this strongest
invariant" — i.e. the fixed-point equation (25) has no solution; the
exhaustive solver in :mod:`repro.core.kbp` certifies this by checking all
eight candidates above ``init``.

Intuition: if ``SI`` says the ``shared ∧ x`` states are unreachable, then
``K_0 ¬x`` reduces to something that lets process 0 set ``shared``, after
which process 1 can set ``x`` — making those states reachable after all;
if ``SI`` admits them, ``K_0 ¬x`` is false everywhere process 0 could act,
nothing ever happens, and the admitted states are *not* reachable.  Either
way the candidate contradicts itself: ``ŜP`` is not monotone (section 4).
"""

from __future__ import annotations

from ..unity import Program, parse_program

FIG1_TEXT = """
program fig1
var shared, x : bool
process P0 reads shared
process P1 reads shared, x
init !shared && !x
assign
  grant : shared := true if K[P0](!x)
  [] consume : x, shared := true, false if shared
end
"""


def fig1_program() -> Program:
    """The Figure 1 knowledge-based protocol (4 states, 2 statements)."""
    return parse_program(FIG1_TEXT)


def fig1_no_solution_report(emit_certificate: bool = False):
    """Run the exhaustive eq.-(25) solver on Figure 1.

    The returned :class:`~repro.core.kbp.SolveReport` has no solutions;
    with ``emit_certificate=True`` it also carries the full per-candidate
    refutation table (the replayable "no solution exists" evidence).
    """
    from ..core.kbp import solve_si

    return solve_si(fig1_program(), emit_certificate=emit_certificate)
