"""Figure 2: SI of a knowledge-based protocol is **not monotonic in init**.

The paper's program::

    var x, y, z : boolean
    processes V_0 = {y}, V_1 = {z}
    assign
        y := true if K_0 x
      ▯ z := true if K_1 ¬y

* With ``init = ¬y`` the strongest invariant is ``¬y``: process 0 never
  learns ``x`` (its view ``{y}`` cannot distinguish ``x``), so ``y`` stays
  false, so ``K_1 ¬y`` is everywhere true on SI and ``z`` is eventually set
  — the liveness property ``true ↦ z`` **holds**.
* With the *stronger* ``init = ¬y ∧ x``, the strongest invariant is ``x``:
  now ``x`` holds in every possible state, so process 0 knows it
  trivially and may set ``y``; consequently process 1 never knows ``¬y``,
  ``z`` is never set, and ``true ↦ z`` **fails**.

Strengthening the initial condition destroyed both the safety property
``invariant ¬y`` and the liveness property — "violating one of the most
intuitive and fundamental properties of standard programs".
"""

from __future__ import annotations

from ..predicates import Predicate, var_true
from ..unity import Program, parse_program

FIG2_TEXT = """
program fig2
var x, y, z : bool
process P0 reads y
process P1 reads z
init !y
assign
  set_y : y := true if K[P0](x)
  [] set_z : z := true if K[P1](!y)
end
"""


def fig2_program() -> Program:
    """The Figure 2 knowledge-based protocol with the *weak* init ``¬y``."""
    return parse_program(FIG2_TEXT)


def fig2_weak_init(program: Program) -> Predicate:
    """``init = ¬y``."""
    return ~var_true(program.space, "y")


def fig2_strong_init(program: Program) -> Predicate:
    """``init = ¬y ∧ x`` — stronger, yet with a weaker (larger) SI."""
    return ~var_true(program.space, "y") & var_true(program.space, "x")


def fig2_comparison(emit_certificate: bool = False):
    """Solve Figure 2 under both inits and compare the SIs.

    Returns the :class:`~repro.core.kbp.InitMonotonicityReport` with
    ``monotonic == False``; with ``emit_certificate=True`` both solves
    carry their full eq.-(25) certificates for the evidence bundle.
    """
    from ..core.kbp import compare_inits

    program = fig2_program()
    return compare_inits(
        program,
        fig2_weak_init(program),
        fig2_strong_init(program),
        emit_certificate=emit_certificate,
    )
