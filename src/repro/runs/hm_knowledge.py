"""View-based knowledge à la Halpern–Moses, over explicit runs.

Under a view-based interpretation, a process *knows* a fact at a point if
the fact holds at every point it cannot distinguish — every point where it
has the same *view*.  The paper fixes the view to be the projection of the
current global state onto the process's variables; [HM90] also allows
views built from the whole local history, which the paper recovers by
"explicitly including appropriate history variables".  Both variants are
implemented here:

* :func:`hm_knows` — state-projection views.  Provably equivalent to the
  predicate-transformer ``K_i`` on reachable states (checked exhaustively
  in the test suite and in benchmark E12).
* :func:`hm_knows_with_history` — full-history views (sequence of
  projections seen so far).  At least as strong; strictly stronger on
  programs where history disambiguates states, demonstrating what the
  explicit-history-variable encoding buys.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from ..predicates import Predicate
from ..unity import Program
from .runs import Point, bfs_reachable, generate_runs


def view_of(program: Program, process: str, state_index: int) -> Tuple:
    """The process's view at a state: projection onto its variables."""
    variables = program.process(process).variables
    return program.space.projection(state_index, variables)


def hm_knows(program: Program, process: str, p: Predicate) -> Predicate:
    """The set of *reachable* states where the process knows ``p`` ([HM90]).

    A process knows ``p`` at reachable state ``s`` iff ``p`` holds at every
    reachable state with the same view.  Off the reachable set the result
    is false (there are no points there at all) — compare against
    ``K_i p ∧ SI`` of eq. (13).
    """
    space = program.space
    reach = bfs_reachable(program)
    holds_everywhere: Dict[Tuple, bool] = defaultdict(lambda: True)
    for i in reach.indices():
        view = view_of(program, process, i)
        if not p.holds_at(i):
            holds_everywhere[view] = False
    mask = 0
    for i in reach.indices():
        if holds_everywhere[view_of(program, process, i)]:
            mask |= 1 << i
    return Predicate(space, mask)


def history_view_of(
    program: Program, process: str, point: Point
) -> Tuple[Tuple, ...]:
    """The full-history view: the sequence of projections observed so far."""
    return tuple(
        view_of(program, process, state) for state in point.history()
    )


def hm_knows_with_history(
    program: Program,
    process: str,
    p: Predicate,
    depth: int,
    max_runs: int = 100_000,
) -> Dict[Point, bool]:
    """History-view knowledge of ``p`` at every point up to ``depth``.

    Two points are indistinguishable iff the process has observed the same
    *sequence* of projections.  (In [HM90]'s taxonomy: a view function that
    uses the entire local history, with a perfect clock.)
    """
    runs = generate_runs(program, depth, max_runs)
    points: List[Point] = [run.point(t) for run in runs for t in range(len(run.states))]
    # Group points by (time, history view): with synchronous views the
    # process can also count steps, so only same-length histories collide —
    # this matches comparing the raw view tuples, which include length.
    fact_ok: Dict[Tuple, bool] = defaultdict(lambda: True)
    for point in points:
        view = history_view_of(program, process, point)
        if not p.holds_at(point.state):
            fact_ok[view] = False
    return {
        point: fact_ok[history_view_of(program, process, point)] for point in points
    }


def history_strictly_stronger(
    program: Program,
    process: str,
    p: Predicate,
    depth: int,
    max_runs: int = 100_000,
) -> List[Point]:
    """Points where history-view knowledge of ``p`` exceeds state-view knowledge.

    Non-empty exactly when remembering the past pays; empty for programs
    whose current state already encodes all relevant history (e.g. after
    adding explicit history variables, as the paper prescribes).
    """
    state_k = hm_knows(program, process, p)
    by_history = hm_knows_with_history(program, process, p, depth, max_runs)
    return [
        point
        for point, knows in by_history.items()
        if knows and not state_k.holds_at(point.state)
    ]


def agreement_with_transformer(
    program: Program, process: str, p: Predicate
) -> bool:
    """Whether [HM90] knowledge equals eq. (13)'s ``K_i p`` on reachable states.

    The paper's section-3 claim, checked operationally.
    """
    from ..core import KnowledgeOperator

    operator = KnowledgeOperator.of_program(program)
    reach = bfs_reachable(program)
    return (operator.knows(process, p) & reach) == hm_knows(program, process, p)
