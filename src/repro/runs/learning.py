"""How processes learn: knowledge acquisition over time.

The paper's Conclusion credits knowledge analysis with clarifying "how
processes learn" [CM86].  This module measures exactly that for our
programs, two ways:

* :func:`knowledge_onset_by_depth` — exhaustive: for each BFS depth ``t``,
  among the states first reached at depth ``t``, how many satisfy
  ``K_i p``?  The "knowledge frontier" of the protocol.
* :func:`time_to_knowledge` — statistical: over randomized fair
  executions, the distribution of the first step at which the process
  knows the fact.

Because knowledge is state-based (the paper's fixed view), both reduce to
membership in the ``K_i p`` predicate; the value added is the *temporal
profile*, which is what protocol designers reason about informally
("when the ack arrives, the sender knows …").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core import KnowledgeOperator
from ..predicates import Predicate
from ..sim import Executor
from ..unity import Program


@dataclass(frozen=True)
class OnsetProfile:
    """Knowledge frontier by BFS depth.

    ``new_states[t]`` — states first reached at depth ``t``;
    ``knowing[t]`` — how many of those satisfy ``K_i p``.
    """

    new_states: Tuple[int, ...]
    knowing: Tuple[int, ...]

    def earliest_onset(self) -> Optional[int]:
        """The first depth at which some state carries the knowledge."""
        for depth, count in enumerate(self.knowing):
            if count:
                return depth
        return None

    def fraction_by_depth(self) -> List[float]:
        """Per-depth fraction of newly reached states that know."""
        return [
            k / n if n else 0.0 for k, n in zip(self.knowing, self.new_states)
        ]


def knowledge_onset_by_depth(
    program: Program,
    process: str,
    fact: Predicate,
    operator: Optional[KnowledgeOperator] = None,
) -> OnsetProfile:
    """BFS the reachable states, recording the knowledge frontier."""
    if operator is None:
        operator = KnowledgeOperator.of_program(program)
    knows = operator.knows(process, fact)
    arrays = [program.successor_array(s) for s in program.statements]
    seen = program.init.mask
    frontier = list(program.init.indices())
    new_counts: List[int] = [len(frontier)]
    know_counts: List[int] = [sum(1 for i in frontier if knows.holds_at(i))]
    while frontier:
        next_frontier: List[int] = []
        for i in frontier:
            for array in arrays:
                j = array[i]
                if not seen >> j & 1:
                    seen |= 1 << j
                    next_frontier.append(j)
        if not next_frontier:
            break
        new_counts.append(len(next_frontier))
        know_counts.append(sum(1 for i in next_frontier if knows.holds_at(i)))
        frontier = next_frontier
    return OnsetProfile(new_states=tuple(new_counts), knowing=tuple(know_counts))


@dataclass(frozen=True)
class TimeToKnowledge:
    """Distribution of the first step at which the process knows the fact."""

    samples: Tuple[int, ...]  # -1 per run that never attained it

    @property
    def attained(self) -> int:
        return sum(1 for s in self.samples if s >= 0)

    @property
    def mean(self) -> float:
        hits = [s for s in self.samples if s >= 0]
        return sum(hits) / len(hits) if hits else float("nan")

    def quantile(self, q: float) -> int:
        hits = sorted(s for s in self.samples if s >= 0)
        if not hits:
            return -1
        index = min(len(hits) - 1, int(q * len(hits)))
        return hits[index]


def time_to_knowledge(
    program: Program,
    process: str,
    fact: Predicate,
    runs: int = 30,
    seed: int = 0,
    max_steps: int = 10_000,
    weights=None,
    operator: Optional[KnowledgeOperator] = None,
) -> TimeToKnowledge:
    """Sample, over randomized fair runs, when ``K_i fact`` first holds."""
    if operator is None:
        operator = KnowledgeOperator.of_program(program)
    knows = operator.knows(process, fact)
    samples: List[int] = []
    for r in range(runs):
        executor = Executor(program, weights=weights, seed=seed + r)
        result = executor.run(knows, max_steps=max_steps)
        samples.append(result.steps if result.reached else -1)
    return TimeToKnowledge(samples=tuple(samples))
