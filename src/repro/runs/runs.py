"""Runs-based operational semantics (the [HM90] view of the same programs).

The paper compares its predicate-transformer definition of knowledge with
the runs-and-points semantics of Halpern and Moses: a *run* is a sequence
of global states, a *point* is a run plus a time, and a process's *view*
at a point is the projection of the current global state onto its
variables.  This module constructs those objects explicitly (bounded
enumeration), which lets the test suite validate, point by point, that

* the states occurring in runs are exactly ``SI`` (eq. 1–5's reachable
  set), and
* view-based knowledge à la [HM90] coincides with the ``K_i`` of eq. (13)
  on reachable states (:mod:`repro.runs.hm_knowledge`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

from ..predicates import Predicate
from ..unity import Program


@dataclass(frozen=True)
class Run:
    """A finite prefix of an execution: states visited and statements taken.

    ``states`` has one more element than ``statements`` (the initial state).
    """

    states: Tuple[int, ...]
    statements: Tuple[str, ...]

    def __post_init__(self):
        if len(self.states) != len(self.statements) + 1:
            raise ValueError("a run has exactly one more state than statements")

    def point(self, time: int) -> "Point":
        """The point of this run at ``time``."""
        return Point(self, time)

    def __len__(self) -> int:
        return len(self.statements)


@dataclass(frozen=True)
class Point:
    """A (run, time) pair — the unit knowledge is evaluated at in [HM90]."""

    run: Run
    time: int

    def __post_init__(self):
        if not 0 <= self.time < len(self.run.states):
            raise ValueError(f"time {self.time} outside run of {len(self.run.states)} states")

    @property
    def state(self) -> int:
        """Index of the current global state."""
        return self.run.states[self.time]

    def history(self) -> Tuple[int, ...]:
        """States visited up to (and including) this time."""
        return self.run.states[: self.time + 1]


def bfs_reachable(program: Program) -> Predicate:
    """The reachable states by explicit breadth-first search.

    Operationally independent of the ``sst`` fixpoint — the test suite
    asserts ``bfs_reachable == strongest_invariant`` on standard programs.
    """
    space = program.space
    arrays = [program.successor_array(s) for s in program.statements]
    seen = program.init.mask
    frontier = list(program.init.indices())
    while frontier:
        new_frontier: List[int] = []
        for i in frontier:
            for array in arrays:
                j = array[i]
                if not seen >> j & 1:
                    seen |= 1 << j
                    new_frontier.append(j)
        frontier = new_frontier
    return Predicate(space, seen)


def generate_runs(
    program: Program, max_depth: int, max_runs: int = 100_000
) -> List[Run]:
    """All runs of length exactly ``max_depth`` (bounded enumeration).

    Every statement choice is explored at each step; ``max_runs`` caps the
    (exponential) enumeration and raises when exceeded, so callers choose
    depths consciously.
    """
    arrays = [(s.name, program.successor_array(s)) for s in program.statements]
    runs: List[Run] = []

    def extend(states: List[int], statements: List[str]) -> None:
        if len(runs) > max_runs:
            raise ValueError(
                f"more than {max_runs} runs at depth {max_depth}; lower the depth"
            )
        if len(statements) == max_depth:
            runs.append(Run(tuple(states), tuple(statements)))
            return
        current = states[-1]
        for name, array in arrays:
            states.append(array[current])
            statements.append(name)
            extend(states, statements)
            states.pop()
            statements.pop()

    for start in program.init.indices():
        extend([start], [])
    return runs


def reachable_points(
    program: Program, max_depth: int, max_runs: int = 100_000
) -> List[Point]:
    """Every point of every run up to ``max_depth``."""
    points: List[Point] = []
    for run in generate_runs(program, max_depth, max_runs):
        for time in range(len(run.states)):
            points.append(run.point(time))
    return points


def states_in_runs(runs: Sequence[Run]) -> Set[int]:
    """All state indices occurring in the given runs."""
    out: Set[int] = set()
    for run in runs:
        out.update(run.states)
    return out


def diameter(program: Program) -> int:
    """Number of BFS levels needed to exhaust the reachable set.

    Runs of this depth visit every reachable state; useful to pick
    ``max_depth`` for exact comparisons.
    """
    arrays = [program.successor_array(s) for s in program.statements]
    seen = program.init.mask
    frontier = list(program.init.indices())
    levels = 0
    while frontier:
        new_frontier: List[int] = []
        for i in frontier:
            for array in arrays:
                j = array[i]
                if not seen >> j & 1:
                    seen |= 1 << j
                    new_frontier.append(j)
        if new_frontier:
            levels += 1
        frontier = new_frontier
    return levels
