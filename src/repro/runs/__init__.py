"""Runs, points, views, and Halpern–Moses knowledge (for cross-validation)."""

from .learning import (
    OnsetProfile,
    TimeToKnowledge,
    knowledge_onset_by_depth,
    time_to_knowledge,
)
from .hm_knowledge import (
    agreement_with_transformer,
    history_strictly_stronger,
    history_view_of,
    hm_knows,
    hm_knows_with_history,
    view_of,
)
from .runs import (
    Point,
    Run,
    bfs_reachable,
    diameter,
    generate_runs,
    reachable_points,
    states_in_runs,
)

__all__ = [
    "OnsetProfile",
    "TimeToKnowledge",
    "knowledge_onset_by_depth",
    "time_to_knowledge",
    "agreement_with_transformer",
    "history_strictly_stronger",
    "history_view_of",
    "hm_knows",
    "hm_knows_with_history",
    "view_of",
    "Point",
    "Run",
    "bfs_reachable",
    "diameter",
    "generate_runs",
    "reachable_points",
    "states_in_runs",
]
