"""A bounded memo for predicate-transformer applications.

``sp``/``wp`` of a fixed statement are pure functions of the input
predicate, and the proof machinery applies them to the *same* predicates
over and over: the model checker's nested fixpoints re-query
``wp.b.(X ∨ Z)`` for every candidate helper, the KBP solver probes ``Φ``
at recurring candidates, and ``wp_all_statements`` shares each statement's
result with per-statement call sites.

Keys are ``(kind, statement name, predicate fingerprint)`` —
:meth:`Predicate.fingerprint` is canonical across backends, so a cache
warmed under one backend is still correct (never *wrong*, merely cold)
under another.  The store is a simple LRU so long solver runs cannot grow
it without bound.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from .predicate import Predicate


class TransformerCache:
    """LRU memo of ``transformer(predicate) -> predicate`` applications."""

    __slots__ = ("maxsize", "hits", "misses", "evictions", "_store")

    def __init__(self, maxsize: int = 4096):
        if maxsize <= 0:
            raise ValueError("TransformerCache needs a positive maxsize")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._store: "OrderedDict[Tuple[str, str, bytes], Predicate]" = OrderedDict()

    def lookup(self, kind: str, name: str, p: Predicate) -> Optional[Predicate]:
        """The cached result of ``kind`` (e.g. ``"sp"``) of ``name`` at ``p``."""
        key = (kind, name, p.fingerprint())
        found = self._store.get(key)
        if found is None:
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return found

    def store(self, kind: str, name: str, p: Predicate, result: Predicate) -> None:
        """Record ``result`` as ``kind`` of ``name`` applied to ``p``."""
        key = (kind, name, p.fingerprint())
        self._store[key] = result
        self._store.move_to_end(key)
        while len(self._store) > self.maxsize:
            self._store.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._store)

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction/size counters (surfaced by the benchmarks)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._store),
        }

    def __repr__(self) -> str:
        return (
            f"TransformerCache({len(self._store)}/{self.maxsize} entries, "
            f"{self.hits} hits, {self.misses} misses, {self.evictions} evictions)"
        )
