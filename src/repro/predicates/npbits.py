"""Bitmask ↔ numpy bridges for the performance-critical inner loops.

Predicates are canonically Python-int bitmasks (exact, hashable, cheap
Boolean algebra).  The model checker and the from-text proof rules,
however, need *per-state* operations composed with successor arrays —
pure-Python loops over hundreds of thousands of states.  These helpers
convert masks to/from numpy bool arrays so those loops vectorize; they are
internal (results are always converted back to exact masks).
"""

from __future__ import annotations

import numpy as np


def mask_to_array(mask: int, size: int) -> "np.ndarray":
    """The bitmask as a bool array of length ``size`` (bit i → index i)."""
    raw = mask.to_bytes((size + 7) // 8, "little")
    bits = np.unpackbits(np.frombuffer(raw, dtype=np.uint8), bitorder="little")
    return bits[:size].astype(bool)


def array_to_mask(array: "np.ndarray") -> int:
    """Inverse of :func:`mask_to_array`."""
    packed = np.packbits(array.astype(np.uint8), bitorder="little")
    return int.from_bytes(packed.tobytes(), "little")
