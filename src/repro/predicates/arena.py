"""Shared-memory predicate arenas: zero-copy Φ-plan dispatch.

The sharded eq.-(25) solver used to ship its compiled
:class:`~repro.predicates.backends.batch.PhiPlan` to every worker by
value — the program pickled through initargs, then each worker re-ran
``compile_phi_plan`` (O(size) Python evals per statement) and converted
every successor array and static mask into backend form again.  An arena
moves all of that *solve-wide immutable state* into one
``multiprocessing.shared_memory`` segment, written once by the parent:

========  ============================================================
block     contents
========  ============================================================
statics   ``n_statics × n_words`` uint64 — every distinct constant
          bitset the plan references (init, knowledge-term bodies,
          poison sets, static guard leaves), interned by mask
succ      ``n_statements × size`` int64 — unguarded successor arrays
groups    ``n_group_tables × size`` int64 — cylinder ``group_of``
          partitions, deduplicated by variable tuple
========  ============================================================

Workers receive only an :class:`ArenaSpec` — a few hundred bytes naming
the segment and indexing its blocks — attach by name, and evaluate
``batch_phi`` through an :class:`ArenaPlan`: a duck-typed stand-in for
``PhiPlan`` whose handles are **read-only views over the mapping** (the
numpy backend aliases the segment directly; the exact int backend
necessarily copies through Python ints, which is its representation, not
a dispatch cost).

Crash-cleanup invariants (DESIGN.md §14):

* the **creator owns the segment**: it stays registered with its own
  ``resource_tracker``, so even a SIGKILLed parent gets the segment
  unlinked when the tracker reaps; orderly solves unlink in a
  ``finally``;
* **attachers never adopt ownership**: :func:`attach_segment`
  unregisters the attach-side tracker entry (``track=False`` on
  3.13+), otherwise the first worker to exit — including every pool
  respawn — would unlink the arena out from under the live solve;
* segment names embed the creating PID, so :func:`sweep_stale_segments`
  can reap leftovers whose creator is gone (e.g. a SIGKILLed solve on a
  platform without tracker coverage) without ever touching a live
  solve's arena.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "ArenaPlan",
    "ArenaSpec",
    "SolveArena",
    "attach_segment",
    "list_segments",
    "sweep_stale_segments",
]

#: Arena segment name prefix.  Kept short: POSIX shm names share a ~31-char
#: ceiling on some platforms (macOS), and the full name is
#: ``rpa-<digest12>-<pid>-<seq>``.
SEGMENT_PREFIX = "rpa-"

#: Where POSIX shared memory surfaces as files (Linux).  Segment listing —
#: a test/hygiene concern — degrades to empty elsewhere.
_SHM_DIR = "/dev/shm"

_sequence = [0]


def _segment_name(digest: str) -> str:
    _sequence[0] += 1
    return f"{SEGMENT_PREFIX}{digest[:12]}-{os.getpid()}-{_sequence[0]}"


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment *without* adopting cleanup duty.

    ``SharedMemory(name=...)`` registers the segment with the attaching
    process's resource tracker; when any attacher exits, its tracker
    unlinks the segment — under the feet of every other process.  Python
    3.13 grew ``track=False`` for exactly this; on earlier interpreters
    the registration is reverted by hand.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pre-3.13: no track parameter
        # Suppressing registration beats register-then-unregister: fork and
        # spawn children share the parent's tracker *process*, so an
        # unregister sent from a worker would delete the creator's entry
        # and forfeit the SIGKILL cleanup the creator is counting on.
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def list_segments(prefix: str = SEGMENT_PREFIX) -> List[str]:
    """Names of live arena segments (empty where /dev/shm is absent)."""
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:
        return []
    return sorted(name for name in entries if name.startswith(prefix))


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # exists, owned by someone else
        return True
    except OSError:
        return True
    return True


def sweep_stale_segments(prefix: str = SEGMENT_PREFIX) -> List[str]:
    """Unlink arena segments whose creating process is dead.

    The belt to the resource tracker's braces: a solve killed hard enough
    to lose its tracker leaves a named segment behind, and the *next*
    solve reaps it here (names embed the creator PID).  Live creators —
    this process included — are never touched, so concurrent solves
    cannot sweep each other.
    """
    removed: List[str] = []
    for name in list_segments(prefix):
        parts = name.split("-")
        if len(parts) < 3:
            continue
        try:
            pid = int(parts[-2])
        except ValueError:
            continue
        if pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            segment = attach_segment(name)
        except FileNotFoundError:
            continue
        # The dead creator's tracker (not ours) held this entry; a normal
        # unlink would send our tracker an unregister for a name it never
        # saw and spill a KeyError traceback on stderr.
        original = resource_tracker.unregister
        resource_tracker.unregister = lambda *args, **kwargs: None
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - lost a reap race
            pass
        finally:
            resource_tracker.unregister = original
        segment.close()
        removed.append(name)
    return removed


# ----------------------------------------------------------------------
# the picklable descriptor
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ArenaTerm:
    """One knowledge term: arena coordinates of its body and partition."""

    body_slot: int
    variables: Tuple[str, ...]
    group_index: int
    n_groups: int


@dataclass(frozen=True)
class ArenaStatement:
    """One statement: its successor row plus guard/poison coordinates.

    ``guard`` is the compiled postfix program with every ``("static",
    mask)`` leaf rewritten to ``("static", slot)`` — inside an arena the
    opaque static key is a slot index, not a mask.
    """

    name: str
    guard: Optional[Tuple[Tuple[Any, ...], ...]]
    poison_slot: Optional[int]


@dataclass(frozen=True)
class ArenaSpec:
    """Everything a worker needs to rebuild a Φ plan from a segment name.

    This is the *only* plan state that crosses the process boundary —
    a few hundred bytes of names and indices, independent of state-space
    size.  ``program`` records the solve's program digest for diagnostics
    and cross-checks; the layout fields locate the three blocks.
    """

    segment: str
    program: str
    size: int
    n_words: int
    n_statics: int
    init_slot: int
    statements: Tuple[ArenaStatement, ...]
    terms: Tuple[ArenaTerm, ...]
    n_group_tables: int

    @property
    def statics_bytes(self) -> int:
        return self.n_statics * self.n_words * 8

    @property
    def succ_bytes(self) -> int:
        return len(self.statements) * self.size * 8

    @property
    def groups_bytes(self) -> int:
        return self.n_group_tables * self.size * 8

    @property
    def total_bytes(self) -> int:
        return self.statics_bytes + self.succ_bytes + self.groups_bytes

    def attach(self, space) -> "ArenaPlan":
        """Map the segment and wrap it as a plan (worker side)."""
        return ArenaPlan(self, space, attach_segment(self.segment))

    def try_attach(self, space) -> Optional["ArenaPlan"]:
        """:meth:`attach`, or ``None`` when the segment does not resolve.

        The remote-worker fallback path: a socket worker on another host
        (or one that outlived the creating solve) cannot map the parent's
        segment by name — it answers ``None`` here and asks the
        coordinator to ship the full plan payload instead.
        """
        try:
            return self.attach(space)
        except FileNotFoundError:
            return None


# ----------------------------------------------------------------------
# the attached plan
# ----------------------------------------------------------------------


class ArenaPlan:
    """A ``PhiPlan``-shaped view over an attached arena segment.

    Implements the plan interface ``batch_phi``/``phi_of_mask`` evaluate
    against — ``init_handle``, ``term_body``, ``group_table``,
    ``poison_handle``, ``succ_table``, ``static_handle`` — with handles
    built lazily (memoized per backend) from read-only views over the
    shared mapping.  The numpy backend's handles alias the segment with
    zero copies; writes through them raise.
    """

    def __init__(self, spec: ArenaSpec, space, segment) -> None:
        if space.size != spec.size:
            raise ValueError(
                f"arena was built over {spec.size} states; space has "
                f"{space.size}"
            )
        self.spec = spec
        self.space = space
        self.segment = segment
        self.statements = spec.statements
        self.terms = spec.terms
        self._statics: Dict[Tuple[str, int], Any] = {}
        self._tables: Dict[Tuple[str, int], Any] = {}
        self._groups: Dict[Tuple[str, int], Any] = {}

    # -- raw views ---------------------------------------------------------

    def _static_view(self, slot: int) -> memoryview:
        width = self.spec.n_words * 8
        offset = slot * width
        return memoryview(self.segment.buf)[offset : offset + width].toreadonly()

    def _int64_view(self, offset: int) -> "np.ndarray":
        arr = np.frombuffer(
            self.segment.buf, dtype="<i8", count=self.spec.size, offset=offset
        )
        if arr.flags.writeable:  # frombuffer of a writable buf
            arr.setflags(write=False)
        return arr

    def succ_array(self, index: int) -> "np.ndarray":
        """Statement ``index``'s successor row (read-only int64 view)."""
        return self._int64_view(
            self.spec.statics_bytes + index * self.spec.size * 8
        )

    def group_array(self, group_index: int) -> "np.ndarray":
        """Cylinder partition ``group_index`` (read-only int64 view)."""
        return self._int64_view(
            self.spec.statics_bytes
            + self.spec.succ_bytes
            + group_index * self.spec.size * 8
        )

    # -- the plan interface ------------------------------------------------

    def static_handle(self, backend, slot: int) -> Any:
        key = (backend.name, slot)
        handle = self._statics.get(key)
        if handle is None:
            handle = backend.from_buffer_in(self.space, self._static_view(slot))
            self._statics[key] = handle
        return handle

    def init_handle(self, backend) -> Any:
        return self.static_handle(backend, self.spec.init_slot)

    def term_body(self, backend, index: int) -> Any:
        return self.static_handle(backend, self.terms[index].body_slot)

    def poison_handle(self, backend, index: int) -> Optional[Any]:
        slot = self.statements[index].poison_slot
        if slot is None:
            return None
        return self.static_handle(backend, slot)

    def succ_table(self, backend, index: int) -> Any:
        key = (backend.name, index)
        table = self._tables.get(key)
        if table is None:
            table = backend.table_from_array_in(self.space, self.succ_array(index))
            self._tables[key] = table
        return table

    def group_table(self, backend, index: int) -> Any:
        term = self.terms[index]
        key = (backend.name, term.group_index)
        table = self._groups.get(key)
        if table is None:
            try:
                table = backend.group_table_from_array(
                    self.group_array(term.group_index),
                    term.n_groups,
                    self.spec.size,
                )
            except NotImplementedError:
                # Backends with a name-derived group form (int's big-int
                # group masks, robdd's level sets) rebuild from the space.
                table = backend.group_table(self.space, term.variables)
            self._groups[key] = table
        return table

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Drop cached views and unmap (never unlink) the segment.

        With live numpy views still referencing the mapping the close is
        refused by the buffer protocol; the mapping then simply lives
        until the process exits, which is exactly as long as those views
        can be dereferenced.
        """
        self._statics.clear()
        self._tables.clear()
        self._groups.clear()
        try:
            self.segment.close()
        except BufferError:  # exported views outlive us; the OS reaps
            pass


# ----------------------------------------------------------------------
# the parent-side builder
# ----------------------------------------------------------------------


class SolveArena:
    """Parent-side owner of one solve's arena segment.

    Built once per solve from the compiled plan; :meth:`close` unlinks.
    The parent also evaluates through :attr:`plan` on its serial paths so
    in-process and pooled sweeps share one copy of the statics.
    """

    def __init__(self, spec: ArenaSpec, segment) -> None:
        self.spec = spec
        self.segment = segment

    @classmethod
    def build(cls, plan, program_digest: str) -> "SolveArena":
        """Write ``plan``'s shared state into a fresh segment.

        ``plan`` is a locally compiled
        :class:`~repro.predicates.backends.batch.PhiPlan`; the arena
        interns every distinct static mask once (init, bodies, poisons,
        guard leaves) and deduplicates group tables by variable tuple.
        Also reaps stale segments from dead creators first — the cheap
        moment to do it, and exactly when leaked memory would hurt.
        """
        sweep_stale_segments()
        space = plan.space
        size = space.size
        n_words = (size + 63) >> 6

        slots: Dict[int, int] = {}

        def intern(mask: int) -> int:
            slot = slots.get(mask)
            if slot is None:
                slot = len(slots)
                slots[mask] = slot
            return slot

        init_slot = intern(plan.init_mask)

        group_keys: Dict[Tuple[str, ...], int] = {}
        group_tables: List[Tuple["np.ndarray", int]] = []
        terms: List[ArenaTerm] = []
        for term in plan.terms:
            body_slot = intern(term.body_mask)
            group_index = group_keys.get(term.variables)
            if group_index is None:
                group_of, n_groups = space.cylinder_partition_np(term.variables)
                group_index = len(group_tables)
                group_keys[term.variables] = group_index
                group_tables.append(
                    (np.asarray(group_of, dtype=np.int64), int(n_groups))
                )
            terms.append(
                ArenaTerm(
                    body_slot=body_slot,
                    variables=term.variables,
                    group_index=group_index,
                    n_groups=group_tables[group_index][1],
                )
            )

        statements: List[ArenaStatement] = []
        for stmt in plan.statements:
            guard = None
            poison_slot = None
            if stmt.guard is not None:
                guard = tuple(
                    ("static", intern(op[1])) if op[0] == "static" else op
                    for op in stmt.guard
                )
                if stmt.poison_mask:
                    poison_slot = intern(stmt.poison_mask)
            statements.append(
                ArenaStatement(
                    name=stmt.name, guard=guard, poison_slot=poison_slot
                )
            )

        spec = ArenaSpec(
            segment="",  # placeholder; frozen dataclass rebuilt below
            program=program_digest,
            size=size,
            n_words=n_words,
            n_statics=len(slots),
            init_slot=init_slot,
            statements=tuple(statements),
            terms=tuple(terms),
            n_group_tables=len(group_tables),
        )
        segment = shared_memory.SharedMemory(
            name=_segment_name(program_digest),
            create=True,
            size=max(1, spec.total_bytes),
        )
        try:
            _write_blocks(segment, spec, slots, plan.statements, group_tables)
        except BaseException:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - stray views
                pass
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            raise
        return cls(replace(spec, segment=segment.name), segment)

    def plan(self, space) -> ArenaPlan:
        """An attached plan over this arena for the parent's own use."""
        return ArenaPlan(self.spec, space, self.segment)

    @property
    def nbytes(self) -> int:
        return self.segment.size

    def close(self, unlink: bool = True) -> None:
        """Unmap and (by default) unlink the segment; idempotent."""
        try:
            self.segment.close()
        except BufferError:  # pragma: no cover - parent-held views linger
            pass
        if unlink:
            try:
                self.segment.unlink()
            except FileNotFoundError:
                pass


def _write_blocks(segment, spec: ArenaSpec, slots, plan_statements, group_tables):
    """Fill the three arena blocks.

    Isolated so every view over the mapping is function-local and released
    on return — ``SharedMemory.close`` refuses while exported views live.
    """
    buf = segment.buf
    width = spec.n_words * 8
    size = spec.size
    for mask, slot in slots.items():
        offset = slot * width
        buf[offset : offset + width] = mask.to_bytes(width, "little")
    for index, stmt_plan in enumerate(plan_statements):
        row = np.frombuffer(
            buf, dtype="<i8", count=size,
            offset=spec.statics_bytes + index * size * 8,
        )
        row[:] = np.asarray(stmt_plan.succ, dtype=np.int64)
    for group_index, (group_of, _n) in enumerate(group_tables):
        row = np.frombuffer(
            buf, dtype="<i8", count=size,
            offset=spec.statics_bytes + spec.succ_bytes + group_index * size * 8,
        )
        row[:] = group_of
