"""One configurable home for every "this space is too big" limit.

Three different ceilings used to live as scattered module constants, each
guarding a different cost model:

* **explicit materialization** — anything O(#states): successor arrays,
  int-mask round-trips, ``Predicate.from_callable`` sweeps.  The symbolic
  (ROBDD) backend is exempt: it never enumerates states, so the guards
  consult the backend's ``symbolic`` capability flag before refusing.
* **candidate sweeps** — the eq.-(25) exhaustive SI search enumerates
  ``2^(free states)`` candidates (``repro.core.kbp``); this was
  ``MAX_EXHAUSTIVE_STATES = 28`` there.
* **predicate enumeration** — junctivity analysis enumerates *all* ``2^n``
  predicates over the space (``repro.transformers.junctivity``); this was
  an unrelated constant that happened to share the same name (= 16).

Each limit is overridable by environment variable (read once, on first
use) or programmatically (:func:`set_limit`), and every guard message
names the escape hatches: the symbolic backend, the incomplete/sampled
alternatives, and the override knob itself.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

__all__ = [
    "DEFAULT_LIMITS",
    "ExplicitStateLimitError",
    "check_enumeration_size",
    "check_explicit_size",
    "check_solver_size",
    "get_limit",
    "set_limit",
]


class ExplicitStateLimitError(ValueError):
    """An operation would enumerate more explicit state than the limit allows."""


#: limit name -> (environment variable, default value)
DEFAULT_LIMITS = {
    # O(#states) materialization: successor arrays, int masks, per-state sweeps.
    "explicit": ("REPRO_MAX_EXPLICIT_STATES", 1 << 22),
    # Exhaustive eq.-(25) candidate sweeps: 2^(free states) candidates.
    "solver": ("REPRO_MAX_SOLVER_STATES", 28),
    # Exhaustive predicate enumeration: 2^(#states) predicates.
    "enumeration": ("REPRO_MAX_ENUMERATION_STATES", 16),
}

_values: Dict[str, Optional[int]] = {name: None for name in DEFAULT_LIMITS}


def get_limit(name: str) -> int:
    """The current value of a limit (``"explicit"``, ``"solver"``, ``"enumeration"``)."""
    try:
        env_var, default = DEFAULT_LIMITS[name]
    except KeyError:
        raise KeyError(
            f"unknown limit {name!r} (have {sorted(DEFAULT_LIMITS)})"
        ) from None
    value = _values[name]
    if value is None:
        raw = os.environ.get(env_var)
        if raw is None:
            value = default
        else:
            try:
                value = int(raw)
            except ValueError:
                raise ValueError(
                    f"{env_var}={raw!r} is not an integer state limit"
                ) from None
        _values[name] = value
    return value


def set_limit(name: str, value: Optional[int]) -> Optional[int]:
    """Set a limit programmatically; returns the previous setting.

    ``None`` re-reads the environment variable on next use (test teardown).
    """
    if name not in DEFAULT_LIMITS:
        raise KeyError(f"unknown limit {name!r} (have {sorted(DEFAULT_LIMITS)})")
    if value is not None and value < 1:
        raise ValueError(f"limit {name!r} must be positive, got {value}")
    previous = _values[name]
    _values[name] = value
    return previous


def check_explicit_size(size: int, operation: str) -> None:
    """Refuse an O(#states) operation beyond the ``explicit`` limit.

    Callers on a symbolic route (ROBDD handles end to end) must *not* call
    this — the whole point of the symbolic backend is that these guards
    never fire for it.
    """
    limit = get_limit("explicit")
    if size > limit:
        raise ExplicitStateLimitError(
            f"{operation} would enumerate {size} explicit states "
            f"(limit {limit}); escape hatches: select the symbolic backend "
            "(REPRO_PREDICATE_BACKEND=robdd or set_default_backend('robdd')) "
            "which never materializes states, or raise "
            "REPRO_MAX_EXPLICIT_STATES / set_limit('explicit', ...)"
        )


def check_solver_size(size: int, symbolic_ok: bool = False) -> None:
    """Refuse an exhaustive eq.-(25) candidate sweep beyond the ``solver`` limit.

    ``symbolic_ok=True`` records that the caller has a symbolic pruning
    route available (the cube solver); the guard still fires — the *caller*
    decides to take the symbolic route instead of calling this.
    """
    limit = get_limit("solver")
    if size > limit:
        hatches = (
            "escape hatches: solve_si(method='cubes') with the symbolic "
            "backend (REPRO_PREDICATE_BACKEND=robdd) prunes whole candidate "
            "cubes at once, solve_si_iterative runs an incomplete Kleene "
            "probe, or raise REPRO_MAX_SOLVER_STATES / set_limit('solver', ...)"
            " — the limit applies even to the sharded solver in "
            "repro.core.parallel"
        )
        kind = "symbolic-capable " if symbolic_ok else ""
        raise ExplicitStateLimitError(
            f"state space of {size} states is too large for an exhaustive "
            f"{kind}SI candidate sweep (2^free candidates; limit {limit}); "
            + hatches
        )


def check_enumeration_size(size: int) -> None:
    """Refuse exhaustive 2^n predicate enumeration beyond the ``enumeration`` limit."""
    limit = get_limit("enumeration")
    if size > limit:
        raise ExplicitStateLimitError(
            f"refusing exhaustive enumeration of 2^{size} predicates "
            f"(limit {limit} states); escape hatches: the sampled junctivity "
            "checks (samples=...) cover larger spaces probabilistically, or "
            "raise REPRO_MAX_ENUMERATION_STATES / set_limit('enumeration', ...)"
        )
