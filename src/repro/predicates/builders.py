"""Convenience constructors for predicates over named variables.

These build the "ground facts" of the paper — arbitrary predicates on the
state space — from variable comparisons without writing explicit callables.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Iterable

from ..statespace import State, StateSpace
from .predicate import Predicate

_OPS: dict = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def pred(space: StateSpace, fn: Callable[[State], Any]) -> Predicate:
    """Lift a function on states to a predicate (alias of ``Predicate.from_callable``)."""
    return Predicate.from_callable(space, fn)


def var_eq(space: StateSpace, name: str, value: Any) -> Predicate:
    """The predicate ``name == value``.

    Computed arithmetically from the mixed-radix layout (no per-state
    callable), so it is fast even on large spaces.
    """
    k = space.position(name)
    var = space.variables[k]
    digit = var.domain.index(value)
    stride = space._strides[k]
    radix = space._radix[k]
    # Bit pattern: blocks of `stride` ones at offset digit*stride, repeating
    # every radix*stride bits.
    block = (1 << stride) - 1
    period = radix * stride
    mask = 0
    offset = digit * stride
    while offset < space.size:
        mask |= block << offset
        offset += period
    return Predicate(space, mask)


def var_in(space: StateSpace, name: str, values: Iterable[Any]) -> Predicate:
    """The predicate ``name ∈ values``."""
    result = Predicate.false(space)
    for value in values:
        result = result | var_eq(space, name, value)
    return result


def var_cmp(space: StateSpace, name: str, op: str, value: Any) -> Predicate:
    """The predicate ``name <op> value`` for ``op`` in ``== != < <= > >=``."""
    if op == "==":
        return var_eq(space, name, value)
    try:
        fn = _OPS[op]
    except KeyError:
        raise ValueError(f"unknown comparison operator {op!r}") from None
    domain = space.var(name).domain
    return var_in(space, name, (v for v in domain.values if fn(v, value)))


def var_true(space: StateSpace, name: str) -> Predicate:
    """The predicate ``name`` for a Boolean variable."""
    return var_eq(space, name, True)


def vars_cmp(space: StateSpace, left: str, op: str, right: str) -> Predicate:
    """The predicate ``left <op> right`` comparing two variables."""
    try:
        fn = _OPS[op]
    except KeyError:
        raise ValueError(f"unknown comparison operator {op!r}") from None
    return Predicate.from_callable(space, lambda s: fn(s[left], s[right]))
