"""The ``PredicateBackend`` protocol: the kernels every representation owns.

A predicate over a finite space is semantically a subset of state indices.
How that subset is *represented* — an exact Python-int bitmask, a packed
numpy ``uint64`` word array, in the future a BDD or a shard of a
distributed bitset — is a backend decision.  Every hot set operation the
paper's machinery needs bottoms out in the small kernel vocabulary below:

========================  =====================================================
kernel                    used by
========================  =====================================================
``image``                 ``sp`` (eq. 26) — image of a set under a successor map
``preimage``              ``wp``/``wlp``, the model checker's backward passes
``quantify_groups``       ``wcyl``/``scyl`` (eq. 6) — ∀/∃ over cylinder groups
``constant_on_groups``    ``depends_only_on`` (eq. 9)
``popcount``/``equal``    fixpoint convergence, reporting
boolean algebra           the predicate calculus itself
========================  =====================================================

Backends operate on opaque *handles*.  A handle is whatever the backend
finds fastest (the int backend's handle *is* the mask; the numpy backend's
is a packed word array); :class:`~repro.predicates.predicate.Predicate`
caches one handle per instance so a fixpoint chain stays in backend form
end to end instead of round-tripping through Python ints per call.

All kernels receive ``size`` (the number of states) because handles do not
necessarily record it.  Backends must keep any bits beyond ``size`` zero so
that fingerprints are canonical across backends.
"""

from __future__ import annotations

from typing import Any, List, Tuple


class PredicateBackend:
    """Abstract base for predicate representations (see module docstring).

    Subclasses set ``name`` (the registry key) and ``keeps_handles``
    (whether results should stay in handle form on the ``Predicate``
    rather than being materialized to int masks eagerly).
    """

    name: str = "abstract"
    #: Whether Predicate results should carry the handle lazily (True for
    #: array backends, False when the handle *is* the exact mask).
    keeps_handles: bool = False

    # ------------------------------------------------------------------
    # handle conversion
    # ------------------------------------------------------------------

    def from_mask(self, mask: int, size: int) -> Any:
        raise NotImplementedError

    def to_mask(self, handle: Any, size: int) -> int:
        raise NotImplementedError

    def fingerprint(self, handle: Any, size: int) -> bytes:
        """Canonical little-endian bytes of the bitset, ``(size+7)//8`` long.

        Equal predicates must fingerprint identically *across* backends —
        this is what keys the transformer and solver caches.
        """
        raise NotImplementedError

    def wrap(self, space, handle) -> "Any":
        """A :class:`Predicate` over ``space`` holding ``handle``."""
        from ..predicate import Predicate

        if self.keeps_handles:
            return Predicate._from_handle(space, self, handle)
        return Predicate(space, handle)

    # ------------------------------------------------------------------
    # boolean algebra on handles
    # ------------------------------------------------------------------

    def and_(self, a: Any, b: Any, size: int) -> Any:
        raise NotImplementedError

    def or_(self, a: Any, b: Any, size: int) -> Any:
        raise NotImplementedError

    def xor(self, a: Any, b: Any, size: int) -> Any:
        raise NotImplementedError

    def not_(self, a: Any, size: int) -> Any:
        raise NotImplementedError

    def diff(self, a: Any, b: Any, size: int) -> Any:
        """``a ∧ ¬b``."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def popcount(self, handle: Any, size: int) -> int:
        raise NotImplementedError

    def equal(self, a: Any, b: Any, size: int) -> bool:
        raise NotImplementedError

    def is_false(self, handle: Any, size: int) -> bool:
        raise NotImplementedError

    def is_full(self, handle: Any, size: int) -> bool:
        raise NotImplementedError

    def test_bit(self, handle: Any, index: int) -> bool:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # relational kernels (successor tables)
    # ------------------------------------------------------------------

    def build_table(self, program, stmt) -> Any:
        """The backend's preferred representation of ``stmt``'s successor map.

        Cached per (backend, statement) by ``Program.kernel_table``.
        """
        raise NotImplementedError

    def image(self, handle: Any, table: Any, size: int) -> Any:
        """``{succ[i] : i ∈ handle}`` — the ``sp`` kernel."""
        raise NotImplementedError

    def preimage(self, handle: Any, table: Any, size: int) -> Any:
        """``{i : succ[i] ∈ handle}`` — the ``wp`` kernel."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # cylinder kernels (group tables)
    # ------------------------------------------------------------------

    def group_table(self, space, names) -> Any:
        """The backend's representation of ``space.cylinder_partition(names)``."""
        raise NotImplementedError

    def quantify_groups(
        self, handle: Any, table: Any, size: int, universal: bool
    ) -> Any:
        """∀ (``universal``) or ∃ over each cylinder group, broadcast back.

        ``universal=True`` is ``wcyl`` (a state survives iff the predicate
        holds at *every* group member); ``False`` is ``scyl`` (*some*).
        """
        raise NotImplementedError

    def constant_on_groups(self, handle: Any, table: Any, size: int) -> bool:
        """Whether the predicate is constant on every cylinder group."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
