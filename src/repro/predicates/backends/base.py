"""The ``PredicateBackend`` protocol: the kernels every representation owns.

A predicate over a finite space is semantically a subset of state indices.
How that subset is *represented* — an exact Python-int bitmask, a packed
numpy ``uint64`` word array, in the future a BDD or a shard of a
distributed bitset — is a backend decision.  Every hot set operation the
paper's machinery needs bottoms out in the small kernel vocabulary below:

========================  =====================================================
kernel                    used by
========================  =====================================================
``image``                 ``sp`` (eq. 26) — image of a set under a successor map
``preimage``              ``wp``/``wlp``, the model checker's backward passes
``quantify_groups``       ``wcyl``/``scyl`` (eq. 6) — ∀/∃ over cylinder groups
``constant_on_groups``    ``depends_only_on`` (eq. 9)
``popcount``/``equal``    fixpoint convergence, reporting
boolean algebra           the predicate calculus itself
========================  =====================================================

Backends operate on opaque *handles*.  A handle is whatever the backend
finds fastest (the int backend's handle *is* the mask; the numpy backend's
is a packed word array); :class:`~repro.predicates.predicate.Predicate`
caches one handle per instance so a fixpoint chain stays in backend form
end to end instead of round-tripping through Python ints per call.

All kernels receive ``size`` (the number of states) because handles do not
necessarily record it.  Backends must keep any bits beyond ``size`` zero so
that fingerprints are canonical across backends.
"""

from __future__ import annotations

from typing import Any, List, Tuple


class PredicateBackend:
    """Abstract base for predicate representations (see module docstring).

    Subclasses set ``name`` (the registry key) and ``keeps_handles``
    (whether results should stay in handle form on the ``Predicate``
    rather than being materialized to int masks eagerly).
    """

    name: str = "abstract"
    #: Whether Predicate results should carry the handle lazily (True for
    #: array backends, False when the handle *is* the exact mask).
    keeps_handles: bool = False
    #: Capability flags.  ``symbolic`` backends represent sets by structure
    #: (BDD nodes) and never enumerate states — guards that refuse huge
    #: explicit spaces must not fire for them.  ``enumerable`` backends can
    #: materialize exact int masks / iterate member indices in O(#states).
    symbolic: bool = False
    enumerable: bool = True

    # ------------------------------------------------------------------
    # handle conversion
    # ------------------------------------------------------------------

    def from_mask(self, mask: int, size: int) -> Any:
        raise NotImplementedError

    def from_mask_in(self, space, mask: int) -> Any:
        """Handle for ``mask`` over ``space``.

        Explicit backends only need ``size`` and delegate to
        :meth:`from_mask`; symbolic backends override — their encoding is
        derived from the space's variable structure, not a flat index range.
        """
        return self.from_mask(mask, space.size)

    def to_mask(self, handle: Any, size: int) -> int:
        raise NotImplementedError

    def fingerprint(self, handle: Any, size: int) -> bytes:
        """Canonical little-endian bytes of the bitset, ``(size+7)//8`` long.

        Equal predicates must fingerprint identically *across* backends —
        this is what keys the transformer and solver caches.
        """
        raise NotImplementedError

    def wrap(self, space, handle) -> "Any":
        """A :class:`Predicate` over ``space`` holding ``handle``."""
        from ..predicate import Predicate

        if self.keeps_handles:
            return Predicate._from_handle(space, self, handle)
        return Predicate(space, handle)

    def constant(self, space, value: bool) -> Any:
        """The ``true``/``false`` handle over ``space``."""
        mask = (1 << space.size) - 1 if value else 0
        return self.from_mask_in(space, mask)

    def single(self, space, index: int) -> Any:
        """The handle holding exactly at state ``index``."""
        return self.from_mask_in(space, 1 << index)

    def some_index(self, handle: Any, size: int):
        """Index of some satisfying state (the least one), or ``None``.

        Symbolic backends override with a minimal-satisfying-path walk;
        the default round-trips through the mask.
        """
        m = self.to_mask(handle, size)
        if m == 0:
            return None
        return (m & -m).bit_length() - 1

    # ------------------------------------------------------------------
    # buffer protocol (zero-copy dispatch)
    # ------------------------------------------------------------------

    def words_view(self, handle: Any, size: int) -> memoryview:
        """The bitset as a read-only little-endian uint64-word buffer.

        Always ``(size + 63) // 64 * 8`` bytes, bit ``i`` of the buffer
        (little-endian within each word) holding state ``i``; the layout is
        backend-independent, so one backend can reconstruct another's
        export via :meth:`from_buffer`.  Word-array backends return an
        actual view over their storage (no copy); the default materializes
        through the mask.
        """
        n_words = (size + 63) >> 6
        raw = self.to_mask(handle, size).to_bytes(n_words * 8, "little")
        return memoryview(raw)

    def from_buffer(self, buf, size: int) -> Any:
        """A handle over an exported words buffer (see :meth:`words_view`).

        Word-array backends wrap the buffer without copying — the caller
        keeps the buffer alive (e.g. an attached shared-memory segment)
        and the resulting handle is read-only.  The default copies through
        an int mask, which is what exactness requires of backends whose
        handles are not word arrays.
        """
        n_words = (size + 63) >> 6
        view = memoryview(buf)
        if view.nbytes != n_words * 8:
            raise ValueError(
                f"words buffer is {view.nbytes} bytes; a {size}-state "
                f"predicate packs to {n_words * 8}"
            )
        return self.from_mask(int.from_bytes(bytes(view), "little"), size)

    def from_buffer_in(self, space, buf) -> Any:
        """:meth:`from_buffer` with the space available.

        Symbolic backends override — their handles come from the space's
        variable structure, so they rebuild via :meth:`from_mask_in`.
        """
        return self.from_buffer(buf, space.size)

    # ------------------------------------------------------------------
    # boolean algebra on handles
    # ------------------------------------------------------------------

    def and_(self, a: Any, b: Any, size: int) -> Any:
        raise NotImplementedError

    def or_(self, a: Any, b: Any, size: int) -> Any:
        raise NotImplementedError

    def xor(self, a: Any, b: Any, size: int) -> Any:
        raise NotImplementedError

    def not_(self, a: Any, size: int) -> Any:
        raise NotImplementedError

    def diff(self, a: Any, b: Any, size: int) -> Any:
        """``a ∧ ¬b``."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def popcount(self, handle: Any, size: int) -> int:
        raise NotImplementedError

    def equal(self, a: Any, b: Any, size: int) -> bool:
        raise NotImplementedError

    def is_false(self, handle: Any, size: int) -> bool:
        raise NotImplementedError

    def is_full(self, handle: Any, size: int) -> bool:
        raise NotImplementedError

    def test_bit(self, handle: Any, index: int) -> bool:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # relational kernels (successor tables)
    # ------------------------------------------------------------------

    def build_table(self, program, stmt) -> Any:
        """The backend's preferred representation of ``stmt``'s successor map.

        Cached per (backend, statement) by ``Program.kernel_table``.
        """
        raise NotImplementedError

    def table_from_array(self, succ, size: int) -> Any:
        """The backend's successor-map representation from a raw index array.

        Like :meth:`build_table`, but fed a plain sequence instead of a
        ``(program, statement)`` pair — the batched-Φ plans carry successor
        arrays as data precisely so worker processes need no programs.
        """
        raise NotImplementedError

    def table_from_array_in(self, space, succ) -> Any:
        """:meth:`table_from_array` with the space available.

        Symbolic backends override: they turn the array into a relation
        over the space's encoded bit levels.
        """
        return self.table_from_array(succ, space.size)

    def stmt_relation(self, program, stmt) -> Any:
        """A *relational* transition representation of ``stmt``.

        Built from the statement's update expressions over state-variable
        bit vectors (current and primed levels), so ``image``/``preimage``
        lower to relational product + quantification.  Only symbolic
        backends represent transitions this way; explicit backends keep
        successor arrays.
        """
        raise NotImplementedError(
            f"backend {self.name!r} has no relational transition "
            "representation; use build_table (successor arrays)"
        )

    def image(self, handle: Any, table: Any, size: int) -> Any:
        """``{succ[i] : i ∈ handle}`` — the ``sp`` kernel."""
        raise NotImplementedError

    def preimage(self, handle: Any, table: Any, size: int) -> Any:
        """``{i : succ[i] ∈ handle}`` — the ``wp`` kernel."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # batched Φ (the eq.-25 sweep kernel)
    # ------------------------------------------------------------------

    def batch_phi(self, plan, masks) -> List[int]:
        """``Φ(x) = sst_{P_x}(init)`` for a batch of candidate masks.

        The base implementation is the exact per-candidate loop over this
        backend's scalar kernels — the reference the vectorized overrides
        must match bit for bit.  ``plan`` is a
        :class:`~repro.predicates.backends.batch.PhiPlan`.
        """
        return [self.phi_of_mask(plan, mask) for mask in masks]

    def phi_of_mask(self, plan, mask: int) -> int:
        """One candidate's Φ via scalar kernels (eq. 13 + the eq.-3 chain).

        ``plan`` is accessed only through the plan interface
        (``init_handle``/``term_body``/``group_table``/``poison_handle``/
        ``succ_table``/``static_handle``), so arena-attached plans evaluate
        through the same code path as locally compiled ones.
        """
        from .batch import BatchPoisonError, eval_guard_postfix

        size = plan.space.size
        x = self.from_mask_in(plan.space, mask)
        not_x = self.not_(x, size)
        terms = []
        for position in range(len(plan.terms)):
            body = plan.term_body(self, position)
            table = plan.group_table(self, position)
            implication = self.or_(not_x, body, size)  # x ⇒ body, pointwise
            cylinder = self.quantify_groups(implication, table, size, True)
            terms.append(
                self.and_(body, self.or_(cylinder, not_x, size), size)
            )
        guards = []
        for index, stmt in enumerate(plan.statements):
            if stmt.guard is None:
                guards.append(None)
                continue
            g = eval_guard_postfix(self, plan, stmt.guard, terms, size)
            poison = plan.poison_handle(self, index)
            if poison is not None and not self.is_false(
                self.and_(g, poison, size), size
            ):
                raise BatchPoisonError(mask, stmt.name)
            guards.append(g)
        init = plan.init_handle(self)
        current = self.constant(plan.space, False)
        # f.y = init ∨ SP_{P_x}.y is monotone once the guards are fixed, so
        # the Kleene chain from false stabilizes within size + 1 steps.
        for _ in range(size + 2):
            acc = init
            for index, (stmt, g) in enumerate(zip(plan.statements, guards)):
                table = plan.succ_table(self, index)
                if g is None:
                    post = self.image(current, table, size)
                else:
                    post = self.or_(
                        self.image(self.and_(current, g, size), table, size),
                        self.diff(current, g, size),
                        size,
                    )
                acc = self.or_(acc, post, size)
            if self.equal(acc, current, size):
                return self.to_mask(current, size)
            current = acc
        raise RuntimeError(  # pragma: no cover - monotone chains always stop
            f"batched Φ chain exceeded {size + 2} steps on {size} states"
        )

    # ------------------------------------------------------------------
    # cylinder kernels (group tables)
    # ------------------------------------------------------------------

    def group_table(self, space, names) -> Any:
        """The backend's representation of ``space.cylinder_partition(names)``."""
        raise NotImplementedError

    def group_table_from_array(self, group_of, n_groups: int, size: int) -> Any:
        """A cylinder partition from a precomputed ``group_of`` index array.

        ``group_of[i]`` is state ``i``'s group.  Backends whose group-table
        form *is* (an array, count) — the numpy backend — accept the array
        as-is (zero-copy from an arena); others raise and the caller falls
        back to :meth:`group_table` with the variable names.
        """
        raise NotImplementedError(
            f"backend {self.name!r} derives group tables from variable "
            "names, not index arrays"
        )

    def quantify_groups(
        self, handle: Any, table: Any, size: int, universal: bool
    ) -> Any:
        """∀ (``universal``) or ∃ over each cylinder group, broadcast back.

        ``universal=True`` is ``wcyl`` (a state survives iff the predicate
        holds at *every* group member); ``False`` is ``scyl`` (*some*).
        """
        raise NotImplementedError

    def constant_on_groups(self, handle: Any, table: Any, size: int) -> bool:
        """Whether the predicate is constant on every cylinder group."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
