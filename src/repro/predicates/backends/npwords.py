"""The packed numpy ``uint64``-word backend.

A handle is a read-only ``numpy`` array of ``uint64`` words, ``word w`` bit
``b`` (little-endian) holding state ``64*w + b``.  Boolean algebra and
popcount run word-wise (64 states per element); the relational and
cylinder kernels unpack to a bool vector once per call, gather/scatter
through the successor or group arrays, and repack — no Python-level
per-state loops anywhere.

Handles stay attached to :class:`~repro.predicates.predicate.Predicate`
instances (``keeps_handles = True``), so a Kleene chain of ``sp``/``wp``/
``wcyl`` applications never converts back to Python ints until someone
actually asks for ``.mask``.

Invariant: bits at positions ``>= size`` in the last word are always zero,
which keeps fingerprints canonical and word-wise ``is_full``/``equal``
exact.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from .base import PredicateBackend

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def _n_words(size: int) -> int:
    return (size + 63) >> 6


class NumpyWordsBackend(PredicateBackend):
    """Packed 64-bit words; kernels vectorized over whole predicates."""

    name = "numpy"
    keeps_handles = True

    def __init__(self) -> None:
        self._full_cache: Dict[int, "np.ndarray"] = {}

    # -- internal helpers -------------------------------------------------

    def _full(self, size: int) -> "np.ndarray":
        full = self._full_cache.get(size)
        if full is None:
            full = np.full(_n_words(size), ~np.uint64(0), dtype="<u8")
            tail = size & 63
            if tail:
                full[-1] = np.uint64((1 << tail) - 1)
            full.setflags(write=False)
            self._full_cache[size] = full
        return full

    def _bits(self, handle: "np.ndarray", size: int) -> "np.ndarray":
        """Unpack to a bool vector of length ``n_words * 64``.

        The zero-tail invariant means bits at positions ``>= size`` are
        false, so the padded vector can be used directly wherever only set
        positions matter; callers slicing to ``size`` get a free view.
        """
        return np.unpackbits(handle.view(np.uint8), bitorder="little").view(np.bool_)

    def _pack(self, bits: "np.ndarray", size: int) -> "np.ndarray":
        """Pack a bool/uint8 vector (length ``size`` or word-padded) into words."""
        padded = _n_words(size) * 64
        if bits.size != padded:
            buf = np.zeros(padded, dtype=np.bool_)
            buf[: bits.size] = bits
            bits = buf
        words = np.packbits(bits, bitorder="little").view("<u8")
        words.setflags(write=False)
        return words

    # -- handle conversion ------------------------------------------------

    def from_mask(self, mask: int, size: int) -> "np.ndarray":
        raw = mask.to_bytes(_n_words(size) * 8, "little")
        words = np.frombuffer(raw, dtype="<u8")
        return words  # frombuffer is already read-only

    def to_mask(self, handle: "np.ndarray", size: int) -> int:
        return int.from_bytes(handle.tobytes(), "little")

    def fingerprint(self, handle: "np.ndarray", size: int) -> bytes:
        return handle.tobytes()[: (size + 7) // 8]

    def words_view(self, handle: "np.ndarray", size: int) -> memoryview:
        # The handle already *is* little-endian uint64 words; export its
        # buffer read-only without copying (handles are non-writeable, but
        # a defensive toreadonly covers any writable stragglers).
        view = memoryview(handle).cast("B")
        return view if view.readonly else view.toreadonly()

    def from_buffer(self, buf, size: int) -> "np.ndarray":
        # Zero-copy: the words array aliases the caller's buffer (e.g. a
        # shared-memory arena slot).  Read-only both ways — np.frombuffer
        # over a read-only memoryview yields a non-writeable array, which
        # is exactly the invariant arena-backed predicates need.
        view = memoryview(buf)
        if not view.readonly:
            view = view.toreadonly()
        words = np.frombuffer(view, dtype="<u8")
        if words.size != _n_words(size):
            raise ValueError(
                f"words buffer holds {words.size} words; a {size}-state "
                f"predicate packs to {_n_words(size)}"
            )
        return words

    # -- boolean algebra --------------------------------------------------

    def and_(self, a, b, size: int):
        return np.bitwise_and(a, b)

    def or_(self, a, b, size: int):
        return np.bitwise_or(a, b)

    def xor(self, a, b, size: int):
        return np.bitwise_xor(a, b)

    def not_(self, a, size: int):
        return np.bitwise_and(np.bitwise_not(a), self._full(size))

    def diff(self, a, b, size: int):
        return np.bitwise_and(a, np.bitwise_not(b))

    # -- queries ----------------------------------------------------------

    def popcount(self, handle, size: int) -> int:
        if _HAS_BITWISE_COUNT:
            return int(np.bitwise_count(handle).sum())
        return int(
            np.unpackbits(handle.view(np.uint8), bitorder="little")[:size].sum()
        )

    def equal(self, a, b, size: int) -> bool:
        return bool(np.array_equal(a, b))

    def is_false(self, handle, size: int) -> bool:
        return not bool(handle.any())

    def is_full(self, handle, size: int) -> bool:
        return bool(np.array_equal(handle, self._full(size)))

    def test_bit(self, handle, index: int) -> bool:
        return bool((int(handle[index >> 6]) >> (index & 63)) & 1)

    # -- relational kernels -----------------------------------------------

    def build_table(self, program, stmt):
        return program.successor_np(stmt)

    def table_from_array(self, succ, size: int):
        arr = np.asarray(succ, dtype=np.int64)
        arr.setflags(write=False)
        return arr

    def image(self, handle, table, size: int):
        sources = np.flatnonzero(self._bits(handle, size))
        out = np.zeros(_n_words(size) * 64, dtype=np.bool_)
        out[table[sources]] = True
        return self._pack(out, size)

    def preimage(self, handle, table, size: int):
        return self._pack(self._bits(handle, size)[table], size)

    # -- cylinder kernels -------------------------------------------------

    def group_table(self, space, names) -> Tuple["np.ndarray", int]:
        return space.cylinder_partition_np(names)

    def group_table_from_array(self, group_of, n_groups: int, size: int):
        arr = np.asarray(group_of, dtype=np.int64)  # no copy for int64 input
        if arr.flags.writeable:
            arr.setflags(write=False)
        return arr, int(n_groups)

    def quantify_groups(self, handle, table, size: int, universal: bool):
        group_of, n_groups = table
        bits = self._bits(handle, size)[:size]
        if universal:
            flags = np.ones(n_groups, dtype=bool)
            flags[group_of[~bits]] = False
        else:
            flags = np.zeros(n_groups, dtype=bool)
            flags[group_of[bits]] = True
        return self._pack(flags[group_of], size)

    def constant_on_groups(self, handle, table, size: int) -> bool:
        group_of, n_groups = table
        bits = self._bits(handle, size)[:size]
        any_true = np.zeros(n_groups, dtype=bool)
        any_true[group_of[bits]] = True
        any_false = np.zeros(n_groups, dtype=bool)
        any_false[group_of[~bits]] = True
        return not bool(np.any(any_true & any_false))

    # -- batched Φ ---------------------------------------------------------
    #
    # The whole candidate batch is one (batch, words) uint64 matrix; every
    # step of eq. (13) and the eq.-(3) Kleene chain runs as 2-D word
    # arithmetic or a single gather/scatter, so the per-candidate Python
    # cost of the exhaustive eq.-(25) sweep collapses to ~B-fold amortized
    # numpy calls.  The scalar kernels above are the row-wise semantics this
    # must reproduce exactly (the differential tests compare both).

    def _bits2d(self, mat: "np.ndarray") -> "np.ndarray":
        """Unpack a (B, W) word matrix to (B, W*64) bools, rows aligned."""
        return np.unpackbits(
            mat.view(np.uint8), axis=1, bitorder="little"
        ).view(np.bool_)

    def _pack2d(self, bits: "np.ndarray") -> "np.ndarray":
        """Pack a (B, W*64) bool matrix back into (B, W) uint64 words."""
        return np.packbits(bits, axis=1, bitorder="little").view("<u8")

    def _image2d(self, mat: "np.ndarray", succ: "np.ndarray", size: int):
        bits = self._bits2d(mat)
        rows, cols = np.nonzero(bits[:, :size])
        out = np.zeros(bits.shape, dtype=np.bool_)
        out[rows, succ[cols]] = True
        return self._pack2d(out)

    def _quantify2d_universal(
        self, mat: "np.ndarray", group_of: "np.ndarray", n_groups: int, size: int
    ):
        bits = self._bits2d(mat)[:, :size]
        flags = np.ones((mat.shape[0], n_groups), dtype=bool)
        rows, cols = np.nonzero(~bits)
        flags[rows, group_of[cols]] = False
        out = np.zeros((mat.shape[0], _n_words(size) * 64), dtype=np.bool_)
        out[:, :size] = flags[:, group_of]
        return self._pack2d(out)

    def batch_phi(self, plan, masks) -> List[int]:
        from .batch import BatchPoisonError, eval_guard_postfix

        batch = len(masks)
        if batch == 0:
            return []
        size = plan.space.size
        words = _n_words(size)
        raw = b"".join(mask.to_bytes(words * 8, "little") for mask in masks)
        x = np.frombuffer(raw, dtype="<u8").reshape(batch, words)
        not_x = np.bitwise_and(np.bitwise_not(x), self._full(size))

        # eq. (13): K_V(body) resolves to body ∧ (wcyl.V.(x ⇒ body) ∨ ¬x),
        # one (B, W) matrix per knowledge term.  All plan data arrives
        # through the plan interface, so arena-attached plans feed these
        # kernels read-only views straight out of shared memory.
        terms = []
        for position in range(len(plan.terms)):
            body = plan.term_body(self, position)
            group_of, n_groups = plan.group_table(self, position)
            cylinder = self._quantify2d_universal(
                np.bitwise_or(not_x, body), group_of, n_groups, size
            )
            terms.append(
                np.bitwise_and(body, np.bitwise_or(cylinder, not_x))
            )

        guards = []
        for index, stmt in enumerate(plan.statements):
            if stmt.guard is None:
                guards.append(None)
                continue
            g = eval_guard_postfix(self, plan, stmt.guard, terms, size)
            if g.ndim == 1:  # knowledge-free guard program: same row everywhere
                g = np.broadcast_to(g, (batch, words))
            poison = plan.poison_handle(self, index)
            if poison is not None:
                bad = np.bitwise_and(g, poison).any(axis=1)
                if bad.any():
                    row = int(np.flatnonzero(bad)[0])
                    raise BatchPoisonError(masks[row], stmt.name)
            guards.append(g)

        init = plan.init_handle(self)
        init_rows = np.broadcast_to(init, (batch, words))
        current = np.zeros((batch, words), dtype="<u8")
        # Row-wise f.y = init ∨ SP.y is monotone; fixpoint rows stay fixed,
        # so all-rows convergence lands within size + 1 joint steps.
        for _ in range(size + 2):
            acc = init_rows
            for index, g in enumerate(guards):
                succ = plan.succ_table(self, index)
                if g is None:
                    post = self._image2d(current, succ, size)
                else:
                    post = np.bitwise_or(
                        self._image2d(np.bitwise_and(current, g), succ, size),
                        np.bitwise_and(current, np.bitwise_not(g)),
                    )
                acc = np.bitwise_or(acc, post)
            if np.array_equal(acc, current):
                return [
                    int.from_bytes(row.tobytes(), "little") for row in current
                ]
            current = acc
        raise RuntimeError(  # pragma: no cover - monotone chains always stop
            f"batched Φ chain exceeded {size + 2} steps on {size} states"
        )
