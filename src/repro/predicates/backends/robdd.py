"""The symbolic ROBDD predicate backend — sets by structure, not extension.

A self-contained reduced ordered BDD engine (hash-consed nodes, memoized
apply / quantification, negation by apply), with no dependency beyond the
standard library.  Where the explicit backends hold one bit per state, this
backend holds a *circuit* recognizing the set, so spaces of 2^40+ states
are routine as long as the sets involved have structure.

Encoding
--------
Each space variable ``v_k`` (radix ``r_k``) gets ``max(1, ceil(log2 r_k))``
Boolean *slots*, MSB first.  Slots are flattened in declaration order into
``s = 0 .. B-1``; slot ``s`` owns two adjacent BDD levels:

* level ``2s`` — the *current* copy,
* level ``2s+1`` — the *primed* (successor) copy,

so renaming current↔primed is a uniform level shift of ±1 that preserves
the order.  Bit patterns that encode no domain value (when a radix is not
a power of two) are excluded by the per-space *domain constraint* BDD; the
engine maintains the invariant that every predicate handle is a subset of
the domain, with ``true`` *being* the domain node.  Because variable
slots are MSB-first and mixed-radix strides decrease, the lexicographic
order of slot assignments equals the numeric state-index order — the
least satisfying path is the least member index.

Transitions are *relations* over current+primed levels
(:class:`RobddRelation`): either an exact translation of a successor
array (small spaces — bit-for-bit parity with the explicit backends), or
compiled from the statement's guard and update expressions
(:meth:`RobddBackend.stmt_relation`), which never enumerates the space.
``image``/``preimage`` are relational product + quantification.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Tuple

from .. import limits
from .base import PredicateBackend

__all__ = ["RobddBackend", "RobddEngine", "RobddHandle", "RobddRelation"]

#: Largest support-assignment product the expression compiler will
#: enumerate for a single guard / update expression.  Statements of
#: factored models read a handful of small variables; hitting this cap
#: means the model needs refactoring, not a bigger sweep.
MAX_RELATION_SUPPORT = 1 << 16

#: Spaces at most this large build relations from exact successor arrays
#: (same arrays, same ``GuardDomainError`` timing as the explicit
#: backends); larger spaces compile relations from expressions.
ARRAY_RELATION_MAX = 1 << 14


class RobddHandle:
    """A predicate as a BDD node over the current levels of one engine."""

    __slots__ = ("engine", "node")

    def __init__(self, engine: "RobddEngine", node: int):
        self.engine = engine
        self.node = node

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"RobddHandle(node={self.node})"


class RobddRelation:
    """A transition relation as a BDD node over current+primed levels."""

    __slots__ = ("engine", "node")

    def __init__(self, engine: "RobddEngine", node: int):
        self.engine = engine
        self.node = node

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"RobddRelation(node={self.node})"


class RobddGroupTable:
    """Cylinder-quantification data: the levels of the non-kept variables."""

    __slots__ = ("engine", "set_id", "kept")

    def __init__(self, engine: "RobddEngine", set_id: int, kept: FrozenSet[str]):
        self.engine = engine
        self.set_id = set_id
        self.kept = kept


class RobddEngine:
    """Hash-consed ROBDD node store for one state space.

    Nodes are ints: ``0``/``1`` are the terminals, every other id indexes
    the ``(level, lo, hi)`` arrays.  All operations are memoized; equality
    of sets is identity of node ids.
    """

    def __init__(self, space):
        self.space = space
        radices = [len(v.domain) for v in space.variables]
        self.var_bits: List[int] = [
            max(1, (r - 1).bit_length()) if r > 1 else 1 for r in radices
        ]
        self.n_slots = sum(self.var_bits)
        self.n_levels = 2 * self.n_slots
        self._inf = self.n_levels  # terminal pseudo-level
        # slot -> (variable position, shift within the digit, index weight)
        self.slot_var: List[int] = []
        self.slot_shift: List[int] = []
        self.slot_weight: List[int] = []
        for k, bits in enumerate(self.var_bits):
            stride = space._strides[k]
            for p in range(bits):
                shift = bits - 1 - p
                self.slot_var.append(k)
                self.slot_shift.append(shift)
                self.slot_weight.append((1 << shift) * stride)
        # node store: terminals first
        self._level: List[int] = [self._inf, self._inf]
        self._lo: List[int] = [0, 1]
        self._hi: List[int] = [0, 1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        # memo tables
        self._and_m: Dict[Tuple[int, int], int] = {}
        self._or_m: Dict[Tuple[int, int], int] = {}
        self._xor_m: Dict[Tuple[int, int], int] = {}
        self._neg_m: Dict[int, int] = {}
        self._shift_m: Dict[Tuple[int, int], int] = {}
        self._exists_m: Dict[Tuple[int, int], int] = {}
        self._forall_m: Dict[Tuple[int, int], int] = {}
        self._count_m: Dict[int, int] = {}
        # interned quantification level sets
        self._sets: List[Tuple[FrozenSet[int], int]] = []
        self._set_ids: Dict[FrozenSet[int], int] = {}
        self.cur_set = self._intern_set(frozenset(range(0, self.n_levels, 2)))
        self.pri_set = self._intern_set(frozenset(range(1, self.n_levels, 2)))
        # domain constraint (valid digit encodings), both copies
        self.domain = self._build_domain()
        self.domain_p = self._shift(self.domain, +1)
        # per-variable and whole-state identity relations (v' = v)
        self._var_identity: List[int] = [
            self._build_identity(k) for k in range(len(space.variables))
        ]
        ident = 1
        for rel in reversed(self._var_identity):
            ident = self._and(ident, rel)
        self.identity_all = self._and(
            self._and(ident, self.domain), self.domain_p
        )
        self._group_tables: Dict[FrozenSet[str], RobddGroupTable] = {}

    # ------------------------------------------------------------------
    # node store
    # ------------------------------------------------------------------

    def _mk(self, level: int, lo: int, hi: int) -> int:
        if lo == hi:
            return lo
        key = (level, lo, hi)
        node = self._unique.get(key)
        if node is None:
            node = len(self._level)
            self._level.append(level)
            self._lo.append(lo)
            self._hi.append(hi)
            self._unique[key] = node
        return node

    def node_count(self) -> int:
        """Total nodes ever hash-consed (terminals included)."""
        return len(self._level)

    # ------------------------------------------------------------------
    # boolean algebra (memoized apply)
    # ------------------------------------------------------------------

    def _and(self, a: int, b: int) -> int:
        if a == b:
            return a
        if a == 0 or b == 0:
            return 0
        if a == 1:
            return b
        if b == 1:
            return a
        if a > b:
            a, b = b, a
        key = (a, b)
        r = self._and_m.get(key)
        if r is not None:
            return r
        la, lb = self._level[a], self._level[b]
        top = la if la < lb else lb
        a0, a1 = (self._lo[a], self._hi[a]) if la == top else (a, a)
        b0, b1 = (self._lo[b], self._hi[b]) if lb == top else (b, b)
        r = self._mk(top, self._and(a0, b0), self._and(a1, b1))
        self._and_m[key] = r
        return r

    def _or(self, a: int, b: int) -> int:
        if a == b:
            return a
        if a == 1 or b == 1:
            return 1
        if a == 0:
            return b
        if b == 0:
            return a
        if a > b:
            a, b = b, a
        key = (a, b)
        r = self._or_m.get(key)
        if r is not None:
            return r
        la, lb = self._level[a], self._level[b]
        top = la if la < lb else lb
        a0, a1 = (self._lo[a], self._hi[a]) if la == top else (a, a)
        b0, b1 = (self._lo[b], self._hi[b]) if lb == top else (b, b)
        r = self._mk(top, self._or(a0, b0), self._or(a1, b1))
        self._or_m[key] = r
        return r

    def _xor(self, a: int, b: int) -> int:
        if a == b:
            return 0
        if a == 0:
            return b
        if b == 0:
            return a
        if a == 1:
            return self._neg(b)
        if b == 1:
            return self._neg(a)
        if a > b:
            a, b = b, a
        key = (a, b)
        r = self._xor_m.get(key)
        if r is not None:
            return r
        la, lb = self._level[a], self._level[b]
        top = la if la < lb else lb
        a0, a1 = (self._lo[a], self._hi[a]) if la == top else (a, a)
        b0, b1 = (self._lo[b], self._hi[b]) if lb == top else (b, b)
        r = self._mk(top, self._xor(a0, b0), self._xor(a1, b1))
        self._xor_m[key] = r
        return r

    def _neg(self, a: int) -> int:
        """Raw complement (over all bit patterns; callers re-intersect domain)."""
        if a <= 1:
            return 1 - a
        r = self._neg_m.get(a)
        if r is not None:
            return r
        r = self._mk(self._level[a], self._neg(self._lo[a]), self._neg(self._hi[a]))
        self._neg_m[a] = r
        self._neg_m[r] = a
        return r

    def _shift(self, a: int, delta: int) -> int:
        """Rename every level by ``+delta`` (current↔primed; order-preserving)."""
        if a <= 1:
            return a
        key = (a, delta)
        r = self._shift_m.get(key)
        if r is not None:
            return r
        r = self._mk(
            self._level[a] + delta,
            self._shift(self._lo[a], delta),
            self._shift(self._hi[a], delta),
        )
        self._shift_m[key] = r
        return r

    # ------------------------------------------------------------------
    # quantification
    # ------------------------------------------------------------------

    def _intern_set(self, levels: FrozenSet[int]) -> int:
        sid = self._set_ids.get(levels)
        if sid is None:
            sid = len(self._sets)
            self._sets.append((levels, max(levels) if levels else -1))
            self._set_ids[levels] = sid
        return sid

    def _exists(self, u: int, sid: int) -> int:
        levels, maxlvl = self._sets[sid]
        if u <= 1 or self._level[u] > maxlvl:
            return u
        key = (u, sid)
        r = self._exists_m.get(key)
        if r is not None:
            return r
        lvl = self._level[u]
        lo = self._exists(self._lo[u], sid)
        hi = self._exists(self._hi[u], sid)
        r = self._or(lo, hi) if lvl in levels else self._mk(lvl, lo, hi)
        self._exists_m[key] = r
        return r

    def _forall(self, u: int, sid: int) -> int:
        levels, maxlvl = self._sets[sid]
        if u <= 1 or self._level[u] > maxlvl:
            return u
        key = (u, sid)
        r = self._forall_m.get(key)
        if r is not None:
            return r
        lvl = self._level[u]
        lo = self._forall(self._lo[u], sid)
        hi = self._forall(self._hi[u], sid)
        r = self._and(lo, hi) if lvl in levels else self._mk(lvl, lo, hi)
        self._forall_m[key] = r
        return r

    # ------------------------------------------------------------------
    # the domain constraint and state cubes
    # ------------------------------------------------------------------

    def _var_lt_const(self, k: int, bound: int, primed: bool) -> int:
        """``digit_k < bound`` over variable ``k``'s (current or primed) levels."""
        bits = self.var_bits[k]
        base_slot = sum(self.var_bits[:k])
        node = 0  # after all bits compared equal, value == bound-prefix: not less
        for p in range(bits - 1, -1, -1):
            lvl = 2 * (base_slot + p) + (1 if primed else 0)
            c_bit = (bound >> (bits - 1 - p)) & 1
            if c_bit:
                node = self._mk(lvl, 1, node)
            else:
                node = self._mk(lvl, node, 0)
        return node

    def _build_domain(self) -> int:
        node = 1
        for k in range(len(self.space.variables) - 1, -1, -1):
            r = len(self.space.variables[k].domain)
            if r == (1 << self.var_bits[k]):
                continue
            node = self._and(self._var_lt_const(k, r, False), node)
        return node

    def _build_identity(self, k: int) -> int:
        """``v_k' = v_k`` as a relation node."""
        bits = self.var_bits[k]
        base_slot = sum(self.var_bits[:k])
        node = 1
        for p in range(bits - 1, -1, -1):
            s = base_slot + p
            both0 = self._mk(2 * s + 1, node, 0)
            both1 = self._mk(2 * s + 1, 0, node)
            node = self._mk(2 * s, both0, both1)
        return node

    def state_cube(self, index: int, primed: bool = False) -> int:
        """The singleton BDD of the state at ``index``."""
        space = self.space
        node = 1
        for s in range(self.n_slots - 1, -1, -1):
            k = self.slot_var[s]
            bit = (space.digit(index, k) >> self.slot_shift[s]) & 1
            lvl = 2 * s + (1 if primed else 0)
            node = self._mk(lvl, 0, node) if bit else self._mk(lvl, node, 0)
        return node

    def digit_cube(self, k: int, digit: int, primed: bool = False) -> int:
        """The BDD fixing variable ``k``'s digit (other variables free)."""
        bits = self.var_bits[k]
        base_slot = sum(self.var_bits[:k])
        node = 1
        for p in range(bits - 1, -1, -1):
            bit = (digit >> (bits - 1 - p)) & 1
            lvl = 2 * (base_slot + p) + (1 if primed else 0)
            node = self._mk(lvl, 0, node) if bit else self._mk(lvl, node, 0)
        return node

    def _balanced_or(self, parts: List[int]) -> int:
        if not parts:
            return 0
        while len(parts) > 1:
            parts = [
                self._or(parts[i], parts[i + 1]) if i + 1 < len(parts) else parts[i]
                for i in range(0, len(parts), 2)
            ]
        return parts[0]

    # ------------------------------------------------------------------
    # counting / enumeration
    # ------------------------------------------------------------------

    def _slot_of(self, u: int) -> int:
        return self._level[u] // 2 if u > 1 else self.n_slots

    def count(self, u: int) -> int:
        """Satisfying states of a (domain-subset, current-level) BDD."""
        return self._count_rel(u) << self._slot_of(u)

    def _count_rel(self, u: int) -> int:
        """Models over slots ``slot(u) .. B-1`` (free slots count double)."""
        if u == 0:
            return 0
        if u == 1:
            return 1
        r = self._count_m.get(u)
        if r is not None:
            return r
        s = self._slot_of(u)
        lo, hi = self._lo[u], self._hi[u]
        r = (self._count_rel(lo) << (self._slot_of(lo) - s - 1)) + (
            self._count_rel(hi) << (self._slot_of(hi) - s - 1)
        )
        self._count_m[u] = r
        return r

    def iter_indices(self, u: int) -> Iterator[int]:
        """All member state indices (ascending) — O(#members · B)."""
        weight = self.slot_weight
        n_slots = self.n_slots
        level = self._level
        lo_arr, hi_arr = self._lo, self._hi

        def rec(s: int, u: int, acc: int) -> Iterator[int]:
            if u == 0:
                return
            if s == n_slots:
                yield acc
                return
            if u > 1 and level[u] == 2 * s:
                yield from rec(s + 1, lo_arr[u], acc)
                yield from rec(s + 1, hi_arr[u], acc + weight[s])
            else:
                yield from rec(s + 1, u, acc)
                yield from rec(s + 1, u, acc + weight[s])

        yield from rec(0, u, 0)

    def min_index(self, u: int) -> Optional[int]:
        """Least member index (lex-least slot assignment), or ``None``."""
        if u == 0:
            return None
        acc = 0
        while u > 1:
            lo, hi = self._lo[u], self._hi[u]
            if lo != 0:
                u = lo
            else:
                acc += self.slot_weight[self._level[u] // 2]
                u = hi
        return acc

    def test_index(self, u: int, index: int) -> bool:
        """Membership of one state index — O(B)."""
        space = self.space
        while u > 1:
            s = self._level[u] // 2
            bit = (space.digit(index, self.slot_var[s]) >> self.slot_shift[s]) & 1
            u = self._hi[u] if bit else self._lo[u]
        return u == 1

    # ------------------------------------------------------------------
    # relational kernels
    # ------------------------------------------------------------------

    def image(self, u: int, rel: int) -> int:
        prod = self._and(u, rel)
        e = self._exists(prod, self.cur_set)
        return self._and(self._shift(e, -1), self.domain)

    def preimage(self, u: int, rel: int) -> int:
        prod = self._and(rel, self._shift(u, +1))
        e = self._exists(prod, self.pri_set)
        return self._and(e, self.domain)

    def relation_from_array(self, succ) -> int:
        parts = [
            self._and(self.state_cube(i), self.state_cube(j, primed=True))
            for i, j in enumerate(succ)
        ]
        return self._balanced_or(parts)

    # ------------------------------------------------------------------
    # canonical serialization (certificates)
    # ------------------------------------------------------------------

    def serialize(self, u: int) -> Dict[str, Any]:
        """Postorder dense-renumbered node list; terminals are ids 0/1."""
        index: Dict[int, int] = {0: 0, 1: 1}
        nodes: List[List[int]] = []

        def rec(n: int) -> None:
            if n in index:
                return
            rec(self._lo[n])
            rec(self._hi[n])
            index[n] = len(nodes) + 2
            nodes.append(
                [self._level[n], index[self._lo[n]], index[self._hi[n]]]
            )

        rec(u)
        return {"nodes": nodes, "root": index[u]}

    def deserialize(self, payload: Dict[str, Any]) -> int:
        """Rebuild a state-predicate node, validating structure strictly."""
        nodes = payload.get("nodes")
        root = payload.get("root")
        if not isinstance(nodes, list) or not isinstance(root, int):
            raise ValueError("robdd payload needs a node list and a root id")
        ids: List[int] = [0, 1]
        levels: List[int] = [self._inf, self._inf]
        for entry in nodes:
            if not (isinstance(entry, list) and len(entry) == 3):
                raise ValueError(f"malformed robdd node entry {entry!r}")
            lvl, lo, hi = entry
            if not (0 <= lvl < self.n_levels and lvl % 2 == 0):
                raise ValueError(f"robdd node level {lvl} is not a current level")
            if not (0 <= lo < len(ids) and 0 <= hi < len(ids)):
                raise ValueError("robdd node references an undefined child id")
            if levels[lo] <= lvl or levels[hi] <= lvl:
                raise ValueError("robdd node levels are not strictly ordered")
            if lo == hi:
                raise ValueError("robdd node with equal children is not reduced")
            ids.append(self._mk(lvl, ids[lo], ids[hi]))
            levels.append(lvl)
        if not 0 <= root < len(ids):
            raise ValueError(f"robdd root id {root} out of range")
        node = ids[root]
        if self._and(node, self.domain) != node:
            raise ValueError("robdd payload escapes the space's domain constraint")
        return node


class RobddBackend(PredicateBackend):
    """Predicate kernels over hash-consed ROBDDs (one engine per space)."""

    name = "robdd"
    keeps_handles = True
    symbolic = True
    enumerable = False

    def __init__(self):
        self._engines: Dict[Any, RobddEngine] = {}

    def engine(self, space) -> RobddEngine:
        eng = self._engines.get(space)
        if eng is None:
            eng = RobddEngine(space)
            self._engines[space] = eng
        return eng

    # -- handle conversion ------------------------------------------------

    def from_mask(self, mask: int, size: int) -> Any:
        raise TypeError(
            "the robdd backend derives its encoding from the space's variable "
            "structure; use from_mask_in(space, mask) instead of from_mask"
        )

    def from_mask_in(self, space, mask: int) -> RobddHandle:
        eng = self.engine(space)
        parts = []
        m = mask
        while m:
            low = m & -m
            parts.append(eng.state_cube(low.bit_length() - 1))
            m ^= low
        return RobddHandle(eng, eng._balanced_or(parts))

    def from_buffer_in(self, space, buf) -> RobddHandle:
        # Word buffers only make sense at explicit scale; rebuild through
        # the space-structured encoding (a copy — zero-copy is an
        # explicit-word-array property the BDD representation cannot have).
        return self.from_mask_in(
            space, int.from_bytes(bytes(memoryview(buf)), "little")
        )

    def to_mask(self, handle: RobddHandle, size: int) -> int:
        limits.check_explicit_size(size, "materializing an int mask from a ROBDD")
        mask = 0
        for i in handle.engine.iter_indices(handle.node):
            mask |= 1 << i
        return mask

    def fingerprint(self, handle: RobddHandle, size: int) -> bytes:
        if size <= limits.get_limit("explicit"):
            return self.to_mask(handle, size).to_bytes((size + 7) // 8, "little")
        payload = handle.engine.serialize(handle.node)
        h = hashlib.sha256()
        h.update(b"robdd-v1\x00")
        h.update(str(payload["root"]).encode())
        for lvl, lo, hi in payload["nodes"]:
            h.update(b"\x00%d,%d,%d" % (lvl, lo, hi))
        return b"robdd\x00" + h.digest()

    def constant(self, space, value: bool) -> RobddHandle:
        eng = self.engine(space)
        return RobddHandle(eng, eng.domain if value else 0)

    def single(self, space, index: int) -> RobddHandle:
        eng = self.engine(space)
        return RobddHandle(eng, eng.state_cube(index))

    def some_index(self, handle: RobddHandle, size: int) -> Optional[int]:
        return handle.engine.min_index(handle.node)

    # -- boolean algebra --------------------------------------------------

    @staticmethod
    def _pair(a: RobddHandle, b: RobddHandle) -> RobddEngine:
        if a.engine is not b.engine:
            raise ValueError("robdd handles belong to different engines")
        return a.engine

    def and_(self, a, b, size):
        eng = self._pair(a, b)
        return RobddHandle(eng, eng._and(a.node, b.node))

    def or_(self, a, b, size):
        eng = self._pair(a, b)
        return RobddHandle(eng, eng._or(a.node, b.node))

    def xor(self, a, b, size):
        eng = self._pair(a, b)
        return RobddHandle(eng, eng._xor(a.node, b.node))

    def not_(self, a, size):
        eng = a.engine
        return RobddHandle(eng, eng._and(eng.domain, eng._neg(a.node)))

    def diff(self, a, b, size):
        eng = self._pair(a, b)
        return RobddHandle(eng, eng._and(a.node, eng._neg(b.node)))

    # -- queries ----------------------------------------------------------

    def popcount(self, handle, size):
        return handle.engine.count(handle.node)

    def equal(self, a, b, size):
        return self._pair(a, b) is a.engine and a.node == b.node

    def is_false(self, handle, size):
        return handle.node == 0

    def is_full(self, handle, size):
        return handle.node == handle.engine.domain

    def test_bit(self, handle, index):
        return handle.engine.test_index(handle.node, index)

    # -- relational kernels -----------------------------------------------

    def build_table(self, program, stmt) -> RobddRelation:
        space = program.space
        if space.size <= min(ARRAY_RELATION_MAX, limits.get_limit("explicit")):
            eng = self.engine(space)
            return RobddRelation(
                eng, eng.relation_from_array(program.successor_array(stmt))
            )
        return self.stmt_relation(program, stmt)

    def table_from_array(self, succ, size: int) -> Any:
        raise TypeError(
            "the robdd backend derives its encoding from the space's variable "
            "structure; use table_from_array_in(space, succ)"
        )

    def table_from_array_in(self, space, succ) -> RobddRelation:
        eng = self.engine(space)
        return RobddRelation(eng, eng.relation_from_array(succ))

    def image(self, handle, table, size):
        eng = handle.engine
        return RobddHandle(eng, eng.image(handle.node, table.node))

    def preimage(self, handle, table, size):
        eng = handle.engine
        return RobddHandle(eng, eng.preimage(handle.node, table.node))

    # -- relational compilation from expressions --------------------------

    def stmt_relation(self, program, stmt) -> RobddRelation:
        """Compile ``stmt`` to a relation without enumerating the space.

        ``R = (G ∧ ⋀_t t' = E_t ∧ frame) ∨ (¬G ∧ identity)``, intersected
        with both domain copies.  Update values are computed by enumerating
        assignments of each expression's *support* only, so cost scales
        with how much state a statement reads, not with the space.
        """
        space = program.space
        eng = self.engine(space)
        guard = self._compile_bool(eng, stmt.guard)
        guard_d = eng._and(guard, eng.domain)
        taken = guard_d
        targets = set(stmt.targets)
        for target, expr in zip(stmt.targets, stmt.exprs):
            taken = eng._and(
                taken, self._update_relation(eng, stmt, target, expr, guard_d)
            )
        for k, variable in enumerate(space.variables):
            if variable.name not in targets:
                taken = eng._and(taken, eng._var_identity[k])
        skip = eng._and(eng._and(eng._neg(guard), eng.domain), eng.identity_all)
        rel = eng._and(eng._or(taken, skip), eng.domain_p)
        return RobddRelation(eng, rel)

    def expr_handle(self, space, expr) -> RobddHandle:
        """The predicate denoted by a Boolean expression, compiled symbolically."""
        eng = self.engine(space)
        return RobddHandle(eng, eng._and(self._compile_bool(eng, expr), eng.domain))

    def _assignments(self, eng: RobddEngine, names) -> Iterator[Tuple[Dict[str, Any], int]]:
        """All assignments of the named variables, each with its cube node."""
        space = eng.space
        positions = sorted(space.position(n) for n in names)
        total = 1
        for k in positions:
            total *= len(space.variables[k].domain)
        if total > MAX_RELATION_SUPPORT:
            raise ValueError(
                f"expression support {sorted(names)} spans {total} assignments "
                f"(cap {MAX_RELATION_SUPPORT}); factor the statement so each "
                "expression reads less state, or raise "
                "repro.predicates.backends.robdd.MAX_RELATION_SUPPORT"
            )

        def rec(i: int, adict: Dict[str, Any], cube: int) -> Iterator[Tuple[Dict[str, Any], int]]:
            if i == len(positions):
                yield dict(adict), cube
                return
            k = positions[i]
            variable = eng.space.variables[k]
            for digit, value in enumerate(variable.domain.values):
                adict[variable.name] = value
                yield from rec(
                    i + 1, adict, eng._and(cube, eng.digit_cube(k, digit))
                )
            del adict[variable.name]

        yield from rec(0, {}, 1)

    def _update_relation(self, eng, stmt, target: str, expr, guard_d: int) -> int:
        """``target' = expr`` over the support of ``expr`` (plus escape check)."""
        from ...unity.expressions import EvalError

        space = eng.space
        k = space.position(target)
        domain = space.var(target).domain
        self._check_enumerable(expr)
        parts: List[int] = []
        bad = 0
        for adict, cube in self._assignments(eng, sorted(expr.free_vars())):
            try:
                value = expr.eval(adict)
            except EvalError:
                bad = eng._or(bad, cube)
                continue
            if value in domain:
                parts.append(
                    eng._and(cube, eng.digit_cube(k, domain.index(value), primed=True))
                )
            else:
                bad = eng._or(bad, cube)
        if bad:
            witness = eng.min_index(eng._and(bad, guard_d))
            if witness is not None:
                self._raise_domain_escape(space, stmt, target, expr, witness)
        return eng._balanced_or(parts)

    def _raise_domain_escape(self, space, stmt, target, expr, witness: int):
        from ...statespace import State
        from ...unity.program import GuardDomainError

        state = State(space, witness)
        value = expr.eval(state)  # re-raises the original EvalError if any
        domain = space.var(target).domain
        raise GuardDomainError(
            f"statement {stmt.name!r} assigns {target} := {value!r} "
            f"outside domain {domain.name} in state {state.as_dict()!r}"
        )

    def _check_enumerable(self, expr) -> None:
        from ...unity.expressions import Knowledge, UnresolvedKnowledgeError
        from ...unity.statements import ResolvedKnowledge

        if expr.knowledge_terms():
            raise UnresolvedKnowledgeError(
                f"cannot compile {expr!r} relationally: resolve knowledge "
                "terms first (repro.core.kbp)"
            )
        if isinstance(expr, ResolvedKnowledge):
            raise ValueError(
                f"resolved knowledge {expr!r} cannot appear inside an "
                "arithmetic expression on the symbolic path; lift it to the "
                "guard's Boolean structure"
            )

    def _compile_bool(self, eng: RobddEngine, expr) -> int:
        """A Boolean expression as a raw node over current levels.

        Boolean connectives decompose structurally; value-level leaves
        (comparisons, indexing, …) are compiled by enumerating assignments
        of their support.  ``ResolvedKnowledge`` leaves become the bound
        predicate's handle, so resolved KBP guards compile exactly.
        """
        from ...unity.expressions import (
            Binary,
            Const,
            Ite,
            Knowledge,
            Unary,
            UnresolvedKnowledgeError,
        )
        from ...unity.statements import ResolvedKnowledge

        memo: Dict[Any, int] = {}

        def rec(e) -> int:
            r = memo.get(e)
            if r is not None:
                return r
            if isinstance(e, Const):
                r = 1 if e.value else 0
            elif isinstance(e, Unary) and e.op == "not":
                r = eng._neg(rec(e.operand))
            elif isinstance(e, Binary) and e.op in ("and", "or", "=>", "<=>"):
                a, b = rec(e.left), rec(e.right)
                if e.op == "and":
                    r = eng._and(a, b)
                elif e.op == "or":
                    r = eng._or(a, b)
                elif e.op == "=>":
                    r = eng._or(eng._neg(a), b)
                else:
                    r = eng._neg(eng._xor(a, b))
            elif isinstance(e, Ite):
                c = rec(e.cond)
                r = eng._or(
                    eng._and(c, rec(e.then)),
                    eng._and(eng._neg(c), rec(e.orelse)),
                )
            elif isinstance(e, ResolvedKnowledge):
                r = self._pred_node(eng, e.predicate)
            elif isinstance(e, Knowledge):
                raise UnresolvedKnowledgeError(
                    f"knowledge term {e!r} compiled without a resolution; "
                    "solve the protocol's SI equation first (repro.core.kbp)"
                )
            else:
                self._check_enumerable(e)
                parts = [
                    cube
                    for adict, cube in self._assignments(eng, sorted(e.free_vars()))
                    if e.eval(adict)
                ]
                r = eng._balanced_or(parts)
            memo[e] = r
            return r

        return rec(expr)

    def _pred_node(self, eng: RobddEngine, predicate) -> int:
        """A Predicate's node on this engine (reuse its handle when bound here)."""
        if (
            predicate._backend is self
            and predicate._handle is not None
            and predicate._handle.engine is eng
        ):
            return predicate._handle.node
        return self.from_mask_in(predicate.space, predicate.mask).node

    # -- canonical serialization ------------------------------------------

    def serialize(self, handle: RobddHandle) -> Dict[str, Any]:
        """Canonical node-list payload for certificates."""
        return handle.engine.serialize(handle.node)

    def deserialize(self, space, payload) -> RobddHandle:
        eng = self.engine(space)
        return RobddHandle(eng, eng.deserialize(payload))

    # -- cylinder kernels -------------------------------------------------

    def group_table(self, space, names) -> RobddGroupTable:
        eng = self.engine(space)
        kept = space.check_vars(names)
        table = eng._group_tables.get(kept)
        if table is None:
            levels = frozenset(
                2 * s
                for s in range(eng.n_slots)
                if space.variables[eng.slot_var[s]].name not in kept
            )
            table = RobddGroupTable(eng, eng._intern_set(levels), kept)
            eng._group_tables[kept] = table
        return table

    def quantify_groups(self, handle, table, size, universal):
        eng = handle.engine
        if universal:
            # wcyl: ∀ non-observable vars . (domain ⇒ p), back inside domain —
            # eq. (6) as variable forgetting.
            body = eng._or(eng._neg(eng.domain), handle.node)
            q = eng._forall(body, table.set_id)
        else:
            q = eng._exists(handle.node, table.set_id)
        return RobddHandle(eng, eng._and(q, eng.domain))

    def constant_on_groups(self, handle, table, size):
        eng = handle.engine
        forall_q = eng._and(
            eng._forall(eng._or(eng._neg(eng.domain), handle.node), table.set_id),
            eng.domain,
        )
        exists_q = eng._and(eng._exists(handle.node, table.set_id), eng.domain)
        return forall_q == exists_q
