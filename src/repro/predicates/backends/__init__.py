"""Pluggable predicate-kernel backends and their registry.

Selection (first match wins):

1. an explicit :func:`set_default_backend` call;
2. the ``REPRO_PREDICATE_BACKEND`` environment variable
   (``"int"``, ``"numpy"``, ``"robdd"`` or ``"auto"``);
3. the built-in default ``"auto"`` — exact int bitmasks below
   :data:`AUTO_THRESHOLD` states, packed numpy words at or above it
   (small spaces lose more to array overhead than they gain from
   vectorization), and the symbolic ROBDD backend past the explicit-state
   limit (``repro.predicates.limits``), where neither explicit
   representation can even be constructed.

``"auto"`` is a *policy*, not a backend: :func:`backend_for_size` always
resolves it to a concrete backend, and a ``Predicate`` that already
carries a handle keeps using the backend that produced it
(:func:`backend_for`), so mixed chains stay consistent.

The int backend is the exact reference — the differential test suite
asserts kernel-for-kernel agreement between the two on randomized
predicates.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Union

from .. import limits
from .base import PredicateBackend
from .intbits import IntBitsBackend
from .npwords import NumpyWordsBackend
from .robdd import RobddBackend

__all__ = [
    "AUTO_THRESHOLD",
    "PredicateBackend",
    "IntBitsBackend",
    "NumpyWordsBackend",
    "RobddBackend",
    "available_backends",
    "backend_for",
    "backend_for_size",
    "batch_backend_for",
    "get_backend",
    "get_default_backend",
    "set_default_backend",
    "using_backend",
]

#: "auto" switches from int bitmasks to packed numpy words at this size.
AUTO_THRESHOLD = 4096

_INT = IntBitsBackend()
_NUMPY = NumpyWordsBackend()
_ROBDD = RobddBackend()
_REGISTRY = {"int": _INT, "numpy": _NUMPY, "robdd": _ROBDD}

_ENV_VAR = "REPRO_PREDICATE_BACKEND"

#: Current selection: "int" | "numpy" | "auto" | a backend instance.
#: None means "not yet initialized from the environment".
_default: Union[str, PredicateBackend, None] = None


def available_backends() -> tuple:
    """Registered backend names (``"auto"`` is additionally accepted)."""
    return tuple(sorted(_REGISTRY)) + ("auto",)


def get_backend(name: str) -> PredicateBackend:
    """The registered backend instance named ``name`` (not ``"auto"``)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown predicate backend {name!r} (have {available_backends()})"
        ) from None


def get_default_backend() -> Union[str, PredicateBackend]:
    """The current selection: a name (possibly ``"auto"``) or an instance."""
    global _default
    if _default is None:
        raw = os.environ.get(_ENV_VAR, "auto").strip().lower()
        if raw not in ("auto",) and raw not in _REGISTRY:
            raise ValueError(
                f"{_ENV_VAR}={raw!r} names no predicate backend "
                f"(have {available_backends()})"
            )
        _default = raw
    return _default


def set_default_backend(
    backend: Union[str, PredicateBackend, None]
) -> Union[str, PredicateBackend]:
    """Select the process-wide default backend; returns the previous selection.

    Accepts a registry name (``"int"``, ``"numpy"``, ``"auto"``), a backend
    instance, or ``None`` to re-read ``REPRO_PREDICATE_BACKEND`` on next use.
    """
    global _default
    previous = _default
    if isinstance(backend, str):
        if backend != "auto" and backend not in _REGISTRY:
            raise KeyError(
                f"unknown predicate backend {backend!r} (have {available_backends()})"
            )
    elif backend is not None and not isinstance(backend, PredicateBackend):
        raise TypeError(f"expected a backend name or instance, got {backend!r}")
    _default = backend
    return previous


@contextmanager
def using_backend(backend: Union[str, PredicateBackend]) -> Iterator[PredicateBackend]:
    """Temporarily select a backend (used heavily by the differential tests)."""
    previous = set_default_backend(backend)
    try:
        yield backend_for_size(AUTO_THRESHOLD) if backend == "auto" else (
            get_backend(backend) if isinstance(backend, str) else backend
        )
    finally:
        set_default_backend(previous)


def backend_for_size(size: int) -> PredicateBackend:
    """Resolve the current selection to a concrete backend for ``size`` states."""
    selection = get_default_backend()
    if isinstance(selection, PredicateBackend):
        return selection
    if selection == "auto":
        if size > limits.get_limit("explicit"):
            return _ROBDD  # explicit representations cannot even be built
        return _NUMPY if size >= AUTO_THRESHOLD else _INT
    return _REGISTRY[selection]


def batch_backend_for(size: int, batch: int) -> PredicateBackend:
    """Resolve the selection for a *batched* Φ sweep of ``batch`` candidates.

    Under ``"auto"`` the decision weighs the whole batch — ``size × batch``
    total bits against :data:`AUTO_THRESHOLD` — so the vectorized numpy
    ``batch_phi`` kicks in for the exhaustive eq.-(25) sweeps even on
    spaces far below the per-predicate crossover (a 24-state space is tiny,
    but 2^20 candidates over it are not).
    """
    selection = get_default_backend()
    if isinstance(selection, PredicateBackend):
        return selection
    if selection == "auto":
        if size > limits.get_limit("explicit"):
            return _ROBDD
        return _NUMPY if size * max(batch, 1) >= AUTO_THRESHOLD else _INT
    return _REGISTRY[selection]


def backend_for(p) -> PredicateBackend:
    """The backend to run a kernel on predicate ``p`` with.

    A predicate already bound to a backend handle keeps that backend (the
    chain stays in one representation); otherwise the default policy
    decides by space size.
    """
    bound = p._backend
    if bound is not None and p._handle is not None:
        return bound
    return backend_for_size(p.space.size)
