"""The exact Python-int bitmask backend — the reference implementation.

Handles *are* masks: arbitrary-precision integers with bit ``i`` set iff
the predicate holds at state ``i``.  Boolean algebra is single int
operations; the relational kernels iterate **set bits of the smaller side**
rather than ``range(size)``:

* ``image`` walks the set bits of the source mask;
* ``preimage`` ORs cached per-state *predecessor masks* over the set bits
  of the target — or of its complement when that side is smaller, using
  that preimages of total functions commute with complement;
* the cylinder kernels reduce over per-group member masks (one big-int
  test per group) instead of one Python iteration per state.
"""

from __future__ import annotations

from typing import Any, List, Optional

from .base import PredicateBackend


class IntSuccessorTable:
    """A statement's successor map plus lazily built predecessor masks."""

    __slots__ = ("succ", "_pred_masks")

    def __init__(self, succ: List[int]):
        self.succ = succ
        self._pred_masks: Optional[List[int]] = None

    def pred_masks(self) -> List[int]:
        """``pred[j]`` = mask of all states ``i`` with ``succ[i] == j``."""
        masks = self._pred_masks
        if masks is None:
            masks = [0] * len(self.succ)
            bit = 1
            for j in self.succ:
                masks[j] |= bit
                bit <<= 1
            self._pred_masks = masks
        return masks


class IntBitsBackend(PredicateBackend):
    """Exact integer bitmasks (the semantics every other backend must match)."""

    name = "int"
    keeps_handles = False

    # -- handle conversion ------------------------------------------------

    def from_mask(self, mask: int, size: int) -> int:
        return mask

    def to_mask(self, handle: int, size: int) -> int:
        return handle

    def fingerprint(self, handle: int, size: int) -> bytes:
        return handle.to_bytes((size + 7) // 8, "little")

    # -- boolean algebra --------------------------------------------------

    def and_(self, a: int, b: int, size: int) -> int:
        return a & b

    def or_(self, a: int, b: int, size: int) -> int:
        return a | b

    def xor(self, a: int, b: int, size: int) -> int:
        return a ^ b

    def not_(self, a: int, size: int) -> int:
        return ((1 << size) - 1) & ~a

    def diff(self, a: int, b: int, size: int) -> int:
        return a & ~b

    # -- queries ----------------------------------------------------------

    def popcount(self, handle: int, size: int) -> int:
        return handle.bit_count()

    def equal(self, a: int, b: int, size: int) -> bool:
        return a == b

    def is_false(self, handle: int, size: int) -> bool:
        return handle == 0

    def is_full(self, handle: int, size: int) -> bool:
        return handle == (1 << size) - 1

    def test_bit(self, handle: int, index: int) -> bool:
        return bool(handle >> index & 1)

    # -- relational kernels -----------------------------------------------

    def build_table(self, program, stmt) -> IntSuccessorTable:
        return IntSuccessorTable(program.successor_array(stmt))

    def table_from_array(self, succ, size: int) -> IntSuccessorTable:
        # tolist() (not list()) when fed a numpy array — e.g. an arena view:
        # list() would yield np.int64 elements, whose fixed width silently
        # truncates the big-int shifts in image() past 63 states.
        tolist = getattr(succ, "tolist", None)
        return IntSuccessorTable(tolist() if tolist is not None else list(succ))

    def image(self, handle: int, table: IntSuccessorTable, size: int) -> int:
        succ = table.succ
        out = 0
        mask = handle
        while mask:
            low = mask & -mask
            out |= 1 << succ[low.bit_length() - 1]
            mask ^= low
        return out

    def preimage(self, handle: int, table: IntSuccessorTable, size: int) -> int:
        full = (1 << size) - 1
        count = handle.bit_count()
        pred = table.pred_masks()
        # Iterate the smaller of q / ¬q: preimage commutes with complement
        # for total functions, so wp.s.q = ¬ wp.s.(¬q).
        if 2 * count <= size:
            mask = handle
            out = 0
            while mask:
                low = mask & -mask
                out |= pred[low.bit_length() - 1]
                mask ^= low
            return out
        mask = full & ~handle
        out = 0
        while mask:
            low = mask & -mask
            out |= pred[low.bit_length() - 1]
            mask ^= low
        return full & ~out

    # -- cylinder kernels -------------------------------------------------

    def group_table(self, space, names) -> List[int]:
        return space.cylinder_group_masks(names)

    def quantify_groups(
        self, handle: int, table: List[int], size: int, universal: bool
    ) -> int:
        out = 0
        if universal:
            for gm in table:
                if handle & gm == gm:
                    out |= gm
        else:
            for gm in table:
                if handle & gm:
                    out |= gm
        return out

    def constant_on_groups(self, handle: int, table: List[int], size: int) -> bool:
        for gm in table:
            inter = handle & gm
            if inter and inter != gm:
                return False
        return True
