"""The batched-Φ plan: candidate-independent data for whole-batch sweeps.

The exhaustive eq.-(25) solver evaluates ``Φ(x) = sst_{P_x}(init)`` for an
exponential family of candidate invariants ``x``.  Per candidate, only two
ingredients actually vary:

* each knowledge term resolves to ``body ∧ (wcyl.V.(x ⇒ body) ∨ ¬x)``
  (paper eq. 13) — ``body`` is the SI-independent formula under the ``K``;
* each knowledge-based statement's *guard* predicate, a Boolean combination
  of resolved knowledge terms and knowledge-free static leaves.

Everything else — successor arrays, the initial condition, cylinder
partitions, static guard leaves — is shared by every ``P_x``.  A
:class:`PhiPlan` freezes that shared structure as plain masks and index
arrays so a predicate backend can evaluate Φ for *batches* of candidate
masks at once without touching programs, expressions, or resolvers:

* :meth:`~repro.predicates.backends.base.PredicateBackend.batch_phi` is
  the entry point every backend implements — the base class provides an
  exact per-candidate loop over its scalar kernels (what the int backend
  uses), and the numpy backend overrides it with a fully vectorized sweep
  over a ``(batch, words)`` ``uint64`` matrix;
* the plan is *compiled* from a knowledge-based :class:`repro.unity.Program`
  by :func:`repro.core.parallel.compile_phi_plan` (the layering keeps this
  module free of unity/core imports: only masks, names, and index tuples
  appear here).

Guards are compiled to a tiny postfix program over the stack ops
``("term", i)``, ``("static", mask)``, ``("not",)``, ``("and",)``,
``("or",)``, ``("xor",)`` — enough for the Boolean connectives; anything
richer makes the program ineligible and the solver falls back to the
per-candidate path.

Exactness contract: for every eligible program and candidate mask,
``batch_phi`` must return the same mask the serial resolver computes —
the differential tests enforce this across backends.  States where the
*unguarded* right-hand sides leave a variable's domain are recorded in
``poison_mask``; a candidate whose guard enables such a state raises
:class:`BatchPoisonError`, and the caller re-runs that candidate serially
so the exact :class:`~repro.unity.program.GuardDomainError` surfaces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple


class BatchPoisonError(Exception):
    """A batched candidate enables a statement whose unguarded successor is undefined.

    Carries the offending candidate mask and statement name; the sweep
    re-runs that candidate through the serial resolver, which raises the
    original :class:`~repro.unity.program.GuardDomainError` verbatim.
    """

    def __init__(self, candidate_mask: int, statement: str):
        self.candidate_mask = candidate_mask
        self.statement = statement
        super().__init__(
            f"candidate {candidate_mask:#x} enables statement {statement!r} "
            "at a state where its unguarded successor leaves the domain"
        )


@dataclass(frozen=True)
class TermPlan:
    """One knowledge term ``K_V(body)`` with its SI-independent pieces.

    ``body_mask`` is the exact bitset of the (knowledge-free) formula under
    the ``K``; ``variables`` is the owning process's view — the cylinder
    key of eq. (13)'s ``wcyl``.
    """

    body_mask: int
    variables: Tuple[str, ...]


@dataclass(frozen=True)
class StatementPlan:
    """One statement's successor map plus (for knowledge-based ones) its guard.

    ``guard is None`` means the successor array already encodes the full
    statement semantics (knowledge-free statement, guard included as skip).
    Otherwise ``succ`` is the *unguarded* assignment successor and the
    postfix ``guard`` program decides, per candidate, where it applies:

        sp.s.p = image(p ∧ g, succ) ∨ (p ∧ ¬g)

    ``poison_mask`` marks states where the unguarded successor is undefined
    (domain exit); enabling one is a :class:`BatchPoisonError`.
    """

    name: str
    succ: Tuple[int, ...]
    guard: Optional[Tuple[Tuple[Any, ...], ...]] = None
    poison_mask: int = 0


@dataclass
class PhiPlan:
    """Candidate-independent compilation of ``Φ`` for one program.

    Carries per-backend memos for successor tables and static handles so a
    backend converts each shared mask/array exactly once per process.
    """

    space: Any  # repro.statespace.StateSpace (duck-typed; no import cycle)
    init_mask: int
    statements: Tuple[StatementPlan, ...]
    terms: Tuple[TermPlan, ...]
    _tables: Dict[Tuple[str, int], Any] = field(default_factory=dict, repr=False)
    _statics: Dict[Tuple[str, int], Any] = field(default_factory=dict, repr=False)

    def succ_table(self, backend, index: int) -> Any:
        """Statement ``index``'s successor map in ``backend``'s preferred form."""
        key = (backend.name, index)
        table = self._tables.get(key)
        if table is None:
            table = backend.table_from_array_in(
                self.space, self.statements[index].succ
            )
            self._tables[key] = table
        return table

    def static_handle(self, backend, mask: int) -> Any:
        """A shared constant mask as a backend handle (memoized per backend)."""
        key = (backend.name, mask)
        handle = self._statics.get(key)
        if handle is None:
            handle = backend.from_mask_in(self.space, mask)
            self._statics[key] = handle
        return handle

    # ------------------------------------------------------------------
    # the plan interface ``batch_phi`` evaluates against
    #
    # ``phi_of_mask``/``batch_phi`` never touch the raw mask fields below
    # this line — they go through these accessors, so a plan whose statics
    # live in a shared-memory arena (repro.predicates.arena.ArenaPlan) can
    # serve zero-copy handles through the identical surface.  Guard postfix
    # programs reference statics by an opaque key (``("static", key)``):
    # for a PhiPlan the key *is* the mask, for an ArenaPlan it is a slot.
    # ------------------------------------------------------------------

    def init_handle(self, backend) -> Any:
        """The initial condition as a backend handle."""
        return self.static_handle(backend, self.init_mask)

    def term_body(self, backend, index: int) -> Any:
        """Knowledge term ``index``'s body predicate as a backend handle."""
        return self.static_handle(backend, self.terms[index].body_mask)

    def group_table(self, backend, index: int) -> Any:
        """Term ``index``'s cylinder partition in ``backend``'s form."""
        variables = self.terms[index].variables
        key = (backend.name, variables)
        table = self._tables.get(key)
        if table is None:
            table = backend.group_table(self.space, variables)
            self._tables[key] = table
        return table

    def poison_handle(self, backend, index: int) -> Optional[Any]:
        """Statement ``index``'s poison set, or ``None`` when empty."""
        mask = self.statements[index].poison_mask
        if not mask:
            return None
        return self.static_handle(backend, mask)


def eval_guard_postfix(backend, plan: PhiPlan, ops, term_handles, size: int):
    """Run a compiled guard program over one backend's kernel vocabulary.

    ``term_handles`` are the already-resolved knowledge-term handles for the
    current candidate — or, on the numpy backend's batched path, whole
    ``(batch, words)`` matrices: its boolean kernels broadcast, so the same
    evaluator serves both shapes.
    """
    stack = []
    for op in ops:
        tag = op[0]
        if tag == "term":
            stack.append(term_handles[op[1]])
        elif tag == "static":
            stack.append(plan.static_handle(backend, op[1]))
        elif tag == "not":
            stack.append(backend.not_(stack.pop(), size))
        elif tag == "and":
            b = stack.pop()
            stack.append(backend.and_(stack.pop(), b, size))
        elif tag == "or":
            b = stack.pop()
            stack.append(backend.or_(stack.pop(), b, size))
        elif tag == "xor":
            b = stack.pop()
            stack.append(backend.xor(stack.pop(), b, size))
        else:  # pragma: no cover - compile_phi_plan only emits the tags above
            raise ValueError(f"unknown guard op {op!r}")
    if len(stack) != 1:  # pragma: no cover - malformed plans never compile
        raise ValueError("guard program left a non-singleton stack")
    return stack[0]
