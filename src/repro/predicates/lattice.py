"""Fixpoint machinery on the (finite, complete) lattice of predicates.

The paper's central construction — the strongest stable predicate ``sst``
(eq. 1, computed via eq. 3) — is a least fixed point.  On a finite space,
Kleene iteration terminates for *any* total function, monotone or not, as
long as the chain it produces stabilizes; for monotone functions the chain
``false ⊑ f.false ⊑ f².false ⊑ …`` is ascending and hits the least fixed
point in at most ``space.size`` steps.

Knowledge-based protocols break exactly this (section 4 of the paper):
their ``ŜP`` transformer is not monotone, so the Kleene chain may cycle
without converging.  :class:`FixpointResult` records both outcomes so
callers can distinguish them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from .predicate import Predicate


@dataclass(frozen=True)
class FixpointResult:
    """Outcome of a Kleene iteration.

    ``value`` is the fixed point when ``converged`` is true.  When the chain
    enters a nontrivial cycle instead (possible only for non-monotone
    functions), ``converged`` is false, ``value`` is None, and ``cycle``
    holds the repeating segment.
    """

    converged: bool
    value: Optional[Predicate]
    iterations: int
    cycle: List[Predicate] = field(default_factory=list)

    def require(self) -> Predicate:
        """The fixed point, raising if the iteration did not converge."""
        if not self.converged or self.value is None:
            raise ValueError(
                f"fixpoint iteration did not converge (cycle of length {len(self.cycle)})"
            )
        return self.value


def iterate_to_fixpoint(
    f: Callable[[Predicate], Predicate],
    start: Predicate,
    max_iterations: Optional[int] = None,
) -> FixpointResult:
    """Iterate ``x := f(x)`` from ``start`` until ``f(x) == x`` or a cycle recurs.

    Cycle detection keeps the full history (chains over a space of ``n``
    states have at most ``2^n`` distinct values but stabilize in ``≤ n+1``
    steps when monotone, so the history stays short in practice).
    """
    limit = max_iterations if max_iterations is not None else 2 ** start.space.size + 1
    seen = {start.mask: 0}
    history = [start]
    x = start
    for step in range(1, limit + 1):
        nxt = f(x)
        if nxt == x:
            return FixpointResult(converged=True, value=x, iterations=step - 1)
        if nxt.mask in seen:
            cycle = history[seen[nxt.mask]:]
            return FixpointResult(
                converged=False, value=None, iterations=step, cycle=cycle
            )
        seen[nxt.mask] = step
        history.append(nxt)
        x = nxt
    raise RuntimeError(f"fixpoint iteration exceeded {limit} steps without a verdict")


def lfp(f: Callable[[Predicate], Predicate], space_false: Predicate) -> FixpointResult:
    """Least fixed point of a monotone ``f`` by Kleene iteration from ``false``.

    ``space_false`` should be ``Predicate.false(space)``; passing a different
    start computes the limit of that chain instead.
    """
    return iterate_to_fixpoint(f, space_false)


def gfp(f: Callable[[Predicate], Predicate], space_true: Predicate) -> FixpointResult:
    """Greatest fixed point of a monotone ``f`` by iteration from ``true``."""
    return iterate_to_fixpoint(f, space_true)


def is_monotone_on_chain(
    f: Callable[[Predicate], Predicate], chain: List[Predicate]
) -> bool:
    """Check ``[p ⇒ q] ⇒ [f.p ⇒ f.q]`` along consecutive elements of a chain.

    A cheap necessary condition used in diagnostics; full monotonicity
    checking lives in :mod:`repro.transformers.junctivity`.
    """
    for p, q in zip(chain, chain[1:]):
        if p.entails(q) and not f(p).entails(f(q)):
            return False
    return True
