"""Fixpoint machinery on the (finite, complete) lattice of predicates.

The paper's central construction — the strongest stable predicate ``sst``
(eq. 1, computed via eq. 3) — is a least fixed point.  On a finite space,
Kleene iteration terminates for *any* total function, monotone or not, as
long as the chain it produces stabilizes; for monotone functions the chain
``false ⊑ f.false ⊑ f².false ⊑ …`` is ascending and hits the least fixed
point in at most ``space.size`` steps.

Knowledge-based protocols break exactly this (section 4 of the paper):
their ``ŜP`` transformer is not monotone, so the Kleene chain may cycle
without converging.  :class:`FixpointResult` records both outcomes so
callers can distinguish them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from .predicate import Predicate


@dataclass(frozen=True)
class FixpointResult:
    """Outcome of a Kleene iteration.

    ``value`` is the fixed point when ``converged`` is true.  When the chain
    enters a nontrivial cycle instead (possible only for non-monotone
    functions), ``converged`` is false, ``value`` is None, and ``cycle``
    holds the repeating segment.

    ``name`` labels the iterated transformer and ``chain`` retains the full
    visited sequence (ending at the fixed point when converged) — the raw
    material of fixpoint certificates, and the stats the benchmarks report.
    """

    converged: bool
    value: Optional[Predicate]
    iterations: int
    cycle: List[Predicate] = field(default_factory=list)
    name: Optional[str] = None
    chain: Tuple[Predicate, ...] = ()

    def require(self) -> Predicate:
        """The fixed point, raising if the iteration did not converge."""
        if not self.converged or self.value is None:
            raise ValueError(
                f"fixpoint iteration did not converge (cycle of length {len(self.cycle)})"
            )
        return self.value

    def stats(self) -> dict:
        """Iteration count and transformer name, benchmark-report shaped."""
        return {
            "name": self.name,
            "iterations": self.iterations,
            "converged": self.converged,
        }


def default_iteration_limit(size: int) -> int:
    """The default Kleene-step budget for a space of ``size`` states.

    Monotone chains stabilize in at most ``size + 1`` steps and
    non-monotone chains are caught by the cycle detector, so a small
    multiple of the space size is generous; anything beyond it indicates a
    transformer that is not even eventually periodic at this scale (the
    old default of ``2^size + 1`` was astronomically large and useless as
    a diagnostic for spaces beyond ~60 states).
    """
    return 4 * size + 16


def iterate_to_fixpoint(
    f: Callable[[Predicate], Predicate],
    start: Predicate,
    max_iterations: Optional[int] = None,
    name: Optional[str] = None,
) -> FixpointResult:
    """Iterate ``x := f(x)`` from ``start`` until ``f(x) == x`` or a cycle recurs.

    Cycle detection keys the history by predicate fingerprint (exact, and
    computable without leaving the active backend's representation), so a
    chain of backend-handle predicates never round-trips through int
    masks.  ``max_iterations`` defaults to a size-proportional bound (see
    :func:`default_iteration_limit`) with the cycle detector as the
    backstop; exceeding it raises a :class:`RuntimeError` naming the
    transformer via ``name``.
    """
    limit = (
        max_iterations
        if max_iterations is not None
        else default_iteration_limit(start.space.size)
    )
    seen = {start.fingerprint(): 0}
    history = [start]
    x = start
    for step in range(1, limit + 1):
        nxt = f(x)
        if nxt == x:
            return FixpointResult(
                converged=True,
                value=x,
                iterations=step - 1,
                name=name,
                chain=tuple(history),
            )
        fp = nxt.fingerprint()
        if fp in seen:
            cycle = history[seen[fp]:]
            return FixpointResult(
                converged=False,
                value=None,
                iterations=step,
                cycle=cycle,
                name=name,
                chain=tuple(history),
            )
        seen[fp] = step
        history.append(nxt)
        x = nxt
    label = name or getattr(f, "__name__", None) or repr(f)
    raise RuntimeError(
        f"fixpoint iteration of {label} exceeded {limit} steps over a space of "
        f"{start.space.size} states without converging or cycling; if the chain "
        f"is genuinely this long, pass max_iterations explicitly"
    )


def lfp(
    f: Callable[[Predicate], Predicate],
    space_false: Predicate,
    name: Optional[str] = None,
) -> FixpointResult:
    """Least fixed point of a monotone ``f`` by Kleene iteration from ``false``.

    ``space_false`` should be ``Predicate.false(space)``; passing a different
    start computes the limit of that chain instead.
    """
    return iterate_to_fixpoint(f, space_false, name=name)


def gfp(
    f: Callable[[Predicate], Predicate],
    space_true: Predicate,
    name: Optional[str] = None,
) -> FixpointResult:
    """Greatest fixed point of a monotone ``f`` by iteration from ``true``."""
    return iterate_to_fixpoint(f, space_true, name=name)


def is_monotone_on_chain(
    f: Callable[[Predicate], Predicate], chain: List[Predicate]
) -> bool:
    """Check ``[p ⇒ q] ⇒ [f.p ⇒ f.q]`` along consecutive elements of a chain.

    A cheap necessary condition used in diagnostics; full monotonicity
    checking lives in :mod:`repro.transformers.junctivity`.
    """
    for p, q in zip(chain, chain[1:]):
        if p.entails(q) and not f(p).entails(f(q)):
            return False
    return True
