"""Cylinders: predicates that depend only on a subset of the variables.

The paper's eq. (6) defines the *weakest cylinder*

    wcyl.V.p  ≡  (∀ V̄ :: p)

— the weakest predicate **stronger than** ``p`` which depends only on the
variables in ``V`` (``V̄`` is the complement of ``V``).  Its dual, the
*strongest cylinder* ``scyl.V.p ≡ (∃ V̄ :: p)``, is the strongest predicate
weaker than ``p`` depending only on ``V``; it is the existential projection.

Properties (7)–(12) of the paper hold by construction and are exercised in
the test suite, including the non-disjunctivity counterexample (12).

Eq. (6) is exactly *variable forgetting* (Su et al., PAPERS.md): ``scyl.V.p``
is ∃-forgetting of the variables outside ``V`` and ``wcyl.V.p`` the dual
∀-forgetting.  Explicit backends realize it as a grouped reduction over the
cylinder partition; the symbolic backend quantifies the non-observable bit
groups of the BDD directly, with no per-group sweep.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

from .backends import backend_for
from .predicate import Predicate


def wcyl(names: Iterable[str], p: Predicate) -> Predicate:
    """Weakest cylinder ``wcyl.V.p = (∀ V̄ :: p)`` (paper eq. 6).

    Holds at a state iff ``p`` holds at *every* state agreeing with it on
    the variables in ``names`` — a universal grouped reduction over the
    cylinder partition, run by the active predicate backend.
    """
    space = p.space
    backend = backend_for(p)
    table = backend.group_table(space, names)
    return backend.wrap(
        space,
        backend.quantify_groups(p.handle(backend), table, space.size, universal=True),
    )


def scyl(names: Iterable[str], p: Predicate) -> Predicate:
    """Strongest cylinder ``scyl.V.p = (∃ V̄ :: p)`` — existential projection.

    Holds at a state iff ``p`` holds at *some* state agreeing with it on
    the variables in ``names``.  Dual to :func:`wcyl`:
    ``scyl.V.p ≡ ¬ wcyl.V.(¬p)``.
    """
    space = p.space
    backend = backend_for(p)
    table = backend.group_table(space, names)
    return backend.wrap(
        space,
        backend.quantify_groups(p.handle(backend), table, space.size, universal=False),
    )


def depends_only_on(p: Predicate, names: Iterable[str]) -> bool:
    """Whether ``p`` is independent of every variable outside ``names``.

    This is the paper's notion "p depends only on variables in V": ``p`` has
    the same value in any two states that differ only outside ``V``.
    Equivalent to ``p ≡ wcyl.V.p`` (paper eq. 9) — decided as "constant on
    every cylinder group" without materializing the cylinder.
    """
    space = p.space
    backend = backend_for(p)
    table = backend.group_table(space, names)
    return backend.constant_on_groups(p.handle(backend), table, space.size)


def independent_of(p: Predicate, name: str) -> bool:
    """Whether ``p`` is independent of the single variable ``name``."""
    space = p.space
    others = [n for n in space.names if n != name]
    if not others:
        # p must be constant on the whole space.
        return p.is_everywhere() or p.is_false()
    return depends_only_on(p, others)


def support(p: Predicate) -> FrozenSet[str]:
    """The minimal set of variables ``p`` depends on.

    For predicates over product spaces the dependency relation is
    componentwise, so the minimal support is exactly the set of variables
    ``p`` is *not* independent of.
    """
    return frozenset(
        name for name in p.space.names if not independent_of(p, name)
    )


def quantify_forall(names: Iterable[str], p: Predicate) -> Predicate:
    """``(∀ names :: p)`` — universally quantify *out* the given variables.

    Note the complementary convention to :func:`wcyl`: here ``names`` are the
    variables being eliminated.  ``quantify_forall(V̄, p) == wcyl(V, p)``.
    """
    space = p.space
    keep = [n for n in space.names if n not in set(names)]
    if not keep:
        return Predicate.true(space) if p.is_everywhere() else Predicate.false(space)
    return wcyl(keep, p)


def quantify_exists(names: Iterable[str], p: Predicate) -> Predicate:
    """``(∃ names :: p)`` — existentially quantify out the given variables."""
    space = p.space
    keep = [n for n in space.names if n not in set(names)]
    if not keep:
        return Predicate.false(space) if p.is_false() else Predicate.true(space)
    return scyl(keep, p)
