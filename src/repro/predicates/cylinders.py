"""Cylinders: predicates that depend only on a subset of the variables.

The paper's eq. (6) defines the *weakest cylinder*

    wcyl.V.p  ≡  (∀ V̄ :: p)

— the weakest predicate **stronger than** ``p`` which depends only on the
variables in ``V`` (``V̄`` is the complement of ``V``).  Its dual, the
*strongest cylinder* ``scyl.V.p ≡ (∃ V̄ :: p)``, is the strongest predicate
weaker than ``p`` depending only on ``V``; it is the existential projection.

Properties (7)–(12) of the paper hold by construction and are exercised in
the test suite, including the non-disjunctivity counterexample (12).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List

from .predicate import Predicate


def wcyl(names: Iterable[str], p: Predicate) -> Predicate:
    """Weakest cylinder ``wcyl.V.p = (∀ V̄ :: p)`` (paper eq. 6).

    Holds at a state iff ``p`` holds at *every* state agreeing with it on
    the variables in ``names``.
    """
    space = p.space
    group_of, n_groups = space.cylinder_partition(names)
    # A group survives iff p holds at every member.
    all_true: List[bool] = [True] * n_groups
    mask = p.mask
    for i in range(space.size):
        if not mask >> i & 1:
            all_true[group_of[i]] = False
    out = 0
    for i in range(space.size):
        if all_true[group_of[i]]:
            out |= 1 << i
    return Predicate(space, out)


def scyl(names: Iterable[str], p: Predicate) -> Predicate:
    """Strongest cylinder ``scyl.V.p = (∃ V̄ :: p)`` — existential projection.

    Holds at a state iff ``p`` holds at *some* state agreeing with it on
    the variables in ``names``.  Dual to :func:`wcyl`:
    ``scyl.V.p ≡ ¬ wcyl.V.(¬p)``.
    """
    space = p.space
    group_of, n_groups = space.cylinder_partition(names)
    any_true: List[bool] = [False] * n_groups
    mask = p.mask
    for i in range(space.size):
        if mask >> i & 1:
            any_true[group_of[i]] = True
    out = 0
    for i in range(space.size):
        if any_true[group_of[i]]:
            out |= 1 << i
    return Predicate(space, out)


def depends_only_on(p: Predicate, names: Iterable[str]) -> bool:
    """Whether ``p`` is independent of every variable outside ``names``.

    This is the paper's notion "p depends only on variables in V": ``p`` has
    the same value in any two states that differ only outside ``V``.
    Equivalent to ``p ≡ wcyl.V.p`` (paper eq. 9).
    """
    space = p.space
    group_of, n_groups = space.cylinder_partition(names)
    # p must be constant on every group.
    seen: List[int] = [-1] * n_groups  # -1 unseen, else 0/1
    mask = p.mask
    for i in range(space.size):
        bit = mask >> i & 1
        g = group_of[i]
        if seen[g] == -1:
            seen[g] = bit
        elif seen[g] != bit:
            return False
    return True


def independent_of(p: Predicate, name: str) -> bool:
    """Whether ``p`` is independent of the single variable ``name``."""
    space = p.space
    others = [n for n in space.names if n != name]
    if not others:
        # p must be constant on the whole space.
        return p.is_everywhere() or p.is_false()
    return depends_only_on(p, others)


def support(p: Predicate) -> FrozenSet[str]:
    """The minimal set of variables ``p`` depends on.

    For predicates over product spaces the dependency relation is
    componentwise, so the minimal support is exactly the set of variables
    ``p`` is *not* independent of.
    """
    return frozenset(
        name for name in p.space.names if not independent_of(p, name)
    )


def quantify_forall(names: Iterable[str], p: Predicate) -> Predicate:
    """``(∀ names :: p)`` — universally quantify *out* the given variables.

    Note the complementary convention to :func:`wcyl`: here ``names`` are the
    variables being eliminated.  ``quantify_forall(V̄, p) == wcyl(V, p)``.
    """
    space = p.space
    keep = [n for n in space.names if n not in set(names)]
    if not keep:
        return Predicate.true(space) if p.is_everywhere() else Predicate.false(space)
    return wcyl(keep, p)


def quantify_exists(names: Iterable[str], p: Predicate) -> Predicate:
    """``(∃ names :: p)`` — existentially quantify out the given variables."""
    space = p.space
    keep = [n for n in space.names if n not in set(names)]
    if not keep:
        return Predicate.false(space) if p.is_false() else Predicate.true(space)
    return scyl(keep, p)
