"""Semantic predicates as exact bitsets over a finite state space.

A predicate is a Boolean valued total function on the state space (paper
section 2).  Over a finite space this is exactly a subset of states, which we
represent as a Python integer bitmask: bit ``i`` is set iff the predicate
holds in the state with index ``i``.  All the pointwise operators of the
paper's predicate calculus — ``∧ ∨ ¬ ⇒ ⇐ ≡`` — become single integer
operations, and the *everywhere* operator ``[p]`` is a comparison against the
full mask.

Note the paper's (and Dijkstra–Scholten's) convention: ``p ⇒ q`` applied
pointwise is itself a predicate; universal validity is written ``[p ⇒ q]``.
We mirror this: :meth:`Predicate.implies` is pointwise, and
:meth:`Predicate.entails` / :func:`everywhere` close it under ``[·]``.

Representation is pluggable (:mod:`repro.predicates.backends`): alongside
the exact int mask, a predicate may carry a *backend handle* (e.g. a
packed numpy word array).  Predicates produced by backend kernels hold
only the handle and materialize ``.mask`` lazily, so whole fixpoint chains
stay in array form; the two views are kept interchangeable and all
operators transparently route through whichever is present.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Optional, Union

from ..statespace import State, StateSpace
from . import limits


class BackendMismatchError(TypeError):
    """Two predicates bound to *different* handle-keeping backends met.

    Combining them would silently round-trip one side through an int mask
    (defeating the backend's representation, and impossible for symbolic
    spaces).  The fix is to keep a chain on one backend — convert
    explicitly with ``p.handle(backend)`` / ``backend.wrap`` if mixing is
    really intended.
    """

    def __init__(self, left, right):
        super().__init__(
            f"cannot combine predicates from different backends: "
            f"{left.name!r} vs {right.name!r}; keep the chain on one backend "
            "or convert explicitly via Predicate.handle(backend)"
        )
        self.left = left
        self.right = right


class Predicate:
    """A subset of a state space, closed under the predicate calculus.

    Instances are immutable.  Operators::

        p & q    pointwise conjunction          p | q    pointwise disjunction
        ~p       pointwise negation             p ^ q    pointwise xor
        p - q    p ∧ ¬q
        p.implies(q)   pointwise ⇒ (a Predicate)
        p.iff(q)       pointwise ≡ (a Predicate)
        p.entails(q)   the Boolean [p ⇒ q]
        p == q         the Boolean [p ≡ q]
    """

    __slots__ = ("space", "_mask", "_backend", "_handle", "_fp")

    def __init__(self, space: StateSpace, mask: int):
        # Shift test instead of comparing against full_mask: huge (symbolic)
        # spaces must never materialize a 2^size-bit constant.
        if mask < 0 or mask >> space.size:
            raise ValueError(
                f"mask {mask:#x} out of range for a space of {space.size} states"
            )
        self.space = space
        self._mask: Optional[int] = mask
        self._backend = None
        self._handle = None
        self._fp: Optional[bytes] = None

    @classmethod
    def _from_handle(cls, space: StateSpace, backend, handle) -> "Predicate":
        """A predicate holding only a backend handle (mask materialized lazily).

        Internal — backends guarantee the handle is in range and keeps
        out-of-space bits zero, so no validation happens here.
        """
        p = cls.__new__(cls)
        p.space = space
        p._mask = None
        p._backend = backend
        p._handle = handle
        p._fp = None
        return p

    @property
    def mask(self) -> int:
        """The exact int bitmask (computed from the handle on first access)."""
        m = self._mask
        if m is None:
            m = self._backend.to_mask(self._handle, self.space.size)
            self._mask = m
        return m

    def handle(self, backend):
        """This predicate's handle under ``backend`` (cached on the instance)."""
        if self._backend is backend and self._handle is not None:
            return self._handle
        h = backend.from_mask_in(self.space, self.mask)
        self._backend = backend
        self._handle = h
        return h

    def fingerprint(self) -> bytes:
        """Canonical little-endian bytes — identical across backends.

        The key the transformer / knowledge-resolution caches use; equal
        predicates fingerprint equally no matter how they were computed.
        Memoized per instance — every cache layer hashes it.
        """
        fp = self._fp
        if fp is None:
            if self._mask is None:
                fp = self._backend.fingerprint(self._handle, self.space.size)
            elif self.space.size > limits.get_limit("explicit"):
                # Mask-born predicate over a symbolic-scale space (e.g. a
                # sparse from_indices): fingerprint structurally via the
                # symbolic backend rather than a 2^size-bit byte string.
                bk = _symbolic_backend()
                fp = bk.fingerprint(self.handle(bk), self.space.size)
            else:
                fp = self._mask.to_bytes((self.space.size + 7) // 8, "little")
            self._fp = fp
        return fp

    def words_view(self) -> memoryview:
        """The bitset as a read-only little-endian uint64-word buffer.

        The canonical wire/arena form of an explicit predicate —
        backend-independent layout, ``(size + 63) // 64 * 8`` bytes.
        Zero-copy on word-array backends (the view aliases the handle's
        storage); see :meth:`from_buffer` for the inverse.
        """
        from .backends import backend_for

        backend = backend_for(self)
        return backend.words_view(self.handle(backend), self.space.size)

    @classmethod
    def from_buffer(cls, space: StateSpace, buf, backend=None) -> "Predicate":
        """A predicate over ``space`` wrapping an exported words buffer.

        Zero-copy on word-array backends: the predicate's handle aliases
        ``buf`` (the caller keeps it alive — e.g. an attached shared-memory
        segment) and refuses writes.  ``backend`` defaults to the active
        selection for ``space``'s size.
        """
        from .backends import backend_for_size

        if backend is None:
            backend = backend_for_size(space.size)
        return backend.wrap(space, backend.from_buffer_in(space, buf))

    def _route(self, other: "Predicate"):
        """The handle-keeping backend to combine under, or None for int masks.

        Raises :class:`BackendMismatchError` when both operands are bound
        to *different* handle-keeping backends — never silently falls back
        to an int-mask round-trip.  "Bound" means handle-*only*: a
        predicate whose mask is materialized merely caches a handle (a
        long-lived predicate may accumulate handles from several backend
        scopes over its lifetime) and re-routes freely, no round-trip
        involved.
        """
        mine = self._backend
        if not (mine is not None and mine.keeps_handles and self._handle is not None):
            mine = None
        theirs = other._backend
        if not (
            theirs is not None
            and theirs.keeps_handles
            and other._handle is not None
        ):
            theirs = None
        if mine is not None and theirs is not None and mine is not theirs:
            if self._mask is None and other._mask is None:
                raise BackendMismatchError(mine, theirs)
            # At least one side still has its mask: keep the side that
            # exists only as a handle (both masked: keep the left).
            return mine if other._mask is not None else theirs
        return mine if mine is not None else theirs

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def true(cls, space: StateSpace) -> "Predicate":
        """The predicate holding everywhere.

        On spaces past the explicit-state limit this is a symbolic handle
        (the full mask would be a 2^size-bit integer).
        """
        if space.size > limits.get_limit("explicit"):
            bk = _symbolic_backend()
            return cls._from_handle(space, bk, bk.constant(space, True))
        return cls(space, space.full_mask)

    @classmethod
    def false(cls, space: StateSpace) -> "Predicate":
        """The predicate holding nowhere."""
        if space.size > limits.get_limit("explicit"):
            bk = _symbolic_backend()
            return cls._from_handle(space, bk, bk.constant(space, False))
        return cls(space, 0)

    @classmethod
    def from_callable(
        cls, space: StateSpace, fn: Callable[[State], Any]
    ) -> "Predicate":
        """Lift a Python function on states to a predicate (evaluated once per state)."""
        limits.check_explicit_size(space.size, "Predicate.from_callable")
        mask = 0
        for i in range(space.size):
            if fn(State(space, i)):
                mask |= 1 << i
        return cls(space, mask)

    @classmethod
    def from_indices(cls, space: StateSpace, indices: Iterable[int]) -> "Predicate":
        """The predicate holding exactly at the given state indices."""
        mask = 0
        for i in indices:
            if not 0 <= i < space.size:
                raise IndexError(f"state index {i} out of range")
            mask |= 1 << i
        return cls(space, mask)

    @classmethod
    def from_fingerprint(cls, space: StateSpace, fingerprint: bytes) -> "Predicate":
        """Rebuild a predicate from its canonical :meth:`fingerprint` bytes.

        The inverse of :meth:`fingerprint`, used by certificate
        deserialization.  Validation is strict: the byte string must have
        exactly ``ceil(size / 8)`` bytes and may not set bits at positions
        ``≥ size`` — both indicate an artifact from a different space (or a
        tampered one), never a representable predicate.
        """
        expected = (space.size + 7) // 8
        if len(fingerprint) != expected:
            raise ValueError(
                f"fingerprint has {len(fingerprint)} bytes; a space of "
                f"{space.size} states needs exactly {expected}"
            )
        mask = int.from_bytes(fingerprint, "little")
        if mask > space.full_mask:
            raise ValueError(
                f"fingerprint sets bits at state indices >= {space.size}"
            )
        return cls(space, mask)

    # ------------------------------------------------------------------
    # the predicate calculus (pointwise operators)
    # ------------------------------------------------------------------

    def _check(self, other: "Predicate") -> None:
        if not isinstance(other, Predicate):
            raise TypeError(f"expected a Predicate, got {type(other).__name__}")
        if other.space is not self.space and other.space != self.space:
            raise ValueError("predicates over different state spaces")

    def __and__(self, other: "Predicate") -> "Predicate":
        self._check(other)
        bk = self._route(other)
        if bk is not None:
            size = self.space.size
            return Predicate._from_handle(
                self.space, bk, bk.and_(self.handle(bk), other.handle(bk), size)
            )
        return Predicate(self.space, self.mask & other.mask)

    def __or__(self, other: "Predicate") -> "Predicate":
        self._check(other)
        bk = self._route(other)
        if bk is not None:
            size = self.space.size
            return Predicate._from_handle(
                self.space, bk, bk.or_(self.handle(bk), other.handle(bk), size)
            )
        return Predicate(self.space, self.mask | other.mask)

    def __xor__(self, other: "Predicate") -> "Predicate":
        self._check(other)
        bk = self._route(other)
        if bk is not None:
            size = self.space.size
            return Predicate._from_handle(
                self.space, bk, bk.xor(self.handle(bk), other.handle(bk), size)
            )
        return Predicate(self.space, self.mask ^ other.mask)

    def __invert__(self) -> "Predicate":
        bk = self._backend
        if bk is not None and bk.keeps_handles and self._handle is not None:
            size = self.space.size
            return Predicate._from_handle(
                self.space, bk, bk.not_(self._handle, size)
            )
        return Predicate(self.space, self.space.full_mask & ~self.mask)

    def __sub__(self, other: "Predicate") -> "Predicate":
        self._check(other)
        bk = self._route(other)
        if bk is not None:
            size = self.space.size
            return Predicate._from_handle(
                self.space, bk, bk.diff(self.handle(bk), other.handle(bk), size)
            )
        return Predicate(self.space, self.mask & ~other.mask)

    def implies(self, other: "Predicate") -> "Predicate":
        """Pointwise ``self ⇒ other`` (a predicate, per the paper's convention)."""
        self._check(other)
        bk = self._route(other)
        if bk is not None:
            size = self.space.size
            return Predicate._from_handle(
                self.space,
                bk,
                bk.or_(
                    bk.not_(self.handle(bk), size), other.handle(bk), size
                ),
            )
        return Predicate(
            self.space, (self.space.full_mask & ~self.mask) | other.mask
        )

    def iff(self, other: "Predicate") -> "Predicate":
        """Pointwise ``self ≡ other``."""
        self._check(other)
        bk = self._route(other)
        if bk is not None:
            size = self.space.size
            return Predicate._from_handle(
                self.space,
                bk,
                bk.not_(
                    bk.xor(self.handle(bk), other.handle(bk), size), size
                ),
            )
        return Predicate(self.space, self.space.full_mask & ~(self.mask ^ other.mask))

    # ------------------------------------------------------------------
    # the everywhere operator [·]
    # ------------------------------------------------------------------

    def is_everywhere(self) -> bool:
        """The Boolean ``[self]`` — true iff the predicate holds in every state."""
        if self._mask is None:
            return self._backend.is_full(self._handle, self.space.size)
        return self._mask == self.space.full_mask

    def is_false(self) -> bool:
        """True iff the predicate holds in no state."""
        if self._mask is None:
            return self._backend.is_false(self._handle, self.space.size)
        return self._mask == 0

    def entails(self, other: "Predicate") -> bool:
        """The Boolean ``[self ⇒ other]`` ("self is stronger than other")."""
        self._check(other)
        bk = self._route(other)
        if bk is not None and (self._mask is None or other._mask is None):
            size = self.space.size
            return bk.is_false(
                bk.diff(self.handle(bk), other.handle(bk), size), size
            )
        return self.mask & ~other.mask == 0

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Predicate):
            self._check(other)
            if self._mask is not None and other._mask is not None:
                return self._mask == other._mask
            bk = self._backend
            if (
                bk is not None
                and bk is other._backend
                and self._handle is not None
                and other._handle is not None
            ):
                return bk.equal(self._handle, other._handle, self.space.size)
            return self.mask == other.mask
        return NotImplemented

    def __hash__(self) -> int:
        return hash((id(self.space), self.fingerprint()))

    # ------------------------------------------------------------------
    # extension queries
    # ------------------------------------------------------------------

    def holds_at(self, state: Union[State, int]) -> bool:
        """Whether the predicate holds in a given state (or state index)."""
        index = state.index if isinstance(state, State) else state
        if not 0 <= index < self.space.size:
            raise IndexError(f"state index {index} out of range")
        # Prefer a cached handle: O(1) word probe instead of a big-int shift.
        if self._handle is not None:
            return self._backend.test_bit(self._handle, index)
        return bool(self.mask >> index & 1)

    def count(self) -> int:
        """Number of states satisfying the predicate."""
        if self._mask is None:
            return self._backend.popcount(self._handle, self.space.size)
        return self._mask.bit_count()

    def indices(self) -> Iterator[int]:
        """Indices of satisfying states, ascending."""
        mask = self.mask
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low

    def states(self) -> Iterator[State]:
        """Satisfying states, in index order."""
        return (State(self.space, i) for i in self.indices())

    def example(self) -> State:
        """Some satisfying state (the least-index one).

        Raises :class:`ValueError` when the predicate is everywhere false.
        """
        if self._mask is None:
            idx = self._backend.some_index(self._handle, self.space.size)
            if idx is None:
                raise ValueError("predicate is everywhere false; no example state")
            return State(self.space, idx)
        if self.mask == 0:
            raise ValueError("predicate is everywhere false; no example state")
        return State(self.space, (self.mask & -self.mask).bit_length() - 1)

    def __bool__(self) -> bool:
        raise TypeError(
            "a Predicate has no implicit truth value; use [p] via is_everywhere(), "
            "satisfiability via not is_false(), or [p ⇒ q] via entails()"
        )

    def __repr__(self) -> str:
        tag = ""
        bk = self._backend
        if bk is not None and self._handle is not None:
            tag = f"; backend={bk.name}, handle={type(self._handle).__name__}"
        n = self.count()
        if n == 0:
            return f"Predicate(false{tag})"
        if n == self.space.size:
            return f"Predicate(true{tag})"
        if n <= 4 and self.space.size <= limits.get_limit("explicit"):
            shown = ", ".join(repr(s.as_dict()) for s in self.states())
            return f"Predicate({{{shown}}}{tag})"
        return f"Predicate({n}/{self.space.size} states{tag})"


def _symbolic_backend():
    """The registered symbolic (ROBDD) backend — lazy to avoid an import cycle."""
    from .backends import get_backend

    return get_backend("robdd")


def everywhere(p: Predicate) -> bool:
    """The everywhere operator ``[p]`` as a free function."""
    return p.is_everywhere()


def conjunction(space: StateSpace, predicates: Iterable[Predicate]) -> Predicate:
    """``(∀ v : v ∈ W : v)`` — conjunction over a (possibly empty) bag.

    The empty conjunction is ``true``, matching universal quantification
    over an empty range.  Folds with the ``&`` operator so handle-backed
    (e.g. symbolic) operands stay on their backend.
    """
    acc = Predicate.true(space)
    for p in predicates:
        if p.space is not space and p.space != space:
            raise ValueError("predicates over different state spaces")
        acc = acc & p
    return acc


def disjunction(space: StateSpace, predicates: Iterable[Predicate]) -> Predicate:
    """``(∃ v : v ∈ W : v)`` — disjunction over a (possibly empty) bag.

    The empty disjunction is ``false``.  Folds with ``|`` so handle-backed
    operands stay on their backend.
    """
    acc = Predicate.false(space)
    for p in predicates:
        if p.space is not space and p.space != space:
            raise ValueError("predicates over different state spaces")
        acc = acc | p
    return acc
