"""Exact semantic predicates over finite state spaces, with cylinders and fixpoints."""

from . import limits
from .backends import (
    PredicateBackend,
    available_backends,
    get_backend,
    get_default_backend,
    set_default_backend,
    using_backend,
)
from .builders import pred, var_cmp, var_eq, var_in, var_true, vars_cmp
from .cache import TransformerCache
from .cylinders import (
    depends_only_on,
    independent_of,
    quantify_exists,
    quantify_forall,
    scyl,
    support,
    wcyl,
)
from .lattice import (
    FixpointResult,
    default_iteration_limit,
    gfp,
    iterate_to_fixpoint,
    lfp,
)
from .limits import ExplicitStateLimitError, get_limit, set_limit
from .predicate import (
    BackendMismatchError,
    Predicate,
    conjunction,
    disjunction,
    everywhere,
)

__all__ = [
    "BackendMismatchError",
    "ExplicitStateLimitError",
    "PredicateBackend",
    "get_limit",
    "set_limit",
    "limits",
    "TransformerCache",
    "available_backends",
    "default_iteration_limit",
    "get_backend",
    "get_default_backend",
    "set_default_backend",
    "using_backend",
    "Predicate",
    "conjunction",
    "disjunction",
    "everywhere",
    "pred",
    "var_cmp",
    "var_eq",
    "var_in",
    "var_true",
    "vars_cmp",
    "wcyl",
    "scyl",
    "depends_only_on",
    "independent_of",
    "support",
    "quantify_forall",
    "quantify_exists",
    "FixpointResult",
    "lfp",
    "gfp",
    "iterate_to_fixpoint",
]
