"""Semantic predicate transformers of statements and programs.

For a single deterministic, total statement ``s`` with successor function
``succ`` the transformers are exact set operations:

* ``sp.s.p``  — strongest postcondition: the image of ``p`` under ``succ``;
* ``wp.s.q``  — weakest precondition: the preimage of ``q`` under ``succ``.

Because UNITY statements always terminate, ``wp = wlp`` (paper section 5).
At program level, eq. (26) defines

    SP.p ≡ (∃ s : s a statement of the program : sp.s.p)

— the strongest predicate guaranteed after *one* transition from a
``p``-state.  ``SP`` for standard programs is total, monotonic and
or-continuous, the properties section 2 assumes.

The actual image/preimage kernels live in the pluggable predicate
backends (:mod:`repro.predicates.backends`); this module routes through
whichever backend a predicate is bound to (or the default policy picks),
and memoizes every application in the program's
:class:`~repro.predicates.cache.TransformerCache` keyed by statement name
and predicate fingerprint.
"""

from __future__ import annotations

from typing import Callable, List

from ..predicates import Predicate
from ..predicates.backends import backend_for
from ..unity import Program, Statement

#: Program-level transformers are cached under this pseudo-statement name.
_PROGRAM_KEY = "@program"


def sp_statement(program: Program, stmt: Statement, p: Predicate) -> Predicate:
    """Strongest postcondition of one statement: image of ``p``."""
    _check_space(program, p)
    cache = program.transformer_cache
    hit = cache.lookup("sp", stmt.name, p)
    if hit is not None:
        return hit
    backend = backend_for(p)
    table = program.kernel_table(backend, stmt)
    out = backend.wrap(
        program.space,
        backend.image(p.handle(backend), table, program.space.size),
    )
    cache.store("sp", stmt.name, p, out)
    return out


def wp_statement(program: Program, stmt: Statement, q: Predicate) -> Predicate:
    """Weakest precondition of one statement: preimage of ``q``.

    Deterministic total statements make ``wp`` universally conjunctive *and*
    universally disjunctive — both verified in the test suite.
    """
    _check_space(program, q)
    cache = program.transformer_cache
    hit = cache.lookup("wp", stmt.name, q)
    if hit is not None:
        return hit
    backend = backend_for(q)
    table = program.kernel_table(backend, stmt)
    out = backend.wrap(
        program.space,
        backend.preimage(q.handle(backend), table, program.space.size),
    )
    cache.store("wp", stmt.name, q, out)
    return out


def wlp_statement(program: Program, stmt: Statement, q: Predicate) -> Predicate:
    """Weakest liberal precondition; equals ``wp`` for terminating statements."""
    return wp_statement(program, stmt, q)


def sp_program(program: Program, p: Predicate) -> Predicate:
    """Program-level ``SP.p`` per eq. (26): disjunction of per-statement ``sp``."""
    _check_space(program, p)
    cache = program.transformer_cache
    hit = cache.lookup("SP", _PROGRAM_KEY, p)
    if hit is not None:
        return hit
    out = None
    for stmt in program.statements:
        post = sp_statement(program, stmt, p)
        out = post if out is None else out | post
    cache.store("SP", _PROGRAM_KEY, p, out)
    return out


def wp_all_statements(program: Program, q: Predicate) -> Predicate:
    """``(∀ s :: wp.s.q)`` — states from which *every* statement reaches ``q``."""
    _check_space(program, q)
    cache = program.transformer_cache
    hit = cache.lookup("WP", _PROGRAM_KEY, q)
    if hit is not None:
        return hit
    out = None
    for stmt in program.statements:
        pre = wp_statement(program, stmt, q)
        out = pre if out is None else out & pre
    cache.store("WP", _PROGRAM_KEY, q, out)
    return out


def sp_transformer(program: Program) -> Callable[[Predicate], Predicate]:
    """The program's ``SP`` as a unary function, for the fixpoint machinery."""
    return lambda p: sp_program(program, p)


def transition_masks(program: Program) -> List[List[int]]:
    """Per-statement successor arrays (convenience for graph algorithms)."""
    return [program.successor_array(s) for s in program.statements]


def _check_space(program: Program, p: Predicate) -> None:
    if p.space != program.space:
        raise ValueError(
            f"predicate over a different state space than program {program.name!r}"
        )
