"""Semantic predicate transformers of statements and programs.

For a single deterministic, total statement ``s`` with successor function
``succ`` the transformers are exact set operations:

* ``sp.s.p``  — strongest postcondition: the image of ``p`` under ``succ``;
* ``wp.s.q``  — weakest precondition: the preimage of ``q`` under ``succ``.

Because UNITY statements always terminate, ``wp = wlp`` (paper section 5).
At program level, eq. (26) defines

    SP.p ≡ (∃ s : s a statement of the program : sp.s.p)

— the strongest predicate guaranteed after *one* transition from a
``p``-state.  ``SP`` for standard programs is total, monotonic and
or-continuous, the properties section 2 assumes.
"""

from __future__ import annotations

from typing import Callable, List

from ..predicates import Predicate
from ..unity import Program, Statement

#: Below this many states the pure-int bit loops beat the numpy round-trip.
_VECTORIZE_THRESHOLD = 4096


def sp_statement(program: Program, stmt: Statement, p: Predicate) -> Predicate:
    """Strongest postcondition of one statement: image of ``p``."""
    _check_space(program, p)
    size = program.space.size
    if size >= _VECTORIZE_THRESHOLD:
        import numpy as np

        from ..predicates.npbits import array_to_mask, mask_to_array

        successors = program.successor_np(stmt)
        sources = np.flatnonzero(mask_to_array(p.mask, size))
        out = np.zeros(size, dtype=bool)
        out[successors[sources]] = True
        return Predicate(program.space, array_to_mask(out))
    succ = program.successor_array(stmt)
    out = 0
    mask = p.mask
    while mask:
        low = mask & -mask
        i = low.bit_length() - 1
        out |= 1 << succ[i]
        mask ^= low
    return Predicate(program.space, out)


def wp_statement(program: Program, stmt: Statement, q: Predicate) -> Predicate:
    """Weakest precondition of one statement: preimage of ``q``.

    Deterministic total statements make ``wp`` universally conjunctive *and*
    universally disjunctive — both verified in the test suite.
    """
    _check_space(program, q)
    size = program.space.size
    if size >= _VECTORIZE_THRESHOLD:
        from ..predicates.npbits import array_to_mask, mask_to_array

        successors = program.successor_np(stmt)
        target = mask_to_array(q.mask, size)
        return Predicate(program.space, array_to_mask(target[successors]))
    succ = program.successor_array(stmt)
    out = 0
    qmask = q.mask
    for i in range(program.space.size):
        if qmask >> succ[i] & 1:
            out |= 1 << i
    return Predicate(program.space, out)


def wlp_statement(program: Program, stmt: Statement, q: Predicate) -> Predicate:
    """Weakest liberal precondition; equals ``wp`` for terminating statements."""
    return wp_statement(program, stmt, q)


def sp_program(program: Program, p: Predicate) -> Predicate:
    """Program-level ``SP.p`` per eq. (26): disjunction of per-statement ``sp``."""
    _check_space(program, p)
    out = 0
    for stmt in program.statements:
        out |= sp_statement(program, stmt, p).mask
    return Predicate(program.space, out)


def wp_all_statements(program: Program, q: Predicate) -> Predicate:
    """``(∀ s :: wp.s.q)`` — states from which *every* statement reaches ``q``."""
    _check_space(program, q)
    out = program.space.full_mask
    for stmt in program.statements:
        out &= wp_statement(program, stmt, q).mask
    return Predicate(program.space, out)


def sp_transformer(program: Program) -> Callable[[Predicate], Predicate]:
    """The program's ``SP`` as a unary function, for the fixpoint machinery."""
    return lambda p: sp_program(program, p)


def transition_masks(program: Program) -> List[List[int]]:
    """Per-statement successor arrays (convenience for graph algorithms)."""
    return [program.successor_array(s) for s in program.statements]


def _check_space(program: Program, p: Predicate) -> None:
    if p.space != program.space:
        raise ValueError(
            f"predicate over a different state space than program {program.name!r}"
        )
