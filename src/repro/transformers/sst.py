"""The strongest stable predicate ``sst`` and the strongest invariant ``SI``.

Paper eq. (1) defines, for a program with strongest postcondition ``SP``::

    sst.p  ≡  strongest x : [SP.x ⇒ x] ∧ [p ⇒ x]

i.e. the strongest *stable* predicate weaker than ``p``.  Eq. (3) computes it
as the limit of the ascending Kleene chain of ``f.x = SP.x ∨ p`` — for
monotone, or-continuous ``SP`` (every standard program) this exists, is
unique (eq. 2), and ``sst`` itself is monotone (eq. 4).

The *strongest invariant* is ``SI = sst.init`` — exactly the predicate
characterizing the reachable states — and invariance of ``p`` is
``[SI ⇒ p]`` (eq. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..predicates import Predicate, iterate_to_fixpoint
from ..unity import Program
from .semantics import sp_program


@dataclass(frozen=True)
class SstResult:
    """``sst.p`` with the Kleene iteration count and chain (certificate data)."""

    predicate: Predicate
    iterations: int
    chain: Tuple[Predicate, ...] = ()
    name: str = ""


def sst(program: Program, p: Predicate) -> SstResult:
    """Strongest stable predicate weaker than ``p`` (eqs. 1–3).

    Runs the chain ``false, f.false, f².false, …`` with ``f.x = SP.x ∨ p``.
    For a standard program ``f`` is monotone, so convergence is guaranteed
    in at most ``space.size`` steps.

    ``SP`` distributes over ``∨`` (each statement's SP is an image), so
    along the ascending chain ``SP.x_n = SP.x_{n-1} ∨ SP.(x_n ∖ x_{n-1})``
    — each step images only the *frontier* instead of the whole
    accumulated set.  The iterates are set-identical to the naive chain
    (same fingerprints, same certificates); on the symbolic backend this
    is what keeps 2^40-state chains tractable, and the whole chain runs
    on backend handles end to end.
    """
    space = program.space
    prev: Predicate = Predicate.false(space)
    prev_sp: Predicate = prev

    def f(x: Predicate) -> Predicate:
        nonlocal prev, prev_sp
        sp_x = prev_sp | sp_program(program, x - prev)
        prev, prev_sp = x, sp_x
        return sp_x | p

    label = f"sst chain of {program.name!r} (eq. 3)"
    result = iterate_to_fixpoint(f, Predicate.false(space), name=label)
    value = result.require()
    return SstResult(
        predicate=value,
        iterations=result.iterations,
        chain=result.chain,
        name=label,
    )


def strongest_invariant(program: Program) -> Predicate:
    """``SI = sst.init`` — the reachable-state predicate (eq. 5 context).

    For knowledge-based programs this raises: their SI is defined by the
    *non-monotone* fixed-point equation (25) and needs
    :mod:`repro.core.kbp` instead.
    """
    if program.is_knowledge_based():
        raise ValueError(
            f"program {program.name!r} is knowledge-based; its SI is defined by "
            "eq. (25) — use repro.core.kbp.solve_si"
        )
    return sst(program, program.init).predicate


def is_stable(program: Program, p: Predicate) -> bool:
    """Whether ``p`` is stable: ``[SP.p ⇒ p]`` (once true, stays true)."""
    return sp_program(program, p).entails(p)


def is_invariant(program: Program, p: Predicate) -> bool:
    """Whether ``invariant p`` holds, via the definition ``[SI ⇒ p]`` (eq. 5)."""
    return strongest_invariant(program).entails(p)


def reachable(program: Program) -> Predicate:
    """Alias for :func:`strongest_invariant`, named operationally."""
    return strongest_invariant(program)


def largest_inductive_subset(program: Program, p: Predicate) -> Predicate:
    """The weakest *inductive* predicate stronger than ``p``.

    Computed as the greatest fixpoint of ``X ↦ p ∧ (∀s :: wp.s.X)``,
    descending from ``p``.  This is the dual of :func:`sst`:

    * ``sst.p``  — strongest **stable** predicate *weaker* than ``p``;
    * this      — weakest **stable** predicate *stronger* than ``p``.

    ``invariant p`` holds iff ``init`` implies this subset — the basis of
    the automatic invariant-strengthening rule in the proof kernel, which
    mechanizes the hunt for the auxiliary ``I`` of rule (32).
    """
    from .semantics import wp_statement

    x = p
    while True:
        nxt = p
        for stmt in program.statements:
            nxt = nxt & wp_statement(program, stmt, x)
            if nxt.is_false():
                break
        if nxt == x:
            return x
        x = nxt


def auto_invariant(program: Program, p: Predicate) -> bool:
    """Decide ``invariant p`` by automatic strengthening (no SI needed).

    Sound and complete: equivalent to ``[SI ⇒ p]`` but computed from the
    ``p`` side.
    """
    return program.init.entails(largest_inductive_subset(program, p))
