"""Junctivity analysis of predicate transformers (paper section 2, [DS90]).

A predicate transformer ``f`` is

* **monotonic** if ``[p ⇒ q] ⇒ [f.p ⇒ f.q]``;
* **universally conjunctive** if ``f.(∀W) = (∀ v ∈ W : f.v)`` for *all* bags
  ``W`` (including the empty bag, so ``f.true = true``);
* **finitely disjunctive** if ``f.(p ∨ q) = f.p ∨ f.q``;
* **or-continuous** if it distributes over limits of monotone chains.

On a finite space every predicate is a finite meet of co-atoms
(complements of singletons), which turns universal conjunctivity into a
checkable condition:  ``f`` is universally conjunctive iff for every ``p``,
``f.p = f.true ∧ (∧ i ∉ p : f.(¬{i}))``.  Likewise every monotone function
on a finite lattice is automatically or-continuous (all chains stabilize).

Exhaustive checks enumerate all ``2^n`` predicates and are meant for the
small counterexample spaces of the paper; sampled checks (seeded RNG) cover
larger spaces probabilistically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

from ..predicates import Predicate, limits
from ..statespace import StateSpace

Transformer = Callable[[Predicate], Predicate]


def _max_exhaustive_states() -> int:
    """The ``enumeration`` limit (``repro.predicates.limits``), kept current."""
    return limits.get_limit("enumeration")


#: Backward-compatible alias of the unified ``enumeration`` limit's default.
MAX_EXHAUSTIVE_STATES = _max_exhaustive_states()


@dataclass(frozen=True)
class Counterexample:
    """Witness predicates refuting a junctivity property."""

    property_name: str
    witnesses: Tuple[Predicate, ...]

    def __repr__(self) -> str:
        return f"Counterexample({self.property_name}, {len(self.witnesses)} witnesses)"


def all_predicates(space: StateSpace) -> Iterator[Predicate]:
    """Every predicate over ``space`` — 2^size of them; guard the size."""
    limits.check_enumeration_size(space.size)
    for mask in range(1 << space.size):
        yield Predicate(space, mask)


def random_predicate(space: StateSpace, rng: random.Random) -> Predicate:
    """A uniformly random predicate."""
    return Predicate(space, rng.getrandbits(space.size))


def _pairs(
    space: StateSpace,
    samples: Optional[int],
    rng: Optional[random.Random],
) -> Iterator[Tuple[Predicate, Predicate]]:
    if samples is None:
        for p in all_predicates(space):
            for q in all_predicates(space):
                yield p, q
    else:
        rng = rng or random.Random(0)
        for _ in range(samples):
            yield random_predicate(space, rng), random_predicate(space, rng)


def check_monotonic(
    f: Transformer,
    space: StateSpace,
    samples: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> Optional[Counterexample]:
    """Refute or (exhaustively/probabilistically) confirm monotonicity.

    Returns None when no counterexample was found.  With ``samples=None``
    the check is exhaustive and therefore a proof on small spaces.
    """
    for p, q in _pairs(space, samples, rng):
        if samples is not None:
            # Random pairs rarely satisfy p ⇒ q; force the inclusion.
            q = p | q
        if p.entails(q) and not f(p).entails(f(q)):
            return Counterexample("monotonic", (p, q))
    return None


def check_finitely_disjunctive(
    f: Transformer,
    space: StateSpace,
    samples: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> Optional[Counterexample]:
    """Refute or confirm ``f.p ∨ f.q = f.(p ∨ q)``."""
    for p, q in _pairs(space, samples, rng):
        if not (f(p) | f(q)) == f(p | q):
            return Counterexample("finitely_disjunctive", (p, q))
    return None


def check_finitely_conjunctive(
    f: Transformer,
    space: StateSpace,
    samples: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> Optional[Counterexample]:
    """Refute or confirm ``f.p ∧ f.q = f.(p ∧ q)``."""
    for p, q in _pairs(space, samples, rng):
        if not (f(p) & f(q)) == f(p & q):
            return Counterexample("finitely_conjunctive", (p, q))
    return None


def check_universally_conjunctive(
    f: Transformer, space: StateSpace
) -> Optional[Counterexample]:
    """Refute or confirm universal conjunctivity exactly.

    Uses the co-atom decomposition: ``p = ∧_{i ∉ p} ¬{i}`` (with the empty
    meet being ``true``), so universal conjunctivity over *all* bags reduces
    to agreement on these canonical meets plus finite conjunctivity.
    """
    ce = check_finitely_conjunctive(f, space)
    if ce is not None:
        return Counterexample("universally_conjunctive", ce.witnesses)
    f_true = f(Predicate.true(space))
    if not f_true == Predicate.true(space):
        # The empty bag: (∀v ∈ ∅ : f.v) = true must equal f.(∀v ∈ ∅ : v) = f.true.
        return Counterexample("universally_conjunctive", (Predicate.true(space),))
    coatom_images: List[Predicate] = [
        f(~Predicate.from_indices(space, [i])) for i in range(space.size)
    ]
    for p in all_predicates(space):
        expected = f_true
        for i in range(space.size):
            if not p.holds_at(i):
                expected = expected & coatom_images[i]
        if not f(p) == expected:
            return Counterexample("universally_conjunctive", (p,))
    return None


def check_universally_disjunctive(
    f: Transformer, space: StateSpace
) -> Optional[Counterexample]:
    """Refute or confirm universal disjunctivity exactly (dual decomposition)."""
    ce = check_finitely_disjunctive(f, space)
    if ce is not None:
        return Counterexample("universally_disjunctive", ce.witnesses)
    f_false = f(Predicate.false(space))
    if not f_false == Predicate.false(space):
        # The empty bag: f.false must be false.
        return Counterexample("universally_disjunctive", (Predicate.false(space),))
    atom_images: List[Predicate] = [
        f(Predicate.from_indices(space, [i])) for i in range(space.size)
    ]
    for p in all_predicates(space):
        expected = f_false
        for i in p.indices():
            expected = expected | atom_images[i]
        if not f(p) == expected:
            return Counterexample("universally_disjunctive", (p,))
    return None


def check_or_continuous(
    f: Transformer,
    space: StateSpace,
    chains: int = 64,
    rng: Optional[random.Random] = None,
) -> Optional[Counterexample]:
    """Check ``f.(∃ chain) = (∃ v in chain : f.v)`` on random ascending chains.

    On a finite space every monotone ``f`` is or-continuous (chains
    stabilize), so this is mainly a sanity check for *non*-monotone
    transformers such as the ``ŜP`` of knowledge-based protocols.
    """
    rng = rng or random.Random(0)
    for _ in range(chains):
        chain: List[Predicate] = []
        current = random_predicate(space, rng)
        for _step in range(4):
            chain.append(current)
            current = current | random_predicate(space, rng)
        chain.append(current)
        limit = chain[-1]
        union_of_images = Predicate.false(space)
        for link in chain:
            union_of_images = union_of_images | f(link)
        if not union_of_images == f(limit):
            return Counterexample("or_continuous", tuple(chain))
    return None


@dataclass(frozen=True)
class JunctivityReport:
    """Full junctivity profile of a transformer on a (small) space."""

    monotonic: Optional[Counterexample]
    finitely_conjunctive: Optional[Counterexample]
    finitely_disjunctive: Optional[Counterexample]
    universally_conjunctive: Optional[Counterexample]
    universally_disjunctive: Optional[Counterexample]
    or_continuous: Optional[Counterexample]

    def summary(self) -> str:
        def mark(ce: Optional[Counterexample]) -> str:
            return "yes" if ce is None else "NO"

        return (
            f"monotonic={mark(self.monotonic)} "
            f"fin-conj={mark(self.finitely_conjunctive)} "
            f"fin-disj={mark(self.finitely_disjunctive)} "
            f"univ-conj={mark(self.universally_conjunctive)} "
            f"univ-disj={mark(self.universally_disjunctive)} "
            f"or-cont={mark(self.or_continuous)}"
        )


def analyze(f: Transformer, space: StateSpace) -> JunctivityReport:
    """Run every exhaustive junctivity check (small spaces only)."""
    return JunctivityReport(
        monotonic=check_monotonic(f, space),
        finitely_conjunctive=check_finitely_conjunctive(f, space),
        finitely_disjunctive=check_finitely_disjunctive(f, space),
        universally_conjunctive=check_universally_conjunctive(f, space),
        universally_disjunctive=check_universally_disjunctive(f, space),
        or_continuous=check_or_continuous(f, space),
    )
