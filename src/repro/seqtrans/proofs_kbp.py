"""Machine-checked replay of the paper's liveness derivation (§6.2, eqs. 37–49).

The paper proves, for the knowledge-based protocol, that the liveness
specification (35) ``|w| = k ↦ |w| > k`` follows from

* program-text facts (``unless``/``ensures`` obligations),
* the stability assumptions (Kbp-3)/(Kbp-4) — here *proved* from the text
  as (55)/(56) via :mod:`repro.seqtrans.proofs_standard`,
* the channel liveness assumptions (Kbp-1)/(Kbp-2) — here *model-checked*
  against the concrete channel (they hold for reliable and bounded-loss
  channels, and the whole derivation correctly refuses to go through for
  the unrestricted lossy channel, where the leaves fail), and
* the knowledge metatheorems (14)/(24) for the ``K_S(j ≥ k)`` steps.

The derivation tree mirrors the paper's numbering::

    (39) j=k ↦ j>k
      ├── (40) j=k ∧ K_R x_k ↦ j>k            [unless + stable + ensures, (31)]
      └── (41) j=k ∧ ¬K_R x_k ↦ j=k ∧ K_R x_k
            ├── (42) ... unless ...             [from text]
            ├── (43) ... ↦ K_S(j≥k) ∨ K_R x_k   [PSP on (53), weaken via (52)]
            ├── (44) K_S(j≥k) ↦ i≥k             [(46) + (47)]
            └── (45) i≥k ↦ K_R x_k              [(48)=(62) + (49) via (Kbp-1)]

All knowledge predicates in guards use the *proposed* values (50)/(51)
(justified by the §6.3 instantiation theorem); the genuinely epistemic
step — ``K_S(j ≥ k)``, which never appears in the program text — uses the
*actual* knowledge operator, entering through metatheorem (24) exactly as
in the paper's proof of (52).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..core import KnowledgeOperator
from ..predicates import Predicate
from ..proofs import LeadsTo, Proof, ProofContext
from ..unity import Program
from . import preds
from .params import SeqTransParams
from .proofs_standard import prove_36, prove_52, prove_56
from .spec import w_length_eq, w_length_gt
from .standard import (
    SENDER,
    proposed_k_r_any,
    proposed_k_r_value,
    proposed_k_s_k_r,
)


def _j_eq(ctx: ProofContext, k: int) -> Predicate:
    return preds._memo(
        ctx.space,
        ("j_eq", k),
        lambda: Predicate.from_callable(ctx.space, lambda s: s["j"] == k),
    )


def _j_gt(ctx: ProofContext, k: int) -> Predicate:
    return preds._memo(
        ctx.space,
        ("j_gt", k),
        lambda: Predicate.from_callable(ctx.space, lambda s: s["j"] > k),
    )


def prove_40(ctx: ProofContext, params: SeqTransParams, k: int) -> Proof:
    """(40): ``j = k ∧ K_R x_k ↦ j > k`` — the Receiver delivers what it knows.

    Exactly the paper's script: ``j = k unless j > k`` from the text,
    stability of ``K_R(x_k = α)`` (Kbp-3 / 56), simple conjunction, the
    ensures metatheorem, promotion (29), and disjunction (31) over α.
    """
    space = ctx.space
    per_alpha = []
    for alpha in params.alphabet:
        u_j = ctx.unless_from_text(_j_eq(ctx, k), _j_gt(ctx, k), note="from text")
        stable_k = prove_56(ctx, k, alpha)
        conj = ctx.conjunction_unless(u_j, stable_k, note="simple conjunction")
        ensured = ctx.ensures_from_unless(conj, note=f"rcv_deliver_{alpha} helps")
        promoted = ctx.promote_ensures(ensured)
        # Align the target to j > k (the conjunction's consequent is j>k ∨ false).
        per_alpha.append(
            ctx.consequence_weakening_leads_to(promoted, _j_gt(ctx, k))
        )
    by_alpha = ctx.disjunction(per_alpha, note="(31) over α ∈ A")
    target = _j_eq(ctx, k) & proposed_k_r_any(space, params, k)
    return ctx.antecedent_strengthening_leads_to(by_alpha, target, note="(40)")


def prove_47(ctx: ProofContext, params: SeqTransParams, k: int) -> Proof:
    """(47): ``(∀l < k : K_S K_R x_l) ↦ i ≥ k``.

    The paper inducts over ``i``; in the bounded model the antecedent
    already pins ``i ≥ k-1`` (the proposed ``K_S K_R x_{k-1}`` requires
    it), so the induction degenerates to a single ensures step — noted in
    EXPERIMENTS.md as a consequence of bounding.
    """
    space = ctx.space
    acked = preds.all_acked_below(space, k)
    target = preds.i_ge(space, k)
    if k == 0:
        return ctx.implication(acked, target, note="i ≥ 0 trivially")
    done = ctx.implication(acked & preds.i_ge(space, k), target)
    stepping = acked & preds.i_eq(space, k - 1)
    u = ctx.unless_from_text(stepping, target, note="snd_data skips when z = i+1")
    ensured = ctx.ensures_from_unless(u, note="snd_next advances i")
    cases = ctx.disjunction([done, ctx.promote_ensures(ensured)])
    return ctx.antecedent_strengthening_leads_to(
        cases, acked, note="(47): K_S K_R x_{k-1} forces i ≥ k-1"
    )


def prove_44(
    ctx: ProofContext,
    operator: KnowledgeOperator,
    params: SeqTransParams,
    k: int,
) -> Proof:
    """(44): ``K_S(j ≥ k) ↦ i ≥ k`` via (46) and (47)."""
    space = ctx.space
    j_ge_k = Predicate.from_callable(space, lambda s, k=k: s["j"] >= k)
    ks_j = operator.knows(SENDER, j_ge_k)
    acked = preds.all_acked_below(space, k)
    # (46): invariant K_S(j ≥ k) ⇒ (∀l < k : K_S K_R x_l).  The paper derives
    # this from (15), (37) and (21); semantically it is a direct SI check.
    step46 = ctx.implication(
        ks_j, acked, note="(46): sender knowledge of j ≥ k implies the acks"
    )
    step47 = prove_47(ctx, params, k)
    return ctx.transitivity(step46, step47, note="(44)")


def prove_49(
    ctx: ProofContext, params: SeqTransParams, k: int, leaf=None
) -> Proof:
    """(49): ``i = k ∧ ¬K_S K_R x_k ↦ K_R x_k``.

    Per α: the sending condition persists unless the ack arrives (from
    text), the channel delivers a persistently transmitted message
    ((Kbp-1) — model-checked or assumed, per ``leaf``), PSP combines them,
    and ``K_S K_R ⇒ K_R`` (truth axiom via (62)) collapses the consequent;
    (31) removes α.
    """
    if leaf is None:
        leaf = ctx.leads_to_checked
    space = ctx.space
    kr_k = proposed_k_r_any(space, params, k)
    kskr_k = proposed_k_s_k_r(space, k)
    sending = preds.i_eq(space, k) & ~kskr_k
    per_alpha = []
    for alpha in params.alphabet:
        a_alpha = sending & preds.x_at(space, k, alpha)
        u1 = ctx.unless_from_text(a_alpha, kskr_k, note="from text")
        kbp1 = leaf(
            a_alpha,
            proposed_k_r_value(space, k, alpha) | ~a_alpha,
            note="(Kbp-1): the channel delivers persistent transmissions",
        )
        combined = ctx.psp(kbp1, u1, note="PSP")
        per_alpha.append(
            ctx.consequence_weakening_leads_to(
                combined, kr_k, note="weaken via (62): K_S K_R ⇒ K_R"
            )
        )
    by_alpha = ctx.disjunction(per_alpha, note="(31) over α")
    return ctx.antecedent_strengthening_leads_to(
        by_alpha, sending, note="(49): x_k always has some value"
    )


def prove_45(
    ctx: ProofContext, params: SeqTransParams, k: int, leaf=None
) -> Proof:
    """(45): ``i ≥ k ↦ K_R x_k`` via (48) and (49)."""
    space = ctx.space
    kr_k = proposed_k_r_any(space, params, k)
    kskr_k = proposed_k_s_k_r(space, k)
    # (48): invariant (i > k) ∨ (i = k ∧ K_S K_R x_k) ⇒ K_R x_k — this is
    # exactly (62) for the proposed predicates.
    case48 = ctx.implication(kskr_k, kr_k, note="(48) = (62)")
    case49 = prove_49(ctx, params, k, leaf=leaf)
    cases = ctx.disjunction([case48, case49])
    return ctx.antecedent_strengthening_leads_to(
        cases, preds.i_ge(space, k), note="(45)"
    )


def prove_41(
    ctx: ProofContext,
    operator: KnowledgeOperator,
    params: SeqTransParams,
    k: int,
    leaf=None,
) -> Proof:
    """(41): ``j = k ∧ ¬K_R x_k ↦ j = k ∧ K_R x_k``.

    Composition per the paper: transitivity on (44), (45); disjunction with
    ``K_R x_k ↦ K_R x_k``; transitivity with (43); PSP with (42).
    """
    if leaf is None:
        leaf = ctx.leads_to_checked
    space = ctx.space
    kr_k = proposed_k_r_any(space, params, k)
    waiting = _j_eq(ctx, k) & ~kr_k
    arrived = _j_eq(ctx, k) & kr_k
    j_ge_k = Predicate.from_callable(space, lambda s, k=k: s["j"] >= k)
    ks_j = operator.knows(SENDER, j_ge_k)

    # (42): from text.
    u42 = ctx.unless_from_text(waiting, arrived, note="(42)")
    # (53): channel liveness for the ack direction — model-checked leaf.
    lemma53 = leaf(
        waiting,
        preds.z_ge(space, k) | ~waiting,
        note="(53)/(St-4): persistent requests get through",
    )
    # (52): z ≥ k ⇒ K_S(j ≥ k) via metatheorem (24).
    p52 = prove_52(ctx, operator, k)
    # (43): PSP then weaken through (52).
    psp43 = ctx.psp(lemma53, u42, note="PSP on (53) and (42)")
    c43 = ctx.consequence_weakening_leads_to(
        psp43, ks_j | kr_k, note="(43): weaken via (52)"
    )
    # (44) and (45).
    c44 = prove_44(ctx, operator, params, k)
    c45 = prove_45(ctx, params, k, leaf=leaf)
    chain = ctx.transitivity(c44, c45, note="K_S(j≥k) ↦ K_R x_k")
    reflex = ctx.implication(kr_k, kr_k)
    resolved = ctx.disjunction([chain, reflex], note="disjunction with K_R ↦ K_R")
    to_kr = ctx.transitivity(c43, resolved, note="j=k ∧ ¬K_R ↦ K_R")
    # PSP with (42) pins j = k while K_R is being attained.
    pinned = ctx.psp(to_kr, u42, note="PSP with (42)")
    return ctx.consequence_weakening_leads_to(pinned, arrived, note="(41)")


def prove_39(
    ctx: ProofContext,
    operator: KnowledgeOperator,
    params: SeqTransParams,
    k: int,
    leaf=None,
) -> Proof:
    """(39): ``j = k ↦ j > k`` from (40) and (41)."""
    space = ctx.space
    kr_k = proposed_k_r_any(space, params, k)
    p40 = prove_40(ctx, params, k)
    p41 = prove_41(ctx, operator, params, k, leaf=leaf)
    via41 = ctx.transitivity(p41, p40, note="(41); then deliver")
    both = ctx.disjunction([p40, via41])
    return ctx.antecedent_strengthening_leads_to(
        both, _j_eq(ctx, k), note="(39): j=k splits on K_R x_k"
    )


def prove_35(
    ctx: ProofContext,
    operator: KnowledgeOperator,
    params: SeqTransParams,
    k: int,
    leaf=None,
) -> Proof:
    """(35): ``|w| = k ↦ |w| > k`` — the original liveness property.

    Substitution (appendix 8.1) through invariant (36) turns (39) into (35).
    """
    p39 = prove_39(ctx, operator, params, k, leaf=leaf)
    return ctx.substitution(
        p39,
        LeadsTo(w_length_eq(ctx.space, k), w_length_gt(ctx.space, k)),
        note="substitute |w| for j via invariant (36)",
    )


@dataclass(frozen=True)
class LivenessProofs:
    """The checked liveness derivations, per index ``k < L``.

    ``certificates`` (with ``prove_liveness(..., emit_certificates=True)``)
    holds the replayable evidence for every model-checked leads-to leaf
    the derivation consumed, in check order.
    """

    per_index: Dict[int, Proof]
    certificates: Tuple[object, ...] = ()

    def total_steps(self) -> int:
        return sum(p.size() for p in self.per_index.values())


def channel_liveness_assumptions(
    program: Program, params: SeqTransParams
) -> list:
    """The (Kbp-1)/(Kbp-2)-style leads-to leaves the derivation relies on.

    Returned as :class:`~repro.proofs.LeadsTo` properties suitable for a
    :class:`~repro.proofs.ProofContext`'s assumption set (the paper's
    mixed-specification style).
    """
    from . import preds as _preds
    from .standard import proposed_k_r_any as _any, proposed_k_r_value as _val
    from .standard import proposed_k_s_k_r as _kskr

    ctx = ProofContext(program)
    space = ctx.space
    out = []
    for k in range(params.length):
        kr_k = _any(space, params, k)
        waiting = _j_eq(ctx, k) & ~kr_k
        out.append(LeadsTo(waiting, _preds.z_ge(space, k) | ~waiting))
        sending = _preds.i_eq(space, k) & ~_kskr(space, k)
        for alpha in params.alphabet:
            a_alpha = sending & _preds.x_at(space, k, alpha)
            out.append(LeadsTo(a_alpha, _val(space, k, alpha) | ~a_alpha))
    return out


def prove_liveness(
    program: Program,
    params: SeqTransParams,
    channel_mode: str = "check",
    emit_certificates: bool = False,
) -> LivenessProofs:
    """Replay the full §6.2 liveness proof for every ``k < L``.

    ``channel_mode`` selects how the channel-liveness leaves enter:

    * ``"check"`` (default) — each leaf is model-checked against the
      concrete channel; raises :class:`~repro.proofs.ProofError` when the
      channel does not satisfy it (e.g. the unrestricted lossy channel);
    * ``"assume"`` — the leaves are *admitted as assumptions*, exactly the
      paper's mixed-specification reading: the resulting proofs carry
      their assumption set (see :meth:`repro.proofs.Proof.assumptions`)
      and are valid for any channel satisfying it.
    """
    if channel_mode not in ("check", "assume"):
        raise ValueError(f"unknown channel_mode {channel_mode!r}")
    if channel_mode == "assume":
        assumptions = channel_liveness_assumptions(program, params)
        ctx = ProofContext(
            program,
            assumptions=assumptions,
            emit_certificates=emit_certificates,
        )
        leaf = lambda p, q, note="": ctx.assume(LeadsTo(p, q))
    else:
        ctx = ProofContext(program, emit_certificates=emit_certificates)
        leaf = None
    operator = KnowledgeOperator.of_program(program, si=ctx.si)
    # (36) underpins the final substitution; prove it once up front.
    prove_36(ctx)
    return LivenessProofs(
        per_index={
            k: prove_35(ctx, operator, params, k, leaf=leaf)
            for k in range(params.length)
        },
        certificates=tuple(ctx.certificates),
    )
