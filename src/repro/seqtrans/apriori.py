"""A priori knowledge experiments (paper §6.4).

The paper's observation: if the value of ``x_0`` is known a priori,

* the **standard protocol** of Figure 4 "would still result in the value
  being sent and acknowledged" — it stays *correct* but is **no longer an
  instantiation** of the knowledge-based protocol
  (:mod:`repro.seqtrans.instantiation` shows the predicate mismatch);
* a **KBP-consistent protocol** "would have the receiver deliver the value
  immediately, and the sender would begin with the second element, thus
  saving one message" — process-by-process optimality.

This module builds the KBP-consistent protocol for an instance (resolving
Figure 3's knowledge terms against a *solution* of the SI equation (25),
found by the iterative solver) and measures the message savings with the
randomized executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core import resolve_at, solve_si_iterative
from ..predicates import Predicate
from ..sim import average_messages
from ..unity import Program
from .channels import ChannelSpec, bounded_loss
from .kbp_protocol import build_kbp_protocol
from .params import SeqTransParams
from .spec import check_spec, delivered_all
from .standard import build_standard_protocol

#: The statements whose effective firings count as messages on the wire.
TRANSMIT_STATEMENTS = ("snd_data", "rcv_ack")


@dataclass(frozen=True)
class KbpSolution:
    """A solved knowledge-based protocol: its SI and the resolved program."""

    si: Predicate
    resolved: Program
    iterations: int


def solve_kbp(
    params: SeqTransParams,
    channel: ChannelSpec = bounded_loss(1),
    max_iterations: int = 60,
) -> Optional[KbpSolution]:
    """Solve eq. (25) for the (bounded) Figure-3 protocol by Φ-iteration.

    Returns ``None`` when the iteration cycles without converging (the
    exhaustive solver is infeasible at protocol scale; on the instances
    used in the benches the iteration does converge).
    """
    kbp = build_kbp_protocol(params, channel)
    report = solve_si_iterative(kbp, max_iterations=max_iterations)
    if not report.converged or report.solution is None:
        return None
    return KbpSolution(
        si=report.solution,
        resolved=resolve_at(kbp, report.solution),
        iterations=report.iterations,
    )


@dataclass(frozen=True)
class AprioriComparison:
    """Message counts: standard protocol vs KBP-consistent protocol."""

    standard_messages: float
    kbp_messages: float
    standard_correct: bool
    kbp_correct: bool

    @property
    def savings(self) -> float:
        """Messages saved by exploiting the a priori information."""
        return self.standard_messages - self.kbp_messages


def compare_with_apriori(
    params: SeqTransParams,
    channel: ChannelSpec = bounded_loss(1),
    runs: int = 30,
    seed: int = 1991,
) -> AprioriComparison:
    """§6.4's experiment: same a priori information, two protocols.

    Both protocols are model-checked for the full specification, then the
    randomized executor measures the average number of transmissions until
    full delivery.
    """
    standard = build_standard_protocol(params, channel)
    spec_standard = check_spec(standard, params)
    goal_standard = delivered_all(standard.space, params)

    solution = solve_kbp(params, channel)
    if solution is None:
        raise ValueError(
            "the Φ-iteration did not converge for this instance; no "
            "KBP-consistent protocol available to compare"
        )
    resolved = solution.resolved
    spec_kbp = check_spec(resolved, params, si=solution.si)
    goal_kbp = delivered_all(resolved.space, params)

    standard_stats = average_messages(
        standard, goal_standard, TRANSMIT_STATEMENTS, runs=runs, seed=seed
    )
    kbp_stats = average_messages(
        resolved, goal_kbp, TRANSMIT_STATEMENTS, runs=runs, seed=seed
    )
    return AprioriComparison(
        standard_messages=standard_stats["messages"],
        kbp_messages=kbp_stats["messages"],
        standard_correct=spec_standard.satisfied,
        kbp_correct=spec_kbp.satisfied,
    )
