"""The common-knowledge hierarchy over the transmission channels.

The paper notes its approach "can easily be extended to include other
variants of knowledge, such as common knowledge [HM90]" — and [HM90] is
the *coordinated attack* paper: over a communication medium that does not
deliver synchronously, common knowledge of a new fact can never be
attained.  This module measures the hierarchy

    K_R x_k  ⊒  E x_k  ⊒  E² x_k  ⊒ … ⊒  C x_k

on the sequence transmission protocols: every finite level is eventually
attained, the levels strictly shrink, and the limit ``C`` is empty on the
reachable states of **every** channel model — including the reliable one,
whose single-slot delivery is still asynchronous.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Tuple

from ..core import KnowledgeOperator
from ..transformers import strongest_invariant
from ..unity import Program
from .params import SeqTransParams
from .standard import RECEIVER, SENDER, fact_x_k


@dataclass(frozen=True)
class KnowledgeHierarchy:
    """Reachable-state counts of each knowledge level for one ground fact."""

    fact_states: int
    individual: Tuple[int, int]  # (K_Sender, K_Receiver)
    e_levels: Tuple[int, ...]  # E, E², E³, …
    common: int
    si_states: int

    @property
    def strictly_descending(self) -> bool:
        """Whether each measured E-level loses states until stabilizing."""
        levels = [lvl for lvl in self.e_levels]
        return all(a >= b for a, b in zip(levels, levels[1:]))

    @property
    def common_knowledge_attained(self) -> bool:
        return self.common > 0


def knowledge_hierarchy(
    program: Program,
    params: SeqTransParams,
    k: int = 0,
    alpha: Any = None,
    depth: int = 4,
) -> KnowledgeHierarchy:
    """Measure ``K``, ``E^n`` and ``C`` of the fact ``x_k = α`` on SI.

    ``alpha`` defaults to the first alphabet symbol.  ``depth`` is how many
    ``E`` iterations to record (``C`` itself is the exact fixpoint,
    independent of ``depth``).
    """
    if alpha is None:
        alpha = params.alphabet[0]
    space = program.space
    si = strongest_invariant(program)
    operator = KnowledgeOperator.of_program(program, si)
    group = [SENDER, RECEIVER]
    fact = fact_x_k(space, k, alpha)

    individual = (
        (operator.knows(SENDER, fact) & si).count(),
        (operator.knows(RECEIVER, fact) & si).count(),
    )
    e_levels: List[int] = []
    level = operator.everyone_knows(group, fact)
    e_levels.append((level & si).count())
    for _ in range(depth - 1):
        level = operator.everyone_knows(group, fact & level)
        e_levels.append((level & si).count())
    common = (operator.common_knowledge(group, fact) & si).count()
    return KnowledgeHierarchy(
        fact_states=(fact & si).count(),
        individual=individual,
        e_levels=tuple(e_levels),
        common=common,
        si_states=si.count(),
    )
