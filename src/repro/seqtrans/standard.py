"""The standard sequence transmission protocol (paper Figure 4, bounded).

The Sender repeatedly transmits ``(i, x_i)`` until it receives the ack
``z = i+1``, then advances; the Receiver delivers ``x_j`` when it holds the
message ``(j, α)`` and otherwise transmits the request ``j``.  These guards
are exactly the proposed values (50)/(51) for the knowledge predicates
``K_R(x_k = α)`` and ``K_S K_R x_k`` of the knowledge-based protocol
(Figure 3):

* (50)  ``K_R(x_k = α)``:  ``(j = k ∧ z' = (k,α)) ∨ (j > k ∧ w_k = α)``
* (51)  ``K_S K_R x_k``:   ``(i = k ∧ z = k+1) ∨ i > k``

Deviations from the figure, documented in DESIGN.md §2:

* the buffer ``y`` is dropped — the paper gives the Sender access to ``x``
  anyway (``Sender = {x, y, i, z}``) and maintains ``y = x_i``, so ``y`` is
  redundant for both execution and knowledge;
* the history variables ``ch_S``/``ch_R`` are not state — the channel
  construction makes (St-1)/(St-2) true by construction (see
  :mod:`repro.seqtrans.channels`);
* everything is bounded by the transmission length ``L``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..predicates import Predicate
from ..statespace import (
    BOT,
    EnumDomain,
    IntRangeDomain,
    OptionDomain,
    SeqDomain,
    StateSpace,
    TupleDomain,
    Variable,
)
from ..unity import Length, Program, Statement, const, lnot, lor, tup, var
from .channels import ChannelSpec, bounded_loss
from .crash import CrashSpec
from .params import SeqTransParams

SENDER = "Sender"
RECEIVER = "Receiver"


def channel_domains(params: SeqTransParams) -> Tuple[TupleDomain, IntRangeDomain]:
    """The (data-message, ack) domains the Figure-3/4 channels carry."""
    alpha_domain = EnumDomain("A", params.alphabet)
    index_domain = IntRangeDomain(0, params.length - 1)
    counter_domain = IntRangeDomain(0, params.length)
    return TupleDomain(index_domain, alpha_domain), counter_domain


def build_space(
    params: SeqTransParams,
    channel: ChannelSpec,
    crash: Optional[CrashSpec] = None,
) -> StateSpace:
    """The state space shared by the standard and knowledge-based protocols."""
    alpha_domain = EnumDomain("A", params.alphabet)
    length = params.length
    x_domain = TupleDomain(*([alpha_domain] * length))
    index_domain = IntRangeDomain(0, length - 1)
    message_domain, counter_domain = channel_domains(params)
    variables = [
        Variable("x", x_domain),
        Variable("i", index_domain),
        Variable("z", OptionDomain(counter_domain)),
        Variable("w", SeqDomain(alpha_domain, length)),
        Variable("j", counter_domain),
        Variable("zp", OptionDomain(message_domain)),
    ]
    variables.extend(channel.slot_variables(message_domain, counter_domain))
    if crash is not None:
        variables.extend(crash.crash_variables())
    return StateSpace(variables)


def initial_predicate(
    params: SeqTransParams,
    channel: ChannelSpec,
    space: StateSpace,
    crash: Optional[CrashSpec] = None,
) -> Predicate:
    """``init``: counters at zero, buffers empty, ``x`` free modulo a priori info.

    With ``apriori=None`` every value of ``x`` is initially possible — the
    "no a priori information" assumption under which Figure 4 instantiates
    the knowledge-based protocol (§6.3).
    """
    channel_init = dict(channel.initial_assignment())
    if crash is not None:
        channel_init.update(crash.initial_assignment())
    fixed = params.apriori or {}

    def is_initial(state) -> bool:
        if state["i"] != 0 or state["j"] != 0:
            return False
        if state["z"] is not BOT or state["zp"] is not BOT:
            return False
        if state["w"] != ():
            return False
        for name, value in channel_init.items():
            if state[name] != value:
                return False
        x = state["x"]
        return all(x[k] == v for k, v in fixed.items())

    return Predicate.from_callable(space, is_initial)


def sender_statements(params: SeqTransParams, channel: ChannelSpec) -> List[Statement]:
    """The Sender's statements (transmit-current / advance)."""
    receive = channel.receive_ack_updates()
    length = params.length
    transmit_updates: Dict[str, Any] = dict(
        channel.transmit_data_updates(tup(var("i"), var("x")[var("i")]))
    )
    transmit_updates.update(receive)
    statements = [
        Statement(
            name="snd_data",
            targets=tuple(transmit_updates),
            exprs=tuple(transmit_updates.values()),
            guard=lnot(var("z").eq(var("i") + const(1))),
        )
    ]
    advance_updates: Dict[str, Any] = {"i": var("i") + const(1)}
    advance_updates.update(receive)
    statements.append(
        Statement(
            name="snd_next",
            targets=tuple(advance_updates),
            exprs=tuple(advance_updates.values()),
            guard=(var("z").eq(var("i") + const(1))) & (var("i") < const(length - 1)),
        )
    )
    return statements


def receiver_statements(
    params: SeqTransParams, channel: ChannelSpec
) -> List[Statement]:
    """The Receiver's statements (deliver-per-symbol family / request)."""
    receive = channel.receive_data_updates()
    length = params.length
    statements: List[Statement] = []
    from ..unity import Append

    for alpha in params.alphabet:
        deliver_updates: Dict[str, Any] = {
            "w": Append(var("w"), const(alpha)),
            "j": var("j") + const(1),
        }
        deliver_updates.update(receive)
        statements.append(
            Statement(
                name=f"rcv_deliver_{alpha}",
                targets=tuple(deliver_updates),
                exprs=tuple(deliver_updates.values()),
                # The |w| < L conjunct keeps the assignment total on the
                # *unreachable* part of the space (on SI it is implied by
                # j < L together with invariant (36), |w| = j).
                guard=(var("j") < const(length))
                & (Length(var("w")) < const(length))
                & (var("zp").eq(tup(var("j"), const(alpha)))),
            )
        )
    has_current = lor(
        *[var("zp").eq(tup(var("j"), const(alpha))) for alpha in params.alphabet]
    )
    ack_updates: Dict[str, Any] = dict(channel.transmit_ack_updates(var("j")))
    ack_updates.update(receive)
    statements.append(
        Statement(
            name="rcv_ack",
            targets=tuple(ack_updates),
            exprs=tuple(ack_updates.values()),
            guard=lnot(has_current),
        )
    )
    return statements


def build_standard_protocol(
    params: SeqTransParams = SeqTransParams(),
    channel: ChannelSpec = bounded_loss(1),
    crash: Optional[CrashSpec] = None,
) -> Program:
    """The bounded Figure-4 protocol over the given channel.

    With a :class:`~repro.seqtrans.crash.CrashSpec`, the named processes
    additionally get budgeted crash/restart statements (local variables
    reset, channel slots persist).
    """
    space = build_space(params, channel, crash=crash)
    message_domain, counter_domain = channel_domains(params)
    statements = (
        sender_statements(params, channel)
        + receiver_statements(params, channel)
        + channel.environment_statements(message_domain, counter_domain)
    )
    tag = f"L={params.length},|A|={len(params.alphabet)},{channel.kind.value}"
    if crash is not None and crash.budget > 0:
        statements = statements + crash.crash_statements()
        tag += f",{crash.label}"
    return Program(
        space=space,
        init=initial_predicate(params, channel, space, crash=crash),
        statements=statements,
        processes={
            SENDER: ("x", "i", "z"),
            RECEIVER: ("w", "j", "zp"),
        },
        name=f"seqtrans-standard[{tag}]",
    )


# ----------------------------------------------------------------------
# the proposed knowledge predicates (50) and (51)
# ----------------------------------------------------------------------


def proposed_k_r_value(space: StateSpace, k: int, alpha: Any) -> Predicate:
    """Eq. (50): the proposed value of ``K_R(x_k = α)``."""
    cache = getattr(space, "_seqtrans_proposed_cache", None)
    if cache is None:
        cache = {}
        space._seqtrans_proposed_cache = cache
    key = ("k_r_value", k, alpha)
    if key in cache:
        return cache[key]

    def holds(state) -> bool:
        j = state["j"]
        if j == k and state["zp"] == (k, alpha):
            return True
        w = state["w"]
        return j > k and len(w) > k and w[k] == alpha

    cache[key] = Predicate.from_callable(space, holds)
    return cache[key]


def proposed_k_r_any(space: StateSpace, params: SeqTransParams, k: int) -> Predicate:
    """``K_R x_k ≡ (∃α ∈ A : K_R(x_k = α))`` via the proposed values."""
    out = Predicate.false(space)
    for alpha in params.alphabet:
        out = out | proposed_k_r_value(space, k, alpha)
    return out


def proposed_k_s_k_r(space: StateSpace, k: int) -> Predicate:
    """Eq. (51): the proposed value of ``K_S K_R x_k``."""
    cache = getattr(space, "_seqtrans_proposed_cache", None)
    if cache is None:
        cache = {}
        space._seqtrans_proposed_cache = cache
    key = ("k_s_k_r", k)
    if key in cache:
        return cache[key]

    def holds(state) -> bool:
        i = state["i"]
        return (i == k and state["z"] == k + 1) or i > k

    cache[key] = Predicate.from_callable(space, holds)
    return cache[key]


def fact_x_k(space: StateSpace, k: int, alpha: Any) -> Predicate:
    """The ground fact ``x_k = α``."""
    return Predicate.from_callable(space, lambda state: state["x"][k] == alpha)
