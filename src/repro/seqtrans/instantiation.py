"""Does the standard protocol instantiate the knowledge-based protocol? (§6.3)

Two checks, mirroring the paper:

* **Sufficiency** (what correctness needs): the proposed predicates
  (50)/(51) *imply* the true knowledge predicates on the reachable states —
  i.e. invariants (61)/(62) hold.  The paper proves these from the text; we
  both verify them directly and compute the true ``K`` predicates from the
  standard protocol's SI and compare.

* **Exactness** (the [HZar] Proposition 4.5 analogue): the proposed
  predicates *equal* the true knowledge predicates on SI.  This is what
  "the standard protocol instantiates the knowledge-based protocol" means,
  and — the paper's §6.4 point — it **fails under a priori information**
  even though the protocol remains correct.

The comparison also covers the transitions themselves: resolving the
Figure-3 KBP at the standard protocol's SI must reproduce the standard
protocol's successor relation on reachable states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core import KnowledgeOperator
from ..predicates import Predicate
from ..transformers import strongest_invariant
from ..unity import Knowledge, Program
from .channels import ChannelSpec, bounded_loss
from .kbp_protocol import build_kbp_protocol, k_r_value, k_s_k_r
from .params import SeqTransParams
from .standard import (
    build_standard_protocol,
    proposed_k_r_value,
    proposed_k_s_k_r,
)


@dataclass(frozen=True)
class TermComparison:
    """Proposed vs true value of one knowledge predicate, on SI."""

    label: str
    sufficient: bool  # [SI ⇒ (proposed ⇒ K)] — enough for correctness
    exact: bool  # [SI ⇒ (proposed ≡ K)] — the instantiation condition
    proposed_states: int
    actual_states: int


@dataclass(frozen=True)
class InstantiationReport:
    """Outcome of the §6.3 instantiation check."""

    terms: Tuple[TermComparison, ...]
    transitions_match: bool
    si_states: int

    @property
    def sufficient(self) -> bool:
        """All proposed predicates imply true knowledge (invariants 61–62)."""
        return all(t.sufficient for t in self.terms)

    @property
    def instantiates(self) -> bool:
        """The full §6.3 condition: exact predicates and matching transitions."""
        return self.transitions_match and all(t.exact for t in self.terms)


def proposed_resolution(
    params: SeqTransParams, kbp: Program
) -> Dict[Knowledge, Predicate]:
    """The (50)/(51) predicates keyed by the KBP's knowledge terms."""
    space = kbp.space
    resolution: Dict[Knowledge, Predicate] = {}
    for k in range(params.length):
        for alpha in params.alphabet:
            resolution[k_r_value(k, alpha)] = proposed_k_r_value(space, k, alpha)
        resolution[k_s_k_r(params, k)] = proposed_k_s_k_r(space, k)
    return resolution


def check_instantiation(
    params: SeqTransParams = SeqTransParams(),
    channel: ChannelSpec = bounded_loss(1),
) -> InstantiationReport:
    """Run the full §6.3 check for the given instance.

    With ``params.apriori=None`` (and ``|A| ≥ 2``) this reproduces the
    paper's positive claim; with a priori information it reproduces the
    §6.4 failure: correctness persists but the instantiation breaks.
    """
    standard = build_standard_protocol(params, channel)
    kbp = build_kbp_protocol(params, channel)
    si = strongest_invariant(standard)
    operator = KnowledgeOperator(
        standard.space,
        si,
        {p.name: p.variables for p in standard.processes.values()},
    )
    actual = operator.resolve_terms(kbp.knowledge_terms())
    proposed = proposed_resolution(params, kbp)

    comparisons: List[TermComparison] = []
    for k in range(params.length):
        for alpha in params.alphabet:
            term = k_r_value(k, alpha)
            comparisons.append(
                _compare(f"K_R(x_{k} = {alpha!r})", proposed[term], actual[term], si)
            )
        term = k_s_k_r(params, k)
        comparisons.append(
            _compare(f"K_S K_R x_{k}", proposed[term], actual[term], si)
        )

    resolved = kbp.resolve(actual)
    transitions_match = _same_transitions_on(standard, resolved, si)
    return InstantiationReport(
        terms=tuple(comparisons),
        transitions_match=transitions_match,
        si_states=si.count(),
    )


def _compare(
    label: str, proposed: Predicate, actual: Predicate, si: Predicate
) -> TermComparison:
    proposed_si = proposed & si
    actual_si = actual & si
    return TermComparison(
        label=label,
        sufficient=proposed_si.entails(actual_si),
        exact=proposed_si == actual_si,
        proposed_states=proposed_si.count(),
        actual_states=actual_si.count(),
    )


def _same_transitions_on(a: Program, b: Program, si: Predicate) -> bool:
    """Whether two programs over one space agree, statement by statement, on SI.

    Statements are matched by name (the builders use identical names).
    """
    names_a = {s.name for s in a.statements}
    names_b = {s.name for s in b.statements}
    if names_a != names_b:
        return False
    indices = list(si.indices())
    for stmt_a in a.statements:
        stmt_b = b.statement(stmt_a.name)
        array_a = a.successor_array(stmt_a)
        array_b = b.successor_array(stmt_b)
        for i in indices:
            if array_a[i] != array_b[i]:
                return False
    return True
