"""Machine-checked replay of the paper's standard-protocol proofs (§6.3).

Each function reconstructs one of the paper's derivations in the proof
kernel.  The kernel validates every step semantically, so a successful run
*is* a proof of the property for the bounded instance — and a wrong step
(e.g. dropping an auxiliary invariant) raises :class:`ProofError`.

Covered results:

* (36)  ``invariant |w| = j``
* (34)  ``invariant w ⊑ x``  (via ``invariant (|w| = j ∧ w ⊑ x)``)
* (54)  ``invariant z ≥ k ⇒ j ≥ k``   — the paper proves it through the
        history variable ``ch_R``; our channel makes (St-1) structural, so
        the replay routes through the in-flight ack (``cr ≥ k ⇒ j ≥ k``)
* (61)  ``invariant (50) ⇒ x_k = α``  — proposed ``K_R`` predicates are true
* (62)  ``invariant (51) ⇒ (∃α :: (50))`` — proposed ``K_S K_R`` implies
        proposed ``K_R``
* (55)/(56) — the stability of the proposed knowledge predicates (the
        standard-protocol forms of assumptions (Kbp-4)/(Kbp-3))
* (52)  ``invariant z ≥ k ⇒ K_S(j ≥ k)`` via metatheorem (24) from (54),
        with the *actual* knowledge operator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..core import KnowledgeOperator, k_localization
from ..predicates import Predicate
from ..proofs import Proof, ProofContext
from ..unity import Program
from . import preds
from .params import SeqTransParams
from .standard import proposed_k_r_any, proposed_k_r_value, proposed_k_s_k_r


def prove_36(ctx: ProofContext) -> Proof:
    """(36): ``invariant |w| = j`` — direct induction from the text."""
    return ctx.invariant_by_induction(
        preds.w_len_eq_j(ctx.space), note="deliver adds one element and increments j"
    )


def prove_truthful_messages(ctx: ProofContext, params: SeqTransParams) -> Proof:
    """``invariant (∀k,α : z' = (k,α) ⇒ x_k = α)`` — received data is truthful.

    Two-stage induction: in-flight data is truthful (the sender only ever
    transmits ``(i, x_i)``), hence so is the received copy.  This is the
    operational content of (St-2); the paper gets it from the ``ch_S``
    history variable instead.
    """
    space = ctx.space

    def conj_over(fn) -> Predicate:
        out = Predicate.true(space)
        for k in range(params.length):
            for alpha in params.alphabet:
                out = out & fn(k, alpha)
        return out

    flight_all = ctx.invariant_by_induction(
        conj_over(
            lambda k, alpha: preds.cs_eq(space, k, alpha).implies(
                preds.x_at(space, k, alpha)
            )
        ),
        note="snd_data transmits (i, x_i)",
    )
    return ctx.invariant_by_induction(
        conj_over(
            lambda k, alpha: preds.zp_eq(space, k, alpha).implies(
                preds.x_at(space, k, alpha)
            )
        ),
        auxiliary=flight_all,
        note="receive copies the (truthful) in-flight message",
    )


def prove_safety(ctx: ProofContext, params: SeqTransParams) -> Proof:
    """(34): ``invariant w ⊑ x`` via ``invariant (|w| = j ∧ w ⊑ x)``.

    The paper's §6.2 argument, adapted: for the KBP the delivery guard
    ``K_R(x_j = α)`` gives ``x_j = α`` by the truth axiom (14); for the
    standard protocol that step is exactly the truthfulness invariant of
    the received message, which enters as the auxiliary of the induction.
    """
    space = ctx.space
    truthful = prove_truthful_messages(ctx, params)
    conj = preds.w_len_eq_j(space) & preds.w_prefix_x(space)
    inductive = ctx.invariant_by_induction(
        conj,
        auxiliary=truthful,
        note="deliver appends x_j (truthful); |w;α| = j+1 and w;α ⊑ x",
    )
    return ctx.invariant_weakening(
        inductive, preds.w_prefix_x(space), note="drop the |w| = j conjunct"
    )


def prove_54(ctx: ProofContext, k: int) -> Proof:
    """(54): ``invariant z ≥ k ⇒ j ≥ k``.

    Two-stage induction replacing the paper's history-variable argument:
    first the in-flight ack respects ``j`` (``cr ≥ k ⇒ j ≥ k`` — the
    operational residue of (St-1)), then the received ack does.
    """
    space = ctx.space
    j_ge_k = Predicate.from_callable(space, lambda s, k=k: s["j"] >= k)
    ack_inv = ctx.invariant_by_induction(
        preds.cr_ge(space, k).implies(j_ge_k),
        note="rcv_ack writes cr := j; j never decreases",
    )
    return ctx.invariant_by_induction(
        preds.z_ge(space, k).implies(j_ge_k),
        auxiliary=ack_inv,
        note="sender receives z := cr; apply the ack invariant",
    )


def prove_61(ctx: ProofContext, k: int, alpha, inv36: Proof = None) -> Proof:
    """(61): the proposed ``K_R(x_k = α)`` really implies ``x_k = α``.

    Chain of inductive invariants replacing the paper's ``ch_S`` history
    argument: in-flight data is truthful → received data is truthful →
    delivered data is truthful; then combine.
    """
    space = ctx.space
    x_fact = preds.x_at(space, k, alpha)
    flight = ctx.invariant_by_induction(
        preds.cs_eq(space, k, alpha).implies(x_fact),
        note="snd_data transmits (i, x_i): in-flight data is truthful",
    )
    received = ctx.invariant_by_induction(
        preds.zp_eq(space, k, alpha).implies(x_fact),
        auxiliary=flight,
        note="receive copies cs — (St-2) made structural",
    )
    if inv36 is None:
        inv36 = prove_36(ctx)
    delivered = ctx.invariant_by_induction(
        preds.w_at(space, k, alpha).implies(x_fact),
        auxiliary=ctx.invariant_conjunction(received, inv36),
        note="delivery appends the received (truthful) value",
    )
    proposed = proposed_k_r_value(space, k, alpha)
    combined = ctx.invariant_conjunction(received, delivered)
    return ctx.invariant_weakening(
        combined,
        proposed.implies(x_fact),
        note="(50) = received-or-delivered; both truthful",
    )


def prove_62(
    ctx: ProofContext,
    params: SeqTransParams,
    k: int,
    p54: Proof = None,
    inv36: Proof = None,
    safety: Proof = None,
) -> Proof:
    """(62): the proposed ``K_S K_R x_k`` implies the proposed ``K_R x_k``.

    Following the paper: ``i > k ⇒ j > k`` (induction with (54) at
    ``k+1``), ``z = k+1 ⇒ j > k`` (weakening of (54) at ``k+1``), and
    ``j > k`` pins a delivered value via (36) + safety.
    """
    space = ctx.space
    if p54 is None:
        p54 = prove_54(ctx, k + 1)
    j_gt_k = Predicate.from_callable(space, lambda s, k=k: s["j"] > k)
    advanced = ctx.invariant_by_induction(
        preds.i_gt(space, k).implies(j_gt_k),
        auxiliary=p54,
        note="i passes k only on ack z = k+1, which needs j ≥ k+1",
    )
    acked = ctx.invariant_weakening(
        p54,
        (preds.i_eq(space, k) & preds.z_eq(space, k + 1)).implies(j_gt_k),
        note="z = k+1 ⇒ z ≥ k+1 ⇒ j ≥ k+1",
    )
    if inv36 is None:
        inv36 = prove_36(ctx)
    if safety is None:
        safety = prove_safety(ctx, params)
    body = ctx.invariant_conjunction(
        ctx.invariant_conjunction(advanced, acked),
        ctx.invariant_conjunction(inv36, safety),
    )
    target = proposed_k_s_k_r(space, k).implies(
        proposed_k_r_any(space, params, k)
    )
    return ctx.invariant_weakening(
        body,
        target,
        note="(51) forces j > k; with |w| = j and w ⊑ x the value w_k is known",
    )


def prove_55(ctx: ProofContext, k: int) -> Proof:
    """(55): ``stable (i = k ∧ z = k+1) ∨ i > k`` — proposed ``K_S K_R`` persists."""
    return ctx.stable_from_text(
        proposed_k_s_k_r(ctx.space, k),
        note="snd_data skips once z = i+1; snd_next only advances i",
    )


def prove_56(ctx: ProofContext, k: int, alpha) -> Proof:
    """(56): ``stable z' = (k,α) ∨ (j > k ∧ w_k = α)`` — proposed ``K_R`` persists.

    SI-relative (eq. 27): off the reachable states delivery could overwrite
    ``z'`` without having written ``w_k``, but no execution visits those.
    """
    return ctx.stable_from_text(
        proposed_k_r_value(ctx.space, k, alpha),
        note="delivery converts the first disjunct into the second",
    )


def prove_52(
    ctx: ProofContext, operator: KnowledgeOperator, k: int, p54: Proof = None
) -> Proof:
    """(52): ``invariant z ≥ k ⇒ K_S(j ≥ k)`` via metatheorem (24) from (54).

    The paper's exact route: ``z`` is Sender-local, so the invariant
    ``z ≥ k ⇒ j ≥ k`` *promotes* to Sender-knowledge of ``j ≥ k``.
    """
    space = ctx.space
    if p54 is None:
        p54 = prove_54(ctx, k)
    j_ge_k = Predicate.from_callable(space, lambda s, k=k: s["j"] >= k)
    return k_localization(
        ctx,
        operator,
        "Sender",
        preds.z_ge(space, k),
        j_ge_k,
        p54,
        note="z is in the Sender's view; apply (24)",
    )


@dataclass(frozen=True)
class StandardProofs:
    """The full bundle of checked standard-protocol proofs for one instance."""

    inv36: Proof
    safety: Proof
    inv54: Dict[int, Proof]
    inv61: Dict[Tuple[int, object], Proof]
    inv62: Dict[int, Proof]
    stable55: Dict[int, Proof]
    stable56: Dict[Tuple[int, object], Proof]
    inv52: Dict[int, Proof]

    def total_steps(self) -> int:
        """Total rule applications across all proofs."""
        proofs = [self.inv36, self.safety]
        proofs += list(self.inv54.values()) + list(self.inv61.values())
        proofs += list(self.inv62.values()) + list(self.stable55.values())
        proofs += list(self.stable56.values()) + list(self.inv52.values())
        return sum(p.size() for p in proofs)


def prove_all_standard(
    program: Program, params: SeqTransParams
) -> StandardProofs:
    """Replay every §6.3 safety/stability derivation for the given instance."""
    ctx = ProofContext(program)
    operator = KnowledgeOperator.of_program(program, si=ctx.si)
    inv36 = prove_36(ctx)
    safety = prove_safety(ctx, params)
    inv54 = {k: prove_54(ctx, k) for k in range(params.length + 1)}
    inv61 = {
        (k, alpha): prove_61(ctx, k, alpha, inv36=inv36)
        for k in range(params.length)
        for alpha in params.alphabet
    }
    inv62 = {
        k: prove_62(ctx, params, k, p54=inv54[k + 1], inv36=inv36, safety=safety)
        for k in range(params.length)
    }
    stable55 = {k: prove_55(ctx, k) for k in range(params.length)}
    stable56 = {
        (k, alpha): prove_56(ctx, k, alpha)
        for k in range(params.length)
        for alpha in params.alphabet
    }
    inv52 = {
        k: prove_52(ctx, operator, k, p54=inv54[k])
        for k in range(params.length + 1)
    }
    return StandardProofs(
        inv36=inv36,
        safety=safety,
        inv54=inv54,
        inv61=inv61,
        inv62=inv62,
        stable55=stable55,
        stable56=stable56,
        inv52=inv52,
    )
