"""The sequence transmission specification (paper eqs. 34–35, 39).

Safety:    ``invariant w ⊑ x``                      (34)
Liveness:  ``|w| = k ↦ |w| > k`` for every ``k``    (35)

By invariant (36) (``|w| = j``) the liveness property is equivalent to
``j = k ↦ j > k`` (39).  In the bounded model liveness is required for
``k < L`` (there is no element past the end to deliver).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..predicates import Predicate
from ..proofs import refute_leads_to
from ..statespace import StateSpace
from ..transformers import strongest_invariant
from ..unity import Program
from .params import SeqTransParams


def safety_predicate(space: StateSpace) -> Predicate:
    """``w ⊑ x`` — the delivered sequence is a prefix of the sent one."""

    def holds(state) -> bool:
        w = state["w"]
        x = state["x"]
        return len(w) <= len(x) and tuple(x[: len(w)]) == tuple(w)

    return Predicate.from_callable(space, holds)


def w_length_eq(space: StateSpace, k: int) -> Predicate:
    """``|w| = k``."""
    return Predicate.from_callable(space, lambda state: len(state["w"]) == k)


def w_length_gt(space: StateSpace, k: int) -> Predicate:
    """``|w| > k``."""
    return Predicate.from_callable(space, lambda state: len(state["w"]) > k)


def j_eq(space: StateSpace, k: int) -> Predicate:
    """``j = k``."""
    return Predicate.from_callable(space, lambda state: state["j"] == k)


def j_gt(space: StateSpace, k: int) -> Predicate:
    """``j > k``."""
    return Predicate.from_callable(space, lambda state: state["j"] > k)


def delivered_all(space: StateSpace, params: SeqTransParams) -> Predicate:
    """``w = x`` — full delivery."""
    return Predicate.from_callable(
        space, lambda state: tuple(state["w"]) == tuple(state["x"])
    )


@dataclass(frozen=True)
class SpecReport:
    """Verdict of checking (34) and (35) on a protocol instance."""

    safety_holds: bool
    liveness_holds: Tuple[bool, ...]  # one verdict per k < L
    si_states: int

    @property
    def liveness_all(self) -> bool:
        return all(self.liveness_holds)

    @property
    def satisfied(self) -> bool:
        return self.safety_holds and self.liveness_all


def check_spec(
    program: Program,
    params: SeqTransParams,
    si: Optional[Predicate] = None,
) -> SpecReport:
    """Model-check the full specification of a (standard) protocol instance.

    Safety via ``[SI ⇒ (w ⊑ x)]`` (eq. 5); liveness via the fair
    leads-to checker for each ``k < L`` (eq. 39's form).
    """
    space = program.space
    if si is None:
        si = strongest_invariant(program)
    safety = si.entails(safety_predicate(space))
    liveness: List[bool] = []
    for k in range(params.length):
        refutation = refute_leads_to(
            program, w_length_eq(space, k), w_length_gt(space, k), si
        )
        liveness.append(refutation is None)
    return SpecReport(
        safety_holds=safety,
        liveness_holds=tuple(liveness),
        si_states=si.count(),
    )
