"""The sequence transmission specification (paper eqs. 34–35, 39).

Safety:    ``invariant w ⊑ x``                      (34)
Liveness:  ``|w| = k ↦ |w| > k`` for every ``k``    (35)

By invariant (36) (``|w| = j``) the liveness property is equivalent to
``j = k ↦ j > k`` (39).  In the bounded model liveness is required for
``k < L`` (there is no element past the end to deliver).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..predicates import Predicate
from ..proofs import refute_leads_to
from ..statespace import StateSpace
from ..transformers import strongest_invariant
from ..unity import Program
from .params import SeqTransParams

#: Obligation labels shared by spec certificates and the replayer's model
#: registry — defined once here so the two can never drift apart.
SAFETY_LABEL = "w-prefix-of-x (34)"


def liveness_label(k: int) -> str:
    """The (35) obligation label for stream position ``k``."""
    return f"|w|={k} ↦ |w|>{k} (35)"


def safety_predicate(space: StateSpace) -> Predicate:
    """``w ⊑ x`` — the delivered sequence is a prefix of the sent one."""

    def holds(state) -> bool:
        w = state["w"]
        x = state["x"]
        return len(w) <= len(x) and tuple(x[: len(w)]) == tuple(w)

    return Predicate.from_callable(space, holds)


def w_length_eq(space: StateSpace, k: int) -> Predicate:
    """``|w| = k``."""
    return Predicate.from_callable(space, lambda state: len(state["w"]) == k)


def w_length_gt(space: StateSpace, k: int) -> Predicate:
    """``|w| > k``."""
    return Predicate.from_callable(space, lambda state: len(state["w"]) > k)


def j_eq(space: StateSpace, k: int) -> Predicate:
    """``j = k``."""
    return Predicate.from_callable(space, lambda state: state["j"] == k)


def j_gt(space: StateSpace, k: int) -> Predicate:
    """``j > k``."""
    return Predicate.from_callable(space, lambda state: state["j"] > k)


def delivered_all(space: StateSpace, params: SeqTransParams) -> Predicate:
    """``w = x`` — full delivery."""
    return Predicate.from_callable(
        space, lambda state: tuple(state["w"]) == tuple(state["x"])
    )


@dataclass(frozen=True)
class SpecReport:
    """Verdict of checking (34) and (35) on a protocol instance.

    With ``check_spec(..., emit_certificate=True)``, ``certificate`` is a
    :class:`repro.certificates.certs.SpecCertificate` carrying the SI chain
    and per-obligation evidence (ranking stages, lassos, counterexample
    paths) behind every boolean in this report.
    """

    safety_holds: bool
    liveness_holds: Tuple[bool, ...]  # one verdict per k < L
    si_states: int
    certificate: Optional[object] = None

    @property
    def liveness_all(self) -> bool:
        return all(self.liveness_holds)

    @property
    def satisfied(self) -> bool:
        return self.safety_holds and self.liveness_all


def check_spec(
    program: Program,
    params: SeqTransParams,
    si: Optional[Predicate] = None,
    emit_certificate: bool = False,
) -> SpecReport:
    """Model-check the full specification of a (standard) protocol instance.

    Safety via ``[SI ⇒ (w ⊑ x)]`` (eq. 5); liveness via the fair
    leads-to checker for each ``k < L`` (eq. 39's form).  With
    ``emit_certificate=True`` each verdict is backed by replayable
    evidence; a supplied ``si`` is then cross-checked against the sst
    chain rather than trusted.
    """
    space = program.space
    chain: Tuple[Predicate, ...] = ()
    if emit_certificate:
        from ..transformers import sst

        result = sst(program, program.init)
        if si is not None and not result.predicate == si:
            raise ValueError(
                "supplied si is not this program's strongest invariant; "
                "refusing to certify against it"
            )
        si = result.predicate
        chain = result.chain
    elif si is None:
        si = strongest_invariant(program)
    safety_pred = safety_predicate(space)
    safety = si.entails(safety_pred)
    liveness: List[bool] = []
    liveness_certs: List[object] = []
    for k in range(params.length):
        p_k = w_length_eq(space, k)
        q_k = w_length_gt(space, k)
        refutation = refute_leads_to(
            program, p_k, q_k, si, emit_witness=emit_certificate
        )
        liveness.append(refutation is None)
        if emit_certificate:
            liveness_certs.append(
                _liveness_evidence(program, p_k, q_k, si, refutation, k)
            )
    certificate = None
    if emit_certificate:
        certificate = _spec_certificate(
            program, chain, safety_pred, safety, tuple(liveness_certs)
        )
    return SpecReport(
        safety_holds=safety,
        liveness_holds=tuple(liveness),
        si_states=si.count(),
        certificate=certificate,
    )


def _liveness_evidence(program, p_k, q_k, si, refutation, k):
    """One (35) obligation's evidence: ranking stages or a concrete lasso."""
    from ..certificates.canonical import program_digest
    from ..certificates.certs import (
        LeadsToCertificate,
        LeadsToRefutationCertificate,
    )
    from ..proofs.modelcheck import wlt_stages

    digest = program_digest(program)
    if refutation is None:
        report = wlt_stages(program, q_k, si)
        if not p_k.entails(report.value):  # pragma: no cover — cross-check
            raise AssertionError(
                f"wlt disagrees with the refuter on obligation k={k}"
            )
        return LeadsToCertificate(
            program=digest,
            p=p_k,
            q=q_k,
            reach=si,
            stages=report.stages,
            label=liveness_label(k),
        )
    return LeadsToRefutationCertificate(
        program=digest,
        p=p_k,
        q=q_k,
        prefix_states=refutation.prefix_states,
        prefix_statements=refutation.prefix_statements,
        approach_states=refutation.approach_states,
        approach_statements=refutation.approach_statements,
        trap=refutation.trap,
        label=liveness_label(k),
    )


def _spec_certificate(program, chain, safety_pred, safety_holds, liveness_certs):
    from ..certificates.canonical import program_digest
    from ..certificates.certs import SafetyRefutationCertificate, SpecCertificate
    from ..proofs.modelcheck import labeled_path

    digest = program_digest(program)
    if safety_holds:
        safety_entries = ((SAFETY_LABEL, safety_pred),)
        safety_refutations = ()
    else:
        path = labeled_path(
            program, program.init.mask, (~safety_pred).mask
        )
        assert path is not None  # SI ⊄ safety ⇒ a violating state is reachable
        safety_entries = ()
        safety_refutations = (
            SafetyRefutationCertificate(
                program=digest,
                predicate=safety_pred,
                path_states=path[0],
                path_statements=path[1],
                label=SAFETY_LABEL,
            ),
        )
    return SpecCertificate(
        program=digest,
        si_chain=chain,
        safety=safety_entries,
        safety_refutations=safety_refutations,
        liveness=liveness_certs,
    )
