"""A factored Figure-4 model built for symbolic (2^40-state) scale.

The bounded standard model (:mod:`repro.seqtrans.standard`) packs the
sequence ``x`` into one tuple-domain variable and the delivered prefix
``w`` into one seq-domain variable.  Those monolithic domains are fine
for explicit sweeps but hostile to the ROBDD backend: a single guard
like ``zp = (j, x[i])`` reads the *whole* of ``x``, so compiling it
relationally enumerates ``|A|^L`` assignments.

This module rebuilds the same protocol over a **reliable, zero-latency
channel** with the state factored into per-slot variables:

* ``x0..x{L-1}`` — the (constant) sequence, one symbol per variable;
* ``w0..w{L-1}`` — the delivered prefix, ``⊥`` until slot ``k`` arrives;
* ``i``, ``j`` — the Sender/Receiver counters of Figure 4;
* ``zp`` — the in-flight data message ``(k, α)`` (or ``⊥``);
* ``z`` — the last acknowledgement (or ``⊥``).

``x_k`` and ``w_k`` are *interleaved* in declaration order, so the slot
invariant ``w_k ∈ {⊥, x_k}`` relates adjacent ROBDD levels and the
reachable set stays linear in ``L``.  Every statement reads only a
handful of variables (never all of ``x``), so the symbolic backend
compiles each transition to a relation from expression supports without
ever enumerating states.  At ``L = 10`` the space exceeds ``2^40``
states — far past every explicit guard — yet the whole ``sst`` chain
(eq. 3) runs on handles end to end and certifies in seconds.

Deviations from :mod:`repro.seqtrans.standard`, in the spirit of
DESIGN.md §2: the channel is reliable with zero latency (transmission
writes the peer's buffer directly), so there are no channel-slot
variables and no loss/duplication statements.  The protocol logic —
guards, counters, per-slot delivery — is Figure 4's.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..predicates import Predicate
from ..statespace import (
    BOT,
    EnumDomain,
    IntRangeDomain,
    OptionDomain,
    StateSpace,
    TupleDomain,
    Variable,
)
from ..unity import Expr, Program, Statement, const, land, lnot, lor, tup, var
from .params import SeqTransParams
from .standard import RECEIVER, SENDER

__all__ = [
    "build_symbolic_protocol",
    "build_symbolic_space",
    "delivered_count_is",
    "slot_safety_expr",
    "symbolic_init_expr",
    "symbolic_model_key",
]


def _x(k: int) -> str:
    return f"x{k}"


def _w(k: int) -> str:
    return f"w{k}"


def build_symbolic_space(params: SeqTransParams) -> StateSpace:
    """The factored state space, control variables first, slots interleaved."""
    length = params.length
    alpha_domain = EnumDomain("A", params.alphabet)
    message_domain = TupleDomain(IntRangeDomain(0, length - 1), alpha_domain)
    variables = [
        Variable("i", IntRangeDomain(0, length - 1)),
        Variable("z", OptionDomain(IntRangeDomain(0, length))),
        Variable("j", IntRangeDomain(0, length)),
        Variable("zp", OptionDomain(message_domain)),
    ]
    for k in range(length):
        variables.append(Variable(_x(k), alpha_domain))
        variables.append(Variable(_w(k), OptionDomain(alpha_domain)))
    return StateSpace(variables)


def symbolic_init_expr(params: SeqTransParams) -> Expr:
    """``init`` as an expression: counters zero, buffers empty, ``x`` free.

    Each conjunct reads a single variable, so the ROBDD compilation of
    ``init`` is a cube — no state sweep at any ``L``.  A priori
    information (§6.4) pins the named slots of ``x``.
    """
    conjuncts: List[Any] = [
        var("i").eq(const(0)),
        var("j").eq(const(0)),
        var("z").eq(const(BOT)),
        var("zp").eq(const(BOT)),
    ]
    conjuncts.extend(var(_w(k)).eq(const(BOT)) for k in range(params.length))
    fixed = params.apriori or {}
    conjuncts.extend(
        var(_x(k)).eq(const(value)) for k, value in sorted(fixed.items())
    )
    return land(*conjuncts)


def _sender_statements(params: SeqTransParams) -> List[Statement]:
    """Per-slot transmit statements plus the advance statement.

    ``snd_data`` is split by slot so the update ``zp := (k, x_k)`` reads
    one symbol instead of all of ``x`` — the factoring that keeps the
    relational compilation's support enumeration O(1) per statement.
    """
    length = params.length
    statements = [
        Statement(
            name=f"snd_data_{k}",
            targets=("zp",),
            exprs=(tup(const(k), var(_x(k))),),
            guard=land(
                var("i").eq(const(k)), lnot(var("z").eq(const(k + 1)))
            ),
        )
        for k in range(length)
    ]
    statements.append(
        Statement(
            name="snd_next",
            targets=("i",),
            exprs=(var("i") + const(1),),
            guard=land(
                var("z").eq(var("i") + const(1)), var("i") < const(length - 1)
            ),
        )
    )
    return statements


def _receiver_statements(params: SeqTransParams) -> List[Statement]:
    """Per-slot/per-symbol delivery plus the acknowledgement statement."""
    length = params.length
    statements = [
        Statement(
            name=f"rcv_deliver_{k}_{alpha}",
            targets=(_w(k), "j"),
            exprs=(const(alpha), var("j") + const(1)),
            guard=land(
                var("j").eq(const(k)), var("zp").eq(const((k, alpha)))
            ),
        )
        for k in range(length)
        for alpha in params.alphabet
    ]
    has_current = lor(
        *[
            var("zp").eq(tup(var("j"), const(alpha)))
            for alpha in params.alphabet
        ]
    )
    statements.append(
        Statement(
            name="rcv_ack",
            targets=("z",),
            exprs=(var("j"),),
            guard=lnot(has_current),
        )
    )
    return statements


def build_symbolic_protocol(params: SeqTransParams = SeqTransParams()) -> Program:
    """The factored Figure-4 protocol over the reliable zero-latency channel.

    A standard (knowledge-free) program: its SI is the plain ``sst``
    fixpoint of eq. (3), which :func:`repro.core.kbp.solve_si` computes
    with no size guard — on symbolic-scale spaces the chain runs on
    ROBDD handles end to end.
    """
    space = build_symbolic_space(params)
    x_names = tuple(_x(k) for k in range(params.length))
    w_names = tuple(_w(k) for k in range(params.length))
    tag = f"L={params.length},|A|={len(params.alphabet)},reliable"
    return Program(
        space=space,
        init=symbolic_init_expr(params),
        statements=_sender_statements(params) + _receiver_statements(params),
        processes={
            SENDER: x_names + ("i", "z"),
            RECEIVER: w_names + ("j", "zp"),
        },
        name=f"seqtrans-symbolic[{tag}]",
    )


def slot_safety_expr(params: SeqTransParams) -> Expr:
    """The (34)-style safety property, slot by slot.

    ``⋀_k ((j > k) ⇒ w_k = x_k) ∧ ((j ≤ k) ⇒ w_k = ⊥)`` — delivered
    slots carry the transmitted symbol, undelivered slots are empty
    (this conjunction is the factored form of "``w`` is a prefix of
    ``x`` of length ``j``", invariants (34) + (36)).  Each conjunct
    reads ``{j, w_k, x_k}`` only.
    """
    conjuncts: List[Any] = []
    for k in range(params.length):
        delivered = var("j") > const(k)
        conjuncts.append(
            lor(lnot(delivered), var(_w(k)).eq(var(_x(k))))
        )
        conjuncts.append(lor(delivered, var(_w(k)).eq(const(BOT))))
    return land(*conjuncts)


def delivered_count_is(params: SeqTransParams, count: int) -> Expr:
    """``j = count`` — with ``count = L`` this is "everything delivered"."""
    return var("j").eq(const(count))


def symbolic_model_key(params: SeqTransParams) -> str:
    """The model-registry key certifying artifacts use for this instance."""
    return f"seqtrans-symbolic-L{params.length}-reliable"


def symbolic_safety_predicate(program: Program, params: SeqTransParams) -> Predicate:
    """:func:`slot_safety_expr` as a predicate over ``program``'s space."""
    return program.expr_predicate(slot_safety_expr(params))


def delivered_all_predicate(program: Program, params: SeqTransParams) -> Predicate:
    """States where the Receiver has delivered the full sequence."""
    return program.expr_predicate(delivered_count_is(params, params.length))
