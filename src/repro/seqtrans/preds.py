"""Named predicates of the sequence transmission proofs (paper §6).

Every predicate the paper's derivations mention, as exact bitsets over the
protocol state space.  The knowledge predicates come in two flavours:

* the *proposed* values (50)/(51) from :mod:`repro.seqtrans.standard`, and
* the *actual* values computed by the knowledge operator from the standard
  protocol's strongest invariant —

which §6.3 shows to coincide on SI when there is no a priori information.
"""

from __future__ import annotations

from typing import Any

from ..predicates import Predicate, conjunction
from ..statespace import StateSpace
from .params import SeqTransParams
from .standard import proposed_k_r_any, proposed_k_s_k_r


def _memo(space: StateSpace, key, build):
    """Per-space predicate cache (protocol predicates are queried repeatedly)."""
    cache = getattr(space, "_seqtrans_pred_cache", None)
    if cache is None:
        cache = {}
        space._seqtrans_pred_cache = cache
    if key not in cache:
        cache[key] = build()
    return cache[key]


def i_eq(space: StateSpace, k: int) -> Predicate:
    """``i = k``."""
    return _memo(space, ("i_eq", k), lambda: Predicate.from_callable(space, lambda s: s["i"] == k))


def i_ge(space: StateSpace, k: int) -> Predicate:
    """``i ≥ k``."""
    return _memo(space, ("i_ge", k), lambda: Predicate.from_callable(space, lambda s: s["i"] >= k))


def i_gt(space: StateSpace, k: int) -> Predicate:
    """``i > k``."""
    return _memo(space, ("i_gt", k), lambda: Predicate.from_callable(space, lambda s: s["i"] > k))


def z_eq(space: StateSpace, k: int) -> Predicate:
    """``z = k`` (false at ``z = ⊥``)."""
    return _memo(space, ("z_eq", k), lambda: Predicate.from_callable(space, lambda s: s["z"] == k))


def z_ge(space: StateSpace, k: int) -> Predicate:
    """``z ≥ k`` (false at ``z = ⊥``)."""
    return _memo(space, ("z_ge", k), lambda: Predicate.from_callable(
        space, lambda s: isinstance(s["z"], int) and s["z"] >= k
    ))


def cr_ge(space: StateSpace, k: int) -> Predicate:
    """``cr ≥ k`` — the in-flight ack is at least ``k``."""
    return _memo(space, ("cr_ge", k), lambda: Predicate.from_callable(
        space, lambda s: isinstance(s["cr"], int) and s["cr"] >= k
    ))


def cs_eq(space: StateSpace, k: int, alpha: Any) -> Predicate:
    """``cs = (k, α)`` — the in-flight data message."""
    return _memo(space, ("cs_eq", k, alpha), lambda: Predicate.from_callable(space, lambda s: s["cs"] == (k, alpha)))


def zp_eq(space: StateSpace, k: int, alpha: Any) -> Predicate:
    """``z' = (k, α)``."""
    return _memo(space, ("zp_eq", k, alpha), lambda: Predicate.from_callable(space, lambda s: s["zp"] == (k, alpha)))


def w_at(space: StateSpace, k: int, alpha: Any) -> Predicate:
    """``|w| > k ∧ w_k = α``."""
    return _memo(space, ("w_at", k, alpha), lambda: Predicate.from_callable(
        space, lambda s: len(s["w"]) > k and s["w"][k] == alpha
    ))


def x_at(space: StateSpace, k: int, alpha: Any) -> Predicate:
    """The ground fact ``x_k = α``."""
    return _memo(space, ("x_at", k, alpha), lambda: Predicate.from_callable(space, lambda s: s["x"][k] == alpha))


def w_len_eq_j(space: StateSpace) -> Predicate:
    """Invariant (36)'s predicate: ``|w| = j``."""
    return _memo(space, ("w_len_eq_j",), lambda: Predicate.from_callable(space, lambda s: len(s["w"]) == s["j"]))


def w_prefix_x(space: StateSpace) -> Predicate:
    """Safety (34)'s predicate: ``w ⊑ x``."""
    return _memo(space, ("w_prefix_x",), lambda: Predicate.from_callable(
        space, lambda s: tuple(s["x"][: len(s["w"])]) == tuple(s["w"])
    ))


def all_known_below_j(space: StateSpace, params: SeqTransParams) -> Predicate:
    """Invariant (37)'s predicate: ``(∀l : 0 ≤ l < j : K_R x_l)`` (proposed K)."""
    terms = []
    for l in range(params.length):
        j_le = Predicate.from_callable(space, lambda s, l=l: s["j"] <= l)
        terms.append(j_le | proposed_k_r_any(space, params, l))
    return conjunction(space, terms)


def all_acked_below_i(space: StateSpace, params: SeqTransParams) -> Predicate:
    """Invariant (38)'s predicate: ``(∀l : 0 ≤ l < i : K_S K_R x_l)`` (proposed K)."""
    terms = []
    for l in range(params.length):
        i_le = Predicate.from_callable(space, lambda s, l=l: s["i"] <= l)
        terms.append(i_le | proposed_k_s_k_r(space, l))
    return conjunction(space, terms)


def all_acked_below(space: StateSpace, k: int) -> Predicate:
    """``(∀l : 0 ≤ l < k : K_S K_R x_l)`` with a constant bound ``k`` (proposed K)."""
    terms = [proposed_k_s_k_r(space, l) for l in range(k)]
    return conjunction(space, terms)
