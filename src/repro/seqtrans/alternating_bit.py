"""The alternating bit protocol [BSW69] as a bounded UNITY program.

One of the classical finite-state protocols that [HZar] obtains by
refining the infinite-state standard protocol (our Figure 4): instead of
unbounded sequence numbers, messages carry a single *alternation bit*.
The sender retransmits ``(sbit, x_i)`` until the ack echoes ``sbit``, then
flips the bit and advances; the receiver delivers a message whose bit
matches the expected ``rbit``, flips ``rbit``, and (whenever it has
nothing deliverable) acks the complement of ``rbit`` — i.e. the bit of the
last delivered message.

The channel may lose and duplicate but not reorder — exactly what the
single-slot channels of :mod:`repro.seqtrans.channels` provide, and
exactly the fault model under which the alternating bit protocol is
famously correct.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..predicates import Predicate
from ..statespace import (
    BOT,
    BoolDomain,
    EnumDomain,
    IntRangeDomain,
    SeqDomain,
    StateSpace,
    TupleDomain,
    Variable,
)
from ..unity import Length, Program, Statement, const, lnot, lor, tup, var
from .channels import ChannelSpec, bounded_loss
from .params import SeqTransParams


def build_ab_space(params: SeqTransParams, channel: ChannelSpec) -> StateSpace:
    """State space of the alternating bit protocol."""
    alpha_domain = EnumDomain("A", params.alphabet)
    length = params.length
    bit = BoolDomain()
    message_domain = TupleDomain(bit, alpha_domain)
    variables = [
        Variable("x", TupleDomain(*([alpha_domain] * length))),
        Variable("i", IntRangeDomain(0, length - 1)),
        Variable("sbit", bit),
        Variable("w", SeqDomain(alpha_domain, length)),
        Variable("rbit", bit),
    ]
    # Received-message mailboxes, then channel slots (za: acks, zb: data).
    from ..statespace import OptionDomain

    variables.append(Variable("zb", OptionDomain(message_domain)))
    variables.append(Variable("za", OptionDomain(bit)))
    variables.extend(channel.slot_variables(message_domain, bit))
    return StateSpace(variables)


def build_alternating_bit(
    params: SeqTransParams = SeqTransParams(),
    channel: ChannelSpec = bounded_loss(1),
) -> Program:
    """The alternating bit protocol over the given channel."""
    space = build_ab_space(params, channel)
    length = params.length
    receive_ack = channel.receive_ack_updates(target="za")
    receive_data = channel.receive_data_updates(target="zb")
    statements: List[Statement] = []

    # Sender: retransmit (sbit, x_i) until the ack echoes sbit.
    send_updates: Dict[str, Any] = dict(
        channel.transmit_data_updates(tup(var("sbit"), var("x")[var("i")]))
    )
    send_updates.update(receive_ack)
    statements.append(
        Statement(
            name="ab_snd_data",
            targets=tuple(send_updates),
            exprs=tuple(send_updates.values()),
            guard=lnot(var("za").eq(var("sbit"))),
        )
    )
    advance_updates: Dict[str, Any] = {
        "i": var("i") + const(1),
        "sbit": lnot(var("sbit")),
    }
    advance_updates.update(receive_ack)
    statements.append(
        Statement(
            name="ab_snd_next",
            targets=tuple(advance_updates),
            exprs=tuple(advance_updates.values()),
            guard=(var("za").eq(var("sbit"))) & (var("i") < const(length - 1)),
        )
    )

    # Receiver: deliver on a matching bit, flip rbit.
    for alpha in params.alphabet:
        deliver_updates: Dict[str, Any] = {
            "w": _append(alpha),
            "rbit": lnot(var("rbit")),
        }
        deliver_updates.update(receive_data)
        statements.append(
            Statement(
                name=f"ab_rcv_deliver_{alpha}",
                targets=tuple(deliver_updates),
                exprs=tuple(deliver_updates.values()),
                guard=(Length(var("w")) < const(length))
                & (var("zb").eq(tup(var("rbit"), const(alpha)))),
            )
        )
    # Receiver: when nothing deliverable, ack the last delivered bit (¬rbit).
    matching = lor(
        *[var("zb").eq(tup(var("rbit"), const(alpha))) for alpha in params.alphabet]
    )
    ack_updates: Dict[str, Any] = dict(
        channel.transmit_ack_updates(lnot(var("rbit")))
    )
    ack_updates.update(receive_data)
    statements.append(
        Statement(
            name="ab_rcv_ack",
            targets=tuple(ack_updates),
            exprs=tuple(ack_updates.values()),
            guard=lnot(matching),
        )
    )

    bit = BoolDomain()
    message_domain = TupleDomain(bit, EnumDomain("A", params.alphabet))
    statements.extend(channel.environment_statements(message_domain, bit))
    init = _initial(params, channel, space)
    return Program(
        space=space,
        init=init,
        statements=statements,
        processes={
            "Sender": ("x", "i", "sbit", "za"),
            "Receiver": ("w", "rbit", "zb"),
        },
        name=f"alternating-bit[L={params.length},{channel.kind.value}]",
    )


def _append(alpha):
    from ..unity import Append

    return Append(var("w"), const(alpha))


def _initial(params: SeqTransParams, channel: ChannelSpec, space: StateSpace) -> Predicate:
    channel_init = channel.initial_assignment()
    fixed = params.apriori or {}

    def is_initial(state) -> bool:
        if state["i"] != 0 or state["w"] != ():
            return False
        if state["sbit"] is not False or state["rbit"] is not False:
            return False
        if state["zb"] is not BOT or state["za"] is not BOT:
            return False
        for name, value in channel_init.items():
            if state[name] != value:
                return False
        return all(state["x"][k] == v for k, v in fixed.items())

    return Predicate.from_callable(space, is_initial)
