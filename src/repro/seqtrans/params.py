"""Parameters of the bounded sequence-transmission models (paper section 6).

The paper's protocol transmits an *infinite* sequence ``x`` over a finite
alphabet ``A`` with unbounded counters.  The bounded instantiation fixes a
transmission length ``L``; ``x`` ranges over ``A^L`` (it is a genuine
*variable*, constant during execution — this is what makes the knowledge
predicates non-trivial: with no a priori information every value of ``x``
is initially possible), counters range over ``0..L``, and the delivered
prefix ``w`` over sequences of length ≤ ``L``.

See DESIGN.md §2 for why this preserves the paper's proof obligations:
every numbered result (36)–(62) is universally quantified over the index
``k``, and the bounded model exercises each instance with ``k < L``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple


@dataclass(frozen=True)
class SeqTransParams:
    """Configuration of a bounded sequence-transmission instance.

    Parameters
    ----------
    alphabet:
        The finite alphabet ``A`` (at least two symbols for the protocol to
        be non-degenerate, as the paper notes in §6.3).
    length:
        ``L`` — number of elements to transmit.
    apriori:
        Optional a priori information: a mapping ``index → value`` fixing
        some elements of ``x`` in the initial condition (the §6.4
        experiments).  ``None`` means no a priori information.
    """

    alphabet: Tuple[Any, ...] = ("a", "b")
    length: int = 2
    apriori: Optional[Dict[int, Any]] = None

    def __post_init__(self):
        if len(set(self.alphabet)) != len(self.alphabet) or not self.alphabet:
            raise ValueError("alphabet must be non-empty and duplicate-free")
        if self.length < 1:
            raise ValueError("length must be >= 1")
        if self.apriori:
            for index, value in self.apriori.items():
                if not 0 <= index < self.length:
                    raise ValueError(f"a priori index {index} out of range")
                if value not in self.alphabet:
                    raise ValueError(f"a priori value {value!r} not in alphabet")
            # Freeze for hashability.
            object.__setattr__(self, "apriori", dict(self.apriori))

    def __hash__(self):
        apriori = tuple(sorted(self.apriori.items())) if self.apriori else ()
        return hash((self.alphabet, self.length, apriori))

    def x_values(self):
        """All values of ``x`` consistent with the a priori information."""
        import itertools

        fixed = self.apriori or {}
        for combo in itertools.product(self.alphabet, repeat=self.length):
            if all(combo[k] == v for k, v in fixed.items()):
                yield combo
