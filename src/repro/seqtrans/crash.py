"""Process crash/restart faults for the sequence transmission protocols.

A *crash* resets a process's local variables to their initial values while
the shared channel slots persist — the standard crash-restart fault model,
and a direct probe of the paper's eqs. (23)/(24): knowledge, defined
through the strongest invariant, is itself *invariant*, so a process can
only know what survives every statement of the program.  Once crash
statements are part of the program, ``K_R φ`` can only hold at states from
which **no** future crash erases the evidence — equivalently, a crashed
process wakes up knowing nothing beyond ``init``'s a priori information,
and the protocol must *re-establish* its knowledge through the channel.

Whether it can depends on what persists: on a reliable channel the data
slot ``cs`` survives a receiver crash, so the receiver re-reads it and
relearns ``x_0`` (the protocol heals); on a lossy/bounded-loss channel the
adversary can drop the slot *and* the sender may already have consumed its
retransmission budget or disabled itself on a stale ack — recovery is no
longer guaranteed.  The soak matrix (:mod:`repro.sim.soak`) exercises both
cells against model-checked ground truth.

Crashes are *budgeted* by a shared fuel variable ``cb`` (crashes are
environment faults, not process steps): with ``budget = b`` at most ``b``
crashes occur in any run, so liveness questions stay decidable — after the
fuel runs out the program is the original one, restarted from whatever
state the crashes left behind.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Tuple

from ..statespace import BOT, IntRangeDomain, Variable
from ..unity import Statement, const, var

#: Local-variable reset values for the Figure-3/Figure-4 protocols:
#: counters to zero, mailboxes to ``⊥``, the delivered prefix to empty.
#: The Sender's input ``x`` is *not* reset — it is the datum being
#: transmitted, fixed (nondeterministically) by ``init`` itself.
SEQTRANS_RESETS: Dict[str, Dict[str, Any]] = {
    "Sender": {"i": 0, "z": BOT},
    "Receiver": {"w": (), "j": 0, "zp": BOT},
}


@dataclass(frozen=True)
class CrashSpec:
    """Which processes may crash, and how many times in total.

    ``budget = 0`` is the degenerate no-crash case: no fuel variable, no
    statements — the program is unchanged (mirroring
    :attr:`~repro.seqtrans.channels.ChannelSpec.effective_kind`).
    """

    processes: Tuple[str, ...] = ("Receiver",)
    budget: int = 1

    def __post_init__(self):
        if self.budget < 0:
            raise ValueError("crash budget must be >= 0")
        if not self.processes:
            raise ValueError("CrashSpec needs at least one process")

    @property
    def label(self) -> str:
        """Short tag for program names and soak-cell keys."""
        if self.budget == 0:
            return "nocrash"
        return "crash-" + "+".join(p.lower() for p in self.processes)

    def crash_variables(self) -> List[Variable]:
        """The shared crash-fuel variable (empty when ``budget = 0``)."""
        if self.budget == 0:
            return []
        return [Variable("cb", IntRangeDomain(0, self.budget))]

    def initial_assignment(self) -> Dict[str, Any]:
        """Initial values of the crash variables (fuel full)."""
        if self.budget == 0:
            return {}
        return {"cb": self.budget}

    def crash_statements(
        self, resets: Mapping[str, Mapping[str, Any]] = SEQTRANS_RESETS
    ) -> List[Statement]:
        """One ``crash_<process>`` statement per crashable process.

        Each statement assigns the process's reset values and burns one
        unit of fuel; its guard is just ``cb > 0`` (a crash can strike at
        any time).  Shared slots are untouched: whatever was in flight
        stays in flight.
        """
        if self.budget == 0:
            return []
        statements = []
        for process in self.processes:
            if process not in resets:
                raise ValueError(
                    f"no reset values for process {process!r} "
                    f"(have {sorted(resets)})"
                )
            updates: Dict[str, Any] = {
                name: const(value) for name, value in resets[process].items()
            }
            updates["cb"] = var("cb") - const(1)
            statements.append(
                Statement(
                    name=f"crash_{process.lower()}",
                    targets=tuple(updates),
                    exprs=tuple(updates.values()),
                    guard=var("cb") > const(0),
                )
            )
        return statements
