"""Channel models for the sequence transmission protocols.

The paper leaves the communication channel abstract and only *assumes*
liveness properties ((Kbp-1)/(Kbp-2) at the knowledge level, (St-3)/(St-4)
at the standard level): a message transmitted repeatedly is eventually
received, "guaranteed by a communication channel that will eventually
correctly deliver any message that is sent repeatedly".  The safety side
((St-1)/(St-2)) says a received legal value was actually sent.

This module provides concrete single-slot channels over two shared slot
variables (data: Sender→Receiver, acks: Receiver→Sender):

* ``transmit(v)``  =  write ``v`` into the slot (overwriting what was
  there — an un-received older message is thereby lost);
* ``receive(var)`` =  copy the slot into ``var`` (without clearing — the
  same message can be received repeatedly, modelling *duplication*);
* an environment ``lose`` statement sets a slot to ``⊥`` (modelling both
  *loss* and *detectable corruption*, which are indistinguishable to the
  receiver since corrupted messages read as ``⊥``).

Five disciplines for the environment statements:

* ``RELIABLE``      — no environment statements at all;
* ``LOSSY``         — unrestricted ``lose``: statement fairness alone does
  **not** give (St-3)/(St-4) (the adversary can lose every message while
  still scheduling fairly), so the protocol's liveness *fails* — this is
  experiment E13's negative arm;
* ``BOUNDED_LOSS``  — each slot carries a loss *budget* decremented per
  loss and replenished whenever the destination process performs a
  successful (non-⊥) receive; at most ``budget`` consecutive losses can
  separate successful receives, which realizes the paper's channel
  assumption and makes (St-3)/(St-4) theorems of the model;
* ``DUPLICATING_REORDER`` — a two-slot data channel: transmitting pushes
  the previous message into a second slot, and an environment ``swap``
  statement exchanges the slots — so two outstanding messages can arrive
  in either order, each any number of times.  Sequence numbers keep
  *safety* intact (stale or duplicated messages are recognized), but
  liveness is refutable: a demonic swap schedule parks the fresh message
  in the hidden slot just before every retransmission overwrites it;
* ``CORRUPTING``    — budgeted **undetectable** corruption: an
  environment statement rewrites a slot to a different *legal* value
  (the value part of a data message, the counter of an ack), at most
  ``budget`` times.  Unlike loss-as-⊥ the receiver cannot tell — this is
  the attack the paper's channel assumption quietly excludes, and it
  breaks the *safety* side (a received legal value was NOT sent).

Because received values are only ever copies of transmitted slot values,
the history-variable invariants (St-1)/(St-2) hold *by construction* for
the first four disciplines (CORRUPTING is the documented exception); the
history variables ``ch_S``/``ch_R`` of Figure 4 are therefore not part of
the state (DESIGN.md §2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..statespace import BOT, Domain, IntRangeDomain, OptionDomain, Variable
from ..unity import Expr, Statement, const, ite, var


class ChannelKind(enum.Enum):
    """Fault discipline of the single-slot channels."""

    RELIABLE = "reliable"
    LOSSY = "lossy"
    BOUNDED_LOSS = "bounded_loss"
    DUPLICATING_REORDER = "dup_reorder"
    CORRUPTING = "corrupting"


@dataclass(frozen=True)
class ChannelSpec:
    """A channel discipline plus its fault budget.

    ``budget`` meters the discipline's faults: consecutive losses for
    ``BOUNDED_LOSS``, total corruptions for ``CORRUPTING`` (unused
    otherwise).  A metered channel with ``budget=0`` is *exactly* a
    reliable one — no fault statement can ever fire and the budget
    variables would be dead weight in the state space.
    :attr:`effective_kind` makes that degeneration explicit: every
    structural method branches on it, so ``bounded_loss(0)`` and
    ``corrupting(0)`` build the same variables, initial values, and
    statements as ``RELIABLE``.
    """

    kind: ChannelKind = ChannelKind.BOUNDED_LOSS
    budget: int = 1

    def __post_init__(self):
        if (
            self.kind in (ChannelKind.BOUNDED_LOSS, ChannelKind.CORRUPTING)
            and self.budget < 0
        ):
            raise ValueError(
                f"{self.kind.value} channel needs budget >= 0 "
                "(budget=0 degenerates to a reliable channel)"
            )

    @property
    def spec(self) -> str:
        """Canonical spec string (round-trips through :func:`channel_from_spec`)."""
        if self.kind in (ChannelKind.BOUNDED_LOSS, ChannelKind.CORRUPTING):
            return f"{self.kind.value}:{self.budget}"
        return self.kind.value

    @property
    def effective_kind(self) -> ChannelKind:
        """The discipline actually realized (``budget=0`` ⇒ reliable)."""
        if (
            self.kind in (ChannelKind.BOUNDED_LOSS, ChannelKind.CORRUPTING)
            and self.budget == 0
        ):
            return ChannelKind.RELIABLE
        return self.kind

    # ------------------------------------------------------------------
    # state-space contribution
    # ------------------------------------------------------------------

    def slot_variables(
        self, data_domain: Domain, ack_domain: Domain
    ) -> List[Variable]:
        """The channel's variables: slots, plus budgets/extra slots per kind."""
        variables = [
            Variable("cs", OptionDomain(data_domain)),  # data slot S→R
            Variable("cr", OptionDomain(ack_domain)),  # ack slot R→S
        ]
        kind = self.effective_kind
        if kind is ChannelKind.BOUNDED_LOSS:
            budget_domain = IntRangeDomain(0, self.budget)
            variables.append(Variable("bs", budget_domain))
            variables.append(Variable("br", budget_domain))
        elif kind is ChannelKind.DUPLICATING_REORDER:
            variables.append(Variable("cs2", OptionDomain(data_domain)))
        elif kind is ChannelKind.CORRUPTING:
            variables.append(Variable("kc", IntRangeDomain(0, self.budget)))
        return variables

    def initial_assignment(self) -> dict:
        """Initial values of the channel variables (slots empty, budgets full)."""
        init: Dict[str, Any] = {"cs": BOT, "cr": BOT}
        kind = self.effective_kind
        if kind is ChannelKind.BOUNDED_LOSS:
            init["bs"] = self.budget
            init["br"] = self.budget
        elif kind is ChannelKind.DUPLICATING_REORDER:
            init["cs2"] = BOT
        elif kind is ChannelKind.CORRUPTING:
            init["kc"] = self.budget
        return init

    # ------------------------------------------------------------------
    # statement fragments used by the protocol builders
    # ------------------------------------------------------------------

    def transmit_data_updates(self, message: Expr) -> dict:
        """Assignments performing ``transmit(message)`` on the data slot.

        On the two-slot reordering channel the previous message is pushed
        into the second slot instead of being overwritten, so up to two
        transmissions are concurrently in flight.
        """
        if self.effective_kind is ChannelKind.DUPLICATING_REORDER:
            return {"cs": message, "cs2": var("cs")}
        return {"cs": message}

    def transmit_ack_updates(self, ack: Expr) -> dict:
        """Assignments performing ``transmit(ack)`` on the ack slot."""
        return {"cr": ack}

    def receive_data_updates(self, target: str = "zp") -> dict:
        """Assignments a Receiver statement adds to perform ``receive(z')``.

        Copies the data slot; on a bounded-loss channel a successful
        (non-⊥) receive also replenishes that slot's loss budget.
        """
        updates = {target: var("cs")}
        if self.effective_kind is ChannelKind.BOUNDED_LOSS:
            updates["bs"] = ite(var("cs").ne(const(BOT)), const(self.budget), var("bs"))
        return updates

    def receive_ack_updates(self, target: str = "z") -> dict:
        """Assignments a Sender statement adds to perform ``receive(z)``."""
        updates = {target: var("cr")}
        if self.effective_kind is ChannelKind.BOUNDED_LOSS:
            updates["br"] = ite(var("cr").ne(const(BOT)), const(self.budget), var("br"))
        return updates

    def environment_statements(
        self,
        data_domain: Optional[Domain] = None,
        ack_domain: Optional[Domain] = None,
    ) -> List[Statement]:
        """The channel's own (environment) statements per discipline.

        The corrupting discipline needs the message/ack domains to
        enumerate the legal wrong values; the builders pass the same
        domains they handed to :meth:`slot_variables`.
        """
        statements: List[Statement] = []
        kind = self.effective_kind
        if kind is ChannelKind.RELIABLE:
            return statements
        if kind is ChannelKind.LOSSY:
            statements.append(
                Statement(
                    name="lose_data",
                    targets=("cs",),
                    exprs=(const(BOT),),
                    guard=var("cs").ne(const(BOT)),
                )
            )
            statements.append(
                Statement(
                    name="lose_ack",
                    targets=("cr",),
                    exprs=(const(BOT),),
                    guard=var("cr").ne(const(BOT)),
                )
            )
            return statements
        if kind is ChannelKind.DUPLICATING_REORDER:
            statements.append(
                Statement(
                    name="swap_data",
                    targets=("cs", "cs2"),
                    exprs=(var("cs2"), var("cs")),
                    guard=var("cs").ne(var("cs2")),
                )
            )
            return statements
        if kind is ChannelKind.CORRUPTING:
            if data_domain is None or ack_domain is None:
                raise ValueError(
                    "a corrupting channel needs the data/ack domains to "
                    "enumerate legal wrong values; pass them to "
                    "environment_statements"
                )
            corrupt_data = _corruption_expr("cs", data_domain)
            corrupt_ack = _corruption_expr("cr", ack_domain)
            if corrupt_data is not None:
                statements.append(
                    Statement(
                        name="corrupt_data",
                        targets=("cs", "kc"),
                        exprs=(corrupt_data, var("kc") - const(1)),
                        guard=(var("cs").ne(const(BOT))) & (var("kc") > const(0)),
                    )
                )
            if corrupt_ack is not None:
                statements.append(
                    Statement(
                        name="corrupt_ack",
                        targets=("cr", "kc"),
                        exprs=(corrupt_ack, var("kc") - const(1)),
                        guard=(var("cr").ne(const(BOT))) & (var("kc") > const(0)),
                    )
                )
            return statements
        # BOUNDED_LOSS: losses gated and metered by the budgets.
        statements.append(
            Statement(
                name="lose_data",
                targets=("cs", "bs"),
                exprs=(const(BOT), var("bs") - const(1)),
                guard=(var("cs").ne(const(BOT))) & (var("bs") > const(0)),
            )
        )
        statements.append(
            Statement(
                name="lose_ack",
                targets=("cr", "br"),
                exprs=(const(BOT), var("br") - const(1)),
                guard=(var("cr").ne(const(BOT))) & (var("br") > const(0)),
            )
        )
        return statements


def corruption_successors(values: Sequence[Any]) -> Dict[Any, Any]:
    """The deterministic wrong-value map over a domain's values.

    Tuple values (messages like ``(index, α)``) are corrupted in their
    *last* component only, cycling among the domain values that agree on
    everything else — so a corrupted data message keeps its sequence
    number but carries a different symbol, the undetectable case.
    Non-tuple values (ack counters) cycle among all values.  Values with
    no distinct sibling (singleton groups) are dropped: there is no wrong
    value to inject.
    """
    groups: Dict[Any, List[Any]] = {}
    for value in values:
        key = value[:-1] if isinstance(value, tuple) and len(value) >= 2 else ()
        groups.setdefault(key, []).append(value)
    successors: Dict[Any, Any] = {}
    for group in groups.values():
        if len(group) < 2:
            continue
        for a, b in zip(group, group[1:] + group[:1]):
            successors[a] = b
    return successors


def _corruption_expr(slot: str, domain: Domain) -> Optional[Expr]:
    """``ite`` chain rewriting ``slot`` to its wrong-value successor."""
    successors = corruption_successors(tuple(domain))
    if not successors:
        return None
    expr: Expr = var(slot)
    for value, wrong in successors.items():
        expr = ite(var(slot).eq(const(value)), const(wrong), expr)
    return expr


RELIABLE = ChannelSpec(ChannelKind.RELIABLE)
LOSSY = ChannelSpec(ChannelKind.LOSSY)
DUPLICATING_REORDER = ChannelSpec(ChannelKind.DUPLICATING_REORDER)


def bounded_loss(budget: int = 1) -> ChannelSpec:
    """A bounded-consecutive-loss channel (satisfies the paper's assumption)."""
    return ChannelSpec(ChannelKind.BOUNDED_LOSS, budget)


def corrupting(budget: int = 1) -> ChannelSpec:
    """A budgeted undetectable-corruption channel (violates (St-1)/(St-2))."""
    return ChannelSpec(ChannelKind.CORRUPTING, budget)


def channel_key(spec: ChannelSpec) -> str:
    """A registry-safe token for a channel (no punctuation).

    Used inside certificate model keys (``seqtrans-kbp-L1-bounded1``) and
    service program specs, where ``:`` would collide with other field
    separators.  Budgeted kinds append their budget digit-for-digit;
    round-trips through :func:`channel_from_key`.
    """
    if spec.kind is ChannelKind.BOUNDED_LOSS:
        return f"bounded{spec.budget}"
    if spec.kind is ChannelKind.CORRUPTING:
        return f"corrupting{spec.budget}"
    return spec.kind.value


def channel_from_key(key: str) -> ChannelSpec:
    """Rebuild a channel from its registry token (inverse of :func:`channel_key`).

    Tokens::

        reliable | lossy | dup_reorder | bounded<budget> | corrupting<budget>
    """
    if key == ChannelKind.RELIABLE.value:
        return RELIABLE
    if key == ChannelKind.LOSSY.value:
        return LOSSY
    if key == ChannelKind.DUPLICATING_REORDER.value:
        return DUPLICATING_REORDER
    for prefix, factory in (("bounded", bounded_loss), ("corrupting", corrupting)):
        if key.startswith(prefix) and key[len(prefix):].isdigit():
            return factory(int(key[len(prefix):]))
    raise ValueError(
        f"unknown channel key {key!r} (know reliable, lossy, dup_reorder, "
        "bounded<budget>, corrupting<budget>)"
    )


def channel_from_spec(spec: str) -> ChannelSpec:
    """Rebuild a channel from its canonical spec string.

    Specs (the inverse of :attr:`ChannelSpec.spec`, used as soak-matrix
    cell coordinates)::

        reliable | lossy | dup_reorder | bounded_loss:<budget> | corrupting:<budget>
    """
    head, _, arg = spec.partition(":")
    if head == ChannelKind.RELIABLE.value and not arg:
        return RELIABLE
    if head == ChannelKind.LOSSY.value and not arg:
        return LOSSY
    if head == ChannelKind.DUPLICATING_REORDER.value and not arg:
        return DUPLICATING_REORDER
    if head == ChannelKind.BOUNDED_LOSS.value:
        return bounded_loss(int(arg) if arg else 1)
    if head == ChannelKind.CORRUPTING.value:
        return corrupting(int(arg) if arg else 1)
    raise ValueError(
        f"unknown channel spec {spec!r} (know reliable, lossy, dup_reorder, "
        "bounded_loss:<budget>, corrupting:<budget>)"
    )
