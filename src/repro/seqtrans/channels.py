"""Channel models for the sequence transmission protocols.

The paper leaves the communication channel abstract and only *assumes*
liveness properties ((Kbp-1)/(Kbp-2) at the knowledge level, (St-3)/(St-4)
at the standard level): a message transmitted repeatedly is eventually
received, "guaranteed by a communication channel that will eventually
correctly deliver any message that is sent repeatedly".  The safety side
((St-1)/(St-2)) says a received legal value was actually sent.

This module provides concrete single-slot channels over two shared slot
variables (data: Sender→Receiver, acks: Receiver→Sender):

* ``transmit(v)``  =  write ``v`` into the slot (overwriting what was
  there — an un-received older message is thereby lost);
* ``receive(var)`` =  copy the slot into ``var`` (without clearing — the
  same message can be received repeatedly, modelling *duplication*);
* an environment ``lose`` statement sets a slot to ``⊥`` (modelling both
  *loss* and *detectable corruption*, which are indistinguishable to the
  receiver since corrupted messages read as ``⊥``).

Three disciplines for the ``lose`` statements:

* ``RELIABLE``      — no ``lose`` statements at all;
* ``LOSSY``         — unrestricted ``lose``: statement fairness alone does
  **not** give (St-3)/(St-4) (the adversary can lose every message while
  still scheduling fairly), so the protocol's liveness *fails* — this is
  experiment E13's negative arm;
* ``BOUNDED_LOSS``  — each slot carries a loss *budget* decremented per
  loss and replenished whenever the destination process performs a
  successful (non-⊥) receive; at most ``budget`` consecutive losses can
  separate successful receives, which realizes the paper's channel
  assumption and makes (St-3)/(St-4) theorems of the model.

Because received values are only ever copies of transmitted slot values,
the history-variable invariants (St-1)/(St-2) hold *by construction* here;
the history variables ``ch_S``/``ch_R`` of Figure 4 are therefore not part
of the state (DESIGN.md §2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from ..statespace import BOT, Domain, IntRangeDomain, OptionDomain, Variable
from ..unity import Statement, const, ite, var


class ChannelKind(enum.Enum):
    """Fault discipline of the single-slot channels."""

    RELIABLE = "reliable"
    LOSSY = "lossy"
    BOUNDED_LOSS = "bounded_loss"


@dataclass(frozen=True)
class ChannelSpec:
    """A channel discipline plus its loss budget (bounded-loss only).

    A bounded-loss channel with ``budget=0`` is *exactly* a reliable one —
    zero consecutive losses are permitted, so the ``lose`` statements can
    never fire and the budget variables would be dead weight in the state
    space.  :attr:`effective_kind` makes that degeneration explicit: every
    structural method branches on it, so ``bounded_loss(0)`` builds the
    same variables, initial values, and statements as ``RELIABLE``.
    """

    kind: ChannelKind = ChannelKind.BOUNDED_LOSS
    budget: int = 1

    def __post_init__(self):
        if self.kind is ChannelKind.BOUNDED_LOSS and self.budget < 0:
            raise ValueError(
                "bounded-loss channel needs budget >= 0 "
                "(budget=0 degenerates to a reliable channel)"
            )

    @property
    def effective_kind(self) -> ChannelKind:
        """The discipline actually realized (``budget=0`` ⇒ reliable)."""
        if self.kind is ChannelKind.BOUNDED_LOSS and self.budget == 0:
            return ChannelKind.RELIABLE
        return self.kind

    # ------------------------------------------------------------------
    # state-space contribution
    # ------------------------------------------------------------------

    def slot_variables(
        self, data_domain: Domain, ack_domain: Domain
    ) -> List[Variable]:
        """The channel's variables: two slots, plus budgets when bounded."""
        variables = [
            Variable("cs", OptionDomain(data_domain)),  # data slot S→R
            Variable("cr", OptionDomain(ack_domain)),  # ack slot R→S
        ]
        if self.effective_kind is ChannelKind.BOUNDED_LOSS:
            budget_domain = IntRangeDomain(0, self.budget)
            variables.append(Variable("bs", budget_domain))
            variables.append(Variable("br", budget_domain))
        return variables

    def initial_assignment(self) -> dict:
        """Initial values of the channel variables (slots empty, budgets full)."""
        init = {"cs": BOT, "cr": BOT}
        if self.effective_kind is ChannelKind.BOUNDED_LOSS:
            init["bs"] = self.budget
            init["br"] = self.budget
        return init

    # ------------------------------------------------------------------
    # statement fragments used by the protocol builders
    # ------------------------------------------------------------------

    def receive_data_updates(self, target: str = "zp") -> dict:
        """Assignments a Receiver statement adds to perform ``receive(z')``.

        Copies the data slot; on a bounded-loss channel a successful
        (non-⊥) receive also replenishes that slot's loss budget.
        """
        updates = {target: var("cs")}
        if self.effective_kind is ChannelKind.BOUNDED_LOSS:
            updates["bs"] = ite(var("cs").ne(const(BOT)), const(self.budget), var("bs"))
        return updates

    def receive_ack_updates(self, target: str = "z") -> dict:
        """Assignments a Sender statement adds to perform ``receive(z)``."""
        updates = {target: var("cr")}
        if self.effective_kind is ChannelKind.BOUNDED_LOSS:
            updates["br"] = ite(var("cr").ne(const(BOT)), const(self.budget), var("br"))
        return updates

    def environment_statements(self) -> List[Statement]:
        """The channel's own (environment) statements — the ``lose`` family."""
        statements: List[Statement] = []
        if self.effective_kind is ChannelKind.RELIABLE:
            return statements
        if self.effective_kind is ChannelKind.LOSSY:
            statements.append(
                Statement(
                    name="lose_data",
                    targets=("cs",),
                    exprs=(const(BOT),),
                    guard=var("cs").ne(const(BOT)),
                )
            )
            statements.append(
                Statement(
                    name="lose_ack",
                    targets=("cr",),
                    exprs=(const(BOT),),
                    guard=var("cr").ne(const(BOT)),
                )
            )
            return statements
        # BOUNDED_LOSS: losses gated and metered by the budgets.
        statements.append(
            Statement(
                name="lose_data",
                targets=("cs", "bs"),
                exprs=(const(BOT), var("bs") - const(1)),
                guard=(var("cs").ne(const(BOT))) & (var("bs") > const(0)),
            )
        )
        statements.append(
            Statement(
                name="lose_ack",
                targets=("cr", "br"),
                exprs=(const(BOT), var("br") - const(1)),
                guard=(var("cr").ne(const(BOT))) & (var("br") > const(0)),
            )
        )
        return statements


RELIABLE = ChannelSpec(ChannelKind.RELIABLE)
LOSSY = ChannelSpec(ChannelKind.LOSSY)


def bounded_loss(budget: int = 1) -> ChannelSpec:
    """A bounded-consecutive-loss channel (satisfies the paper's assumption)."""
    return ChannelSpec(ChannelKind.BOUNDED_LOSS, budget)
