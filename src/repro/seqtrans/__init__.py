"""The sequence transmission case study (paper section 6), end to end.

Builders for the bounded Figure-3 knowledge-based protocol, the Figure-4
standard protocol, the classical refinement family (alternating bit,
Stenning), the channel models, the specification checkers, and the
machine-checked replays of the paper's safety and liveness derivations.
"""

from .alternating_bit import build_alternating_bit
from .apriori import (
    TRANSMIT_STATEMENTS,
    AprioriComparison,
    KbpSolution,
    compare_with_apriori,
    solve_kbp,
)
from .channels import (
    DUPLICATING_REORDER,
    LOSSY,
    RELIABLE,
    ChannelKind,
    ChannelSpec,
    bounded_loss,
    channel_from_key,
    channel_from_spec,
    channel_key,
    corrupting,
    corruption_successors,
)
from .crash import SEQTRANS_RESETS, CrashSpec
from .instantiation import (
    InstantiationReport,
    TermComparison,
    check_instantiation,
    proposed_resolution,
)
from .kbp_protocol import build_kbp_protocol, k_r_any, k_r_value, k_s_k_r
from .params import SeqTransParams
from .proofs_kbp import LivenessProofs, channel_liveness_assumptions, prove_liveness
from .proofs_standard import StandardProofs, prove_all_standard
from .spec import SpecReport, check_spec, delivered_all, safety_predicate
from .standard import (
    RECEIVER,
    SENDER,
    build_standard_protocol,
    proposed_k_r_any,
    proposed_k_r_value,
    proposed_k_s_k_r,
)
from .stenning import build_stenning
from .symbolic import (
    build_symbolic_protocol,
    build_symbolic_space,
    delivered_all_predicate,
    slot_safety_expr,
    symbolic_init_expr,
    symbolic_model_key,
    symbolic_safety_predicate,
)

__all__ = [
    "build_alternating_bit",
    "TRANSMIT_STATEMENTS",
    "AprioriComparison",
    "KbpSolution",
    "compare_with_apriori",
    "solve_kbp",
    "DUPLICATING_REORDER",
    "LOSSY",
    "RELIABLE",
    "ChannelKind",
    "ChannelSpec",
    "bounded_loss",
    "channel_from_key",
    "channel_from_spec",
    "channel_key",
    "corrupting",
    "corruption_successors",
    "SEQTRANS_RESETS",
    "CrashSpec",
    "InstantiationReport",
    "TermComparison",
    "check_instantiation",
    "proposed_resolution",
    "build_kbp_protocol",
    "k_r_any",
    "k_r_value",
    "k_s_k_r",
    "SeqTransParams",
    "LivenessProofs",
    "channel_liveness_assumptions",
    "prove_liveness",
    "StandardProofs",
    "prove_all_standard",
    "SpecReport",
    "check_spec",
    "delivered_all",
    "safety_predicate",
    "RECEIVER",
    "SENDER",
    "build_standard_protocol",
    "proposed_k_r_any",
    "proposed_k_r_value",
    "proposed_k_s_k_r",
    "build_stenning",
    "build_symbolic_protocol",
    "build_symbolic_space",
    "delivered_all_predicate",
    "slot_safety_expr",
    "symbolic_init_expr",
    "symbolic_model_key",
    "symbolic_safety_predicate",
]
