"""Stenning's data transfer protocol [Ste82] as a bounded UNITY program.

The other classical member of the [HZar] protocol family: full sequence
numbers (window size 1 here), with the receiver acknowledging the sequence
number of *every* message it receives — in contrast to Figure 4's receiver,
which transmits the index it *wants* next.  The sender advances when the
ack equals its current index.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..predicates import Predicate
from ..statespace import (
    BOT,
    EnumDomain,
    IntRangeDomain,
    OptionDomain,
    SeqDomain,
    StateSpace,
    TupleDomain,
    Variable,
)
from ..unity import (
    Append,
    Length,
    Program,
    Proj,
    Statement,
    const,
    lnot,
    tup,
    var,
)
from .channels import ChannelSpec, bounded_loss
from .params import SeqTransParams


def build_stenning_space(params: SeqTransParams, channel: ChannelSpec) -> StateSpace:
    """State space of Stenning's protocol (window 1)."""
    alpha_domain = EnumDomain("A", params.alphabet)
    length = params.length
    index_domain = IntRangeDomain(0, length - 1)
    message_domain = TupleDomain(index_domain, alpha_domain)
    variables = [
        Variable("x", TupleDomain(*([alpha_domain] * length))),
        Variable("i", index_domain),
        Variable("w", SeqDomain(alpha_domain, length)),
        Variable("zb", OptionDomain(message_domain)),
        Variable("za", OptionDomain(index_domain)),
    ]
    variables.extend(channel.slot_variables(message_domain, index_domain))
    return StateSpace(variables)


def build_stenning(
    params: SeqTransParams = SeqTransParams(),
    channel: ChannelSpec = bounded_loss(1),
) -> Program:
    """Stenning's protocol over the given channel."""
    space = build_stenning_space(params, channel)
    length = params.length
    receive_ack = channel.receive_ack_updates(target="za")
    receive_data = channel.receive_data_updates(target="zb")
    statements: List[Statement] = []

    # Sender: retransmit (i, x_i) until acked, then advance.
    send_updates: Dict[str, Any] = dict(
        channel.transmit_data_updates(tup(var("i"), var("x")[var("i")]))
    )
    send_updates.update(receive_ack)
    statements.append(
        Statement(
            name="st_snd_data",
            targets=tuple(send_updates),
            exprs=tuple(send_updates.values()),
            guard=lnot(var("za").eq(var("i"))),
        )
    )
    advance_updates: Dict[str, Any] = {"i": var("i") + const(1)}
    advance_updates.update(receive_ack)
    statements.append(
        Statement(
            name="st_snd_next",
            targets=tuple(advance_updates),
            exprs=tuple(advance_updates.values()),
            guard=(var("za").eq(var("i"))) & (var("i") < const(length - 1)),
        )
    )

    # Receiver: deliver the message with the expected sequence number |w|.
    for alpha in params.alphabet:
        statements.append(
            Statement(
                name=f"st_rcv_deliver_{alpha}",
                targets=("w",),
                exprs=(Append(var("w"), const(alpha)),),
                guard=(Length(var("w")) < const(length))
                & (var("zb").eq(tup(Length(var("w")), const(alpha)))),
            )
        )
    # Receiver: acknowledge the sequence number of a message it has already
    # delivered (seq < |w|).  Acking on mere *receipt* would let the ack
    # overtake delivery: the mailbox could be overwritten before the value
    # is written to w, the sender would advance, and the element would be
    # stranded — a genuine protocol bug the model checker catches.
    delivered = Proj(var("zb"), 0) < Length(var("w"))
    ack_updates: Dict[str, Any] = dict(
        channel.transmit_ack_updates(Proj(var("zb"), 0))
    )
    ack_updates.update(receive_data)
    statements.append(
        Statement(
            name="st_rcv_ack",
            targets=tuple(ack_updates),
            exprs=tuple(ack_updates.values()),
            guard=(var("zb").ne(const(BOT))) & delivered,
        )
    )
    # Receiver: plain receive only while the mailbox is empty — a held
    # *undelivered* message must survive until rcv_deliver consumes it
    # (the same discipline Figure 4's receiver uses), or a fair scheduler
    # could overwrite it forever and starve delivery.
    idle_updates: Dict[str, Any] = dict(receive_data)
    statements.append(
        Statement(
            name="st_rcv_idle",
            targets=tuple(idle_updates),
            exprs=tuple(idle_updates.values()),
            guard=var("zb").eq(const(BOT)),
        )
    )

    index_domain = IntRangeDomain(0, length - 1)
    message_domain = TupleDomain(index_domain, EnumDomain("A", params.alphabet))
    statements.extend(channel.environment_statements(message_domain, index_domain))
    return Program(
        space=space,
        init=_initial(params, channel, space),
        statements=statements,
        processes={
            "Sender": ("x", "i", "za"),
            "Receiver": ("w", "zb"),
        },
        name=f"stenning[L={params.length},{channel.kind.value}]",
    )


def _initial(params: SeqTransParams, channel: ChannelSpec, space: StateSpace) -> Predicate:
    channel_init = channel.initial_assignment()
    fixed = params.apriori or {}

    def is_initial(state) -> bool:
        if state["i"] != 0 or state["w"] != ():
            return False
        if state["zb"] is not BOT or state["za"] is not BOT:
            return False
        for name, value in channel_init.items():
            if state[name] != value:
                return False
        return all(state["x"][k] == v for k, v in fixed.items())

    return Predicate.from_callable(space, is_initial)
