"""The knowledge-based sequence transmission protocol (paper Figure 3, bounded).

At each step the Sender transmits ``(i, x_i)`` while it does **not** know
that the Receiver knows ``x_i`` (``¬(K_S K_R x_k)@k=i``), and advances once
it does.  The Receiver delivers ``x_j`` when it knows its value
(``(K_R(x_k = α))@k=j``) and transmits the request ``j`` while it does not
(``¬K_R x_j``).

The paper's ``@k=i`` notation — a free index ``k`` evaluated at the current
value of ``i`` — is realized as a finite disjunction over the constant
indices ``k < L``::

    (K_S K_R x_k)@k=i   ≝   ∨_k ( i = k  ∧  K_S(∃α : K_R(x_k = α)) )

with every ``K`` term carrying a *constant* ``k``, exactly as the paper's
per-index proof obligations require.  Nested knowledge (``K_S K_R``) nests
:class:`~repro.unity.Knowledge` nodes; resolution is innermost-first.

The channel-liveness assumptions (Kbp-1)/(Kbp-2) and the stability
assumptions (Kbp-3)/(Kbp-4) are *not* built into the program — following
the paper they are separate properties, checked on each instantiation
(:mod:`repro.seqtrans.proofs_kbp`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..unity import (
    Append,
    Expr,
    Knowledge,
    Length,
    Program,
    Statement,
    const,
    knows,
    lnot,
    lor,
    tup,
    var,
)
from .channels import ChannelSpec, bounded_loss
from .crash import CrashSpec
from .params import SeqTransParams
from .standard import (
    RECEIVER,
    SENDER,
    build_space,
    channel_domains,
    initial_predicate,
)


def k_r_value(k: int, alpha: Any) -> Knowledge:
    """``K_R(x_k = α)`` with constant index ``k``."""
    return knows(RECEIVER, var("x")[const(k)].eq(const(alpha)))


def k_r_any(params: SeqTransParams, k: int) -> Expr:
    """``K_R x_k ≡ (∃α : K_R(x_k = α))`` (the paper's abbreviation)."""
    return lor(*[k_r_value(k, alpha) for alpha in params.alphabet])


def k_s_k_r(params: SeqTransParams, k: int) -> Knowledge:
    """``K_S K_R x_k`` — the Sender knows the Receiver knows ``x_k``."""
    return knows(SENDER, k_r_any(params, k))


def _at_current(index_var: str, params: SeqTransParams, body) -> Expr:
    """``(φ_k)@k=index_var`` as ``∨_k (index_var = k ∧ φ_k)``."""
    return lor(
        *[
            (var(index_var).eq(const(k))) & body(k)
            for k in range(params.length)
        ]
    )


def build_kbp_protocol(
    params: SeqTransParams = SeqTransParams(),
    channel: ChannelSpec = bounded_loss(1),
    crash: Optional[CrashSpec] = None,
) -> Program:
    """The bounded Figure-3 knowledge-based protocol over the given channel."""
    space = build_space(params, channel, crash=crash)
    length = params.length
    receive_ack = channel.receive_ack_updates()
    receive_data = channel.receive_data_updates()

    statements: List[Statement] = []

    # Sender: transmit (i, x_i) while ¬(K_S K_R x_k)@k=i.
    transmit_updates: Dict[str, Any] = dict(
        channel.transmit_data_updates(tup(var("i"), var("x")[var("i")]))
    )
    transmit_updates.update(receive_ack)
    statements.append(
        Statement(
            name="snd_data",
            targets=tuple(transmit_updates),
            exprs=tuple(transmit_updates.values()),
            guard=_at_current("i", params, lambda k: lnot(k_s_k_r(params, k))),
        )
    )

    # Sender: advance once (K_S K_R x_k)@k=i (bounded: only while i+1 < L).
    advance_updates: Dict[str, Any] = {"i": var("i") + const(1)}
    advance_updates.update(receive_ack)
    statements.append(
        Statement(
            name="snd_next",
            targets=tuple(advance_updates),
            exprs=tuple(advance_updates.values()),
            guard=_at_current("i", params, lambda k: k_s_k_r(params, k))
            & (var("i") < const(length - 1)),
        )
    )

    # Receiver: deliver α when (K_R(x_k = α))@k=j.
    for alpha in params.alphabet:
        deliver_updates: Dict[str, Any] = {
            "w": Append(var("w"), const(alpha)),
            "j": var("j") + const(1),
        }
        deliver_updates.update(receive_data)
        statements.append(
            Statement(
                name=f"rcv_deliver_{alpha}",
                targets=tuple(deliver_updates),
                exprs=tuple(deliver_updates.values()),
                # |w| < L keeps the append total off SI (cf. standard.py).
                guard=(var("j") < const(length))
                & (Length(var("w")) < const(length))
                & _at_current("j", params, lambda k, a=alpha: k_r_value(k, a)),
            )
        )

    # Receiver: request j while ¬K_R x_j (and keep acking at j = L so the
    # Sender can learn the transmission is complete — the bounded endgame).
    ack_updates: Dict[str, Any] = dict(channel.transmit_ack_updates(var("j")))
    ack_updates.update(receive_data)
    statements.append(
        Statement(
            name="rcv_ack",
            targets=tuple(ack_updates),
            exprs=tuple(ack_updates.values()),
            guard=(var("j").eq(const(length)))
            | _at_current("j", params, lambda k: lnot(k_r_any(params, k))),
        )
    )

    message_domain, counter_domain = channel_domains(params)
    statements.extend(channel.environment_statements(message_domain, counter_domain))
    tag = f"L={params.length},|A|={len(params.alphabet)},{channel.kind.value}"
    if crash is not None and crash.budget > 0:
        statements.extend(crash.crash_statements())
        tag += f",{crash.label}"
    return Program(
        space=space,
        init=initial_predicate(params, channel, space, crash=crash),
        statements=statements,
        processes={
            SENDER: ("x", "i", "z"),
            RECEIVER: ("w", "j", "zp"),
        },
        name=f"seqtrans-kbp[{tag}]",
    )
