"""Knowledge as a predicate transformer (paper section 3).

The central definition is eq. (13)::

    K_i p  ≡  p ∧ (wcyl.vars_i.(SI ⇒ p) ∨ ¬SI)

Process ``i`` *knows* ``p`` at a state when ``p`` holds at every global
state that is (a) possible — i.e. satisfies the strongest invariant ``SI``
— and (b) indistinguishable from the current one, i.e. agrees with it on
the variables accessible to ``i``.  The extra conjunct/disjunct gives
``K_i p`` the value of ``p`` on *unreachable* states, which the paper finds
technically convenient (it keeps eq. 14 valid everywhere).

:class:`KnowledgeOperator` fixes a state space, an ``SI`` predicate and the
process→variables map; it then interprets plain and *nested* knowledge
(``K_S K_R p``), the group operators ``E_G`` ("everyone knows") and common
knowledge ``C_G`` (greatest fixed point of ``X ↦ E_G(p ∧ X)``), which the
paper notes the approach "can easily be extended to include".
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional

from ..predicates import Predicate, iterate_to_fixpoint, limits, wcyl
from ..predicates.backends import backend_for_size
from ..statespace import StateSpace
from ..unity import Expr, Knowledge, Program
from ..transformers import strongest_invariant


def _expr_predicate(space: StateSpace, expr: Expr, resolution) -> Predicate:
    """The predicate of a knowledge-free (or fully resolved) expression.

    Small spaces evaluate per state; past the ``explicit`` limit the
    expression is substituted (``Knowledge`` → ``ResolvedKnowledge``) and
    compiled directly to a backend handle — no state sweep.
    """
    if space.size > limits.get_limit("explicit"):
        backend = backend_for_size(space.size)
        if getattr(backend, "symbolic", False):
            from ..unity.statements import _resolve_expr

            resolved = _resolve_expr(expr, resolution) if resolution else expr
            return backend.wrap(space, backend.expr_handle(space, resolved))
        limits.check_explicit_size(space.size, f"evaluating {expr!r} per state")
    from ..statespace import State

    mask = 0
    for i in range(space.size):
        if expr.eval(State(space, i), resolution):
            mask |= 1 << i
    return Predicate(space, mask)


class KnowledgeOperator:
    """The family ``{K_i}`` for fixed ``SI`` and process views.

    Parameters
    ----------
    space:
        The underlying finite state space.
    si:
        The strongest invariant used as the set of "possible" states.  Any
        predicate is accepted — the knowledge-based-protocol solver probes
        *candidate* SIs (eq. 25) through this same class.
    process_vars:
        Mapping from process name to the set of variables it can access.
    term_cache:
        Optional shared memo of knowledge-term *bodies* (the formula under
        the ``K``), keyed by term and the fingerprints of its resolved
        subterms.  Bodies are SI-independent, so the KBP solver passes one
        cache across every candidate SI it probes — the expensive
        per-state expression evaluation then happens once per distinct
        body, not once per candidate.
    """

    def __init__(
        self,
        space: StateSpace,
        si: Predicate,
        process_vars: Mapping[str, Iterable[str]],
        term_cache: Optional[Dict] = None,
    ):
        if si.space != space:
            raise ValueError("SI predicate over a different state space")
        self.space = space
        self.si = si
        self.process_vars: Dict[str, FrozenSet[str]] = {
            name: space.check_vars(variables)
            for name, variables in process_vars.items()
        }
        if not self.process_vars:
            raise ValueError("at least one process is required")
        self._term_cache: Dict = term_cache if term_cache is not None else {}

    @classmethod
    def of_program(cls, program: Program, si: Optional[Predicate] = None) -> "KnowledgeOperator":
        """The operator of a *standard* program (``SI`` computed by eq. 1–5).

        Pass ``si`` explicitly to probe a candidate SI of a knowledge-based
        protocol instead.
        """
        if si is None:
            si = strongest_invariant(program)
        return cls(
            program.space,
            si,
            {p.name: p.variables for p in program.processes.values()},
        )

    # ------------------------------------------------------------------
    # the transformer itself
    # ------------------------------------------------------------------

    def vars_of(self, process: str) -> FrozenSet[str]:
        """The variables accessible to ``process``."""
        try:
            return self.process_vars[process]
        except KeyError:
            raise KeyError(
                f"unknown process {process!r} (have {sorted(self.process_vars)})"
            ) from None

    def knows(self, process: str, p: Predicate) -> Predicate:
        """``K_i p`` per eq. (13)."""
        if p.space != self.space:
            raise ValueError("predicate over a different state space")
        variables = self.vars_of(process)
        cylinder = wcyl(variables, self.si.implies(p))
        return p & (cylinder | ~self.si)

    def knows_simple(self, process: str, p: Predicate) -> Predicate:
        """The preliminary definition ``wcyl.vars_i.(SI ⇒ p)`` (pre-eq.-13).

        Agrees with :meth:`knows` on all reachable states; differs only in
        the value assigned on ``¬SI``.
        """
        return wcyl(self.vars_of(process), self.si.implies(p))

    def possible(self, process: str, p: Predicate) -> Predicate:
        """The epistemic dual ``¬K_i¬p`` — "process i considers p possible"."""
        return ~self.knows(process, ~p)

    # ------------------------------------------------------------------
    # group knowledge
    # ------------------------------------------------------------------

    def everyone_knows(self, group: Iterable[str], p: Predicate) -> Predicate:
        """``E_G p = (∀ i ∈ G : K_i p)``."""
        processes = list(group)
        if not processes:
            raise ValueError("E_G needs a non-empty group")
        out = None
        for process in processes:
            known = self.knows(process, p)
            out = known if out is None else out & known
        return out

    def common_knowledge(self, group: Iterable[str], p: Predicate) -> Predicate:
        """``C_G p`` — greatest fixed point of ``X ↦ E_G(p ∧ X)``.

        Equivalently the limit of ``E_G p ∧ E_G E_G p ∧ …``; on a finite
        space the descending chain stabilizes.
        """
        processes = list(group)

        def step(x: Predicate) -> Predicate:
            return self.everyone_knows(processes, p & x)

        result = iterate_to_fixpoint(
            step, Predicate.true(self.space), name="common_knowledge E_G-chain"
        )
        return result.require()

    def distributed_knowledge(self, group: Iterable[str], p: Predicate) -> Predicate:
        """``D_G p`` — knowledge of the combined view ``∪ vars_i``.

        What the group would know if the processes pooled their variables;
        the implicit-knowledge variant of [HM90].
        """
        processes = list(group)
        if not processes:
            raise ValueError("D_G needs a non-empty group")
        pooled: FrozenSet[str] = frozenset()
        for process in processes:
            pooled |= self.vars_of(process)
        cylinder = wcyl(pooled, self.si.implies(p))
        return p & (cylinder | ~self.si)

    # ------------------------------------------------------------------
    # expression interpretation (nested K terms)
    # ------------------------------------------------------------------

    def predicate_of(self, expr: Expr) -> Predicate:
        """The predicate denoted by an expression, resolving nested ``K`` terms.

        Knowledge terms are resolved innermost-first against *this*
        operator's SI; the surrounding Boolean structure is then evaluated
        pointwise.
        """
        resolution = self.resolve_terms(expr.knowledge_terms())
        return _expr_predicate(self.space, expr, resolution)

    def resolve_terms(
        self, terms: Iterable[Knowledge]
    ) -> Dict[Knowledge, Predicate]:
        """Concrete predicates for knowledge terms (innermost-out).

        The result maps every term *and its nested subterms* to predicates,
        suitable for :meth:`repro.unity.Program.resolve`.
        """
        resolution: Dict[Knowledge, Predicate] = {}
        for term in terms:
            self._resolve_term(term, resolution)
        return resolution

    def _resolve_term(
        self, term: Knowledge, resolution: Dict[Knowledge, Predicate]
    ) -> Predicate:
        if term in resolution:
            return resolution[term]
        inner_terms = sorted(term.formula.knowledge_terms(), key=repr)
        for inner in inner_terms:
            self._resolve_term(inner, resolution)
        # The body (the formula under K) depends only on the resolved
        # subterms, not on SI — memoize it across SIs sharing this cache.
        key = (term, tuple(resolution[inner].fingerprint() for inner in inner_terms))
        body = self._term_cache.get(key)
        if body is None:
            body = _expr_predicate(self.space, term.formula, resolution)
            self._term_cache[key] = body
        resolved = self.knows(term.process, body)
        resolution[term] = resolved
        return resolved

    def with_si(self, si: Predicate) -> "KnowledgeOperator":
        """The same processes with a different (candidate) SI."""
        return KnowledgeOperator(
            self.space, si, self.process_vars, term_cache=self._term_cache
        )

    def __repr__(self) -> str:
        return (
            f"KnowledgeOperator(processes={sorted(self.process_vars)}, "
            f"SI holds at {self.si.count()}/{self.space.size} states)"
        )
