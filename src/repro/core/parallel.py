"""The sharded, batched exhaustive solver for eq. (25).

The serial sweep in :mod:`repro.core.kbp` probes every candidate
``x ⊇ init`` one at a time; its cost is ``2^(size - |init|)`` full Φ
evaluations of pure-Python kernel calls.  This module keeps the *sweep*
(completeness is non-negotiable — ``ŜP`` is not monotone, so nothing short
of exhaustion decides well-posedness) and attacks the constant factor on
two independent axes:

**Sharding.**  The candidate sublattice ``[init, true]`` is partitioned by
fixing the top ``k`` free state-bits: each of the ``2^k`` assignments names
one shard, and shards are farmed to a ``ProcessPoolExecutor`` (~4 shards
per worker, so the executor queue work-steals around uneven shard costs).
Within a shard the remaining free bits are walked in binary-reflected
Gray-code order — consecutive candidates differ in exactly one state — so
the per-worker :class:`~repro.core.kbp.CandidateResolver` term and
operational caches get maximal reuse on the fallback path.

**Batching.**  When the program is *batchable* — every knowledge term
non-nested, knowledge only in guards, guards Boolean over terms and
knowledge-free leaves — :func:`compile_phi_plan` freezes Φ into a
:class:`~repro.predicates.backends.batch.PhiPlan` of plain masks and
successor arrays, and whole blocks of candidates go through the backend's
``batch_phi`` kernel at once.  On the numpy backend that is a fully
vectorized sweep over a ``(batch, words)`` uint64 matrix; even single-CPU
hosts see a large win because the per-candidate Python interpreter cost
collapses into a handful of array ops per batch.

Exactness: the merged report is bit-identical to the serial sweep — the
same sorted ``solutions``, the same ``candidates_checked``, and (with
``emit_certificate=True``) the same per-candidate evidence in the same
order, so PR-2 certificates replay unchanged.  Certified sweeps skip the
batched kernel and run the per-candidate evidence path inside each shard;
the merge re-sorts evidence into the serial enumeration order (strictly
descending free-bit submask).

``any_solution=True`` turns the sweep into a pure well-posedness query:
workers stop at their shard's first solution, the parent cancels every
not-yet-started shard, and the (partial) report says only whether a
solution exists.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..predicates import Predicate
from ..predicates.arena import SolveArena
from ..predicates.backends import (
    PredicateBackend,
    batch_backend_for,
    get_default_backend,
    set_default_backend,
)
from ..predicates.backends.batch import (
    BatchPoisonError,
    PhiPlan,
    StatementPlan,
    TermPlan,
)
from ..statespace import State
from ..unity import Program
from ..unity.expressions import Binary, Ite, Knowledge, Unary
from .transport import (
    DispatchStats,
    LocalPoolTransport,
    ShardLeaseRevoked,
    SocketTransport,
    SocketTransportError,
    parse_address,
)

#: Default batch size for ``batch_phi`` blocks (candidates per kernel call).
BATCH_SIZE = 1024

#: Environment knob for the default worker count.
WORKERS_ENV_VAR = "REPRO_SOLVER_WORKERS"

#: Environment knob for the pool start method ("fork", "spawn", ...).
START_METHOD_ENV_VAR = "REPRO_SOLVER_START_METHOD"

#: Environment knob for arena dispatch: "auto" (default) or "never".
ARENA_ENV_VAR = "REPRO_SOLVER_ARENA"

#: Environment knob: comma-separated ``host:port`` list of
#: ``python -m repro.worker`` daemons to dispatch shards to over TCP.
REMOTE_WORKERS_ENV_VAR = "REPRO_SOLVER_REMOTE_WORKERS"


def _resolve_remote_workers(
    remote_workers: Optional[Sequence[str]],
) -> Optional[List[str]]:
    """The socket worker address list: explicit arg, then the env knob."""
    if remote_workers is None:
        raw = os.environ.get(REMOTE_WORKERS_ENV_VAR, "").strip()
        if not raw:
            return None
        remote_workers = [part for part in raw.split(",") if part.strip()]
    addresses = [str(a).strip() for a in remote_workers if str(a).strip()]
    if not addresses:
        return None
    for address in addresses:
        parse_address(address)
    return addresses


def _resolve_start_method(start_method: Optional[str]) -> str:
    """The pool start method: explicit arg, then env, then fork-if-available.

    The arena makes workers spawn-clean (nothing is inherited that cannot
    be re-attached by name), so any method the platform offers is valid;
    fork stays the default for its startup cost.
    """
    if start_method is None:
        start_method = os.environ.get(START_METHOD_ENV_VAR) or None
    methods = mp.get_all_start_methods()
    if start_method is None:
        return "fork" if "fork" in methods else methods[0]
    if start_method not in methods:
        raise ValueError(
            f"start_method {start_method!r} is not available here "
            f"(have {methods})"
        )
    return start_method


def _resolve_arena_mode(arena: Optional[str]) -> str:
    if arena is None:
        arena = os.environ.get(ARENA_ENV_VAR, "").strip().lower() or "auto"
    if arena not in ("auto", "never"):
        raise ValueError(f"arena={arena!r} is not one of 'auto', 'never'")
    return arena


def default_workers() -> int:
    """Worker count: ``REPRO_SOLVER_WORKERS`` if set, else ``min(8, cpus)``."""
    raw = os.environ.get(WORKERS_ENV_VAR)
    if raw is not None:
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV_VAR}={raw!r} is not an integer worker count"
            ) from None
        if value < 1:
            raise ValueError(f"{WORKERS_ENV_VAR} must be >= 1, got {value}")
        return value
    return min(8, os.cpu_count() or 1)


# ----------------------------------------------------------------------
# Φ-plan compilation
# ----------------------------------------------------------------------


class _Ineligible(Exception):
    """The program cannot be batched; fall back to the per-candidate path."""


def _static_mask(program: Program, expr) -> int:
    """A knowledge-free guard subtree as an exact mask over all states.

    The serial evaluator short-circuits ``and``/``or``/``=>``, so a leaf it
    never reaches may be one we cannot evaluate everywhere; any evaluation
    failure marks the whole program ineligible (conservative — the serial
    path then decides, with identical semantics).
    """
    space = program.space
    mask = 0
    for i in range(space.size):
        try:
            if expr.eval(State(space, i)):
                mask |= 1 << i
        except Exception:
            raise _Ineligible from None
    return mask


def _guard_ops(
    program: Program, expr, term_index: Dict[Knowledge, int]
) -> List[Tuple[Any, ...]]:
    """Compile a guard into postfix ops over knowledge terms and static leaves."""
    if isinstance(expr, Knowledge):
        return [("term", term_index[expr])]
    if not expr.knowledge_terms():
        return [("static", _static_mask(program, expr))]
    if isinstance(expr, Unary) and expr.op == "not":
        return _guard_ops(program, expr.operand, term_index) + [("not",)]
    if isinstance(expr, Binary):
        left = _guard_ops(program, expr.left, term_index)
        right = _guard_ops(program, expr.right, term_index)
        if expr.op == "and":
            return left + right + [("and",)]
        if expr.op == "or":
            return left + right + [("or",)]
        if expr.op == "=>":
            return left + [("not",)] + right + [("or",)]
        if expr.op == "<=>":
            return left + right + [("xor",), ("not",)]
        raise _Ineligible  # knowledge under arithmetic/comparison
    if isinstance(expr, Ite):
        cond = _guard_ops(program, expr.cond, term_index)
        then = _guard_ops(program, expr.then, term_index)
        orelse = _guard_ops(program, expr.orelse, term_index)
        return (
            cond + then + [("and",)] + cond + [("not",)] + orelse
            + [("and",), ("or",)]
        )
    raise _Ineligible


def _unguarded_successors(
    program: Program, stmt
) -> Tuple[Tuple[int, ...], int]:
    """``stmt``'s assignment successor ignoring the guard, plus a poison mask.

    Bit ``i`` of the poison mask is set where some right-hand side cannot be
    evaluated or leaves its domain — states the *guarded* statement may
    never execute, so they only matter for candidates whose resolved guard
    enables them (→ :class:`BatchPoisonError`, then a serial re-run that
    raises the original error).
    """
    space = program.space
    succ = [0] * space.size
    poison = 0
    for i in range(space.size):
        state = State(space, i)
        try:
            changes = {}
            for target, expr in zip(stmt.targets, stmt.exprs):
                value = expr.eval(state)
                if value not in space.var(target).domain:
                    raise _Ineligible  # poison, not a compile failure
                changes[target] = value
            succ[i] = space.reindex(i, changes)
        except Exception:
            poison |= 1 << i
            succ[i] = i
    return tuple(succ), poison


def compile_phi_plan(program: Program) -> Optional[PhiPlan]:
    """Freeze ``Φ`` into a :class:`PhiPlan`, or ``None`` when not batchable.

    Eligibility: every knowledge term is non-nested and owned by a declared
    process, knowledge occurs only in guards, and each knowledge-based
    guard compiles to the postfix Boolean vocabulary with all static leaves
    evaluable everywhere.  Ineligible programs take the per-candidate
    resolver path — still sharded, just not vectorized.
    """
    terms = sorted(program.knowledge_terms(), key=repr)
    try:
        term_plans = []
        term_index: Dict[Knowledge, int] = {}
        for position, term in enumerate(terms):
            if term.formula.knowledge_terms():
                raise _Ineligible  # nested K: body depends on the candidate
            process = program.processes.get(term.process)
            if process is None:
                raise _Ineligible
            term_plans.append(
                TermPlan(
                    body_mask=_static_mask(program, term.formula),
                    variables=tuple(sorted(process.variables)),
                )
            )
            term_index[term] = position
        statement_plans = []
        for stmt in program.statements:
            if not stmt.is_knowledge_based():
                statement_plans.append(
                    StatementPlan(
                        name=stmt.name,
                        succ=tuple(program.successor_array(stmt)),
                    )
                )
                continue
            if any(e.knowledge_terms() for e in stmt.exprs):
                raise _Ineligible  # candidate-dependent successor arrays
            guard = tuple(_guard_ops(program, stmt.guard, term_index))
            succ, poison = _unguarded_successors(program, stmt)
            statement_plans.append(
                StatementPlan(
                    name=stmt.name, succ=succ, guard=guard, poison_mask=poison
                )
            )
    except _Ineligible:
        return None
    except Exception:
        # Anything the serial sweep would raise (e.g. a GuardDomainError in
        # a knowledge-free statement) is its to raise — with its own message.
        return None
    return PhiPlan(
        space=program.space,
        init_mask=program.init.mask,
        statements=tuple(statement_plans),
        terms=tuple(term_plans),
    )


# ----------------------------------------------------------------------
# shard planning and Gray-code enumeration
# ----------------------------------------------------------------------


def _bit_positions(mask: int) -> List[int]:
    out = []
    position = 0
    while mask:
        if mask & 1:
            out.append(position)
        mask >>= 1
        position += 1
    return out


def plan_shards(
    free_bits: Sequence[int], workers: int
) -> Tuple[List[int], List[int]]:
    """Split free bit positions into (low walk bits, high shard bits).

    The top ``k`` free bits are fixed per shard, sized so that there are at
    least ~4 shards per worker (the executor queue then load-balances
    uneven shards); a single worker gets one shard and walks everything.
    """
    free_bits = list(free_bits)
    if workers <= 1:
        return free_bits, []
    target = 4 * workers
    k = 0
    while (1 << k) < target and k < len(free_bits):
        k += 1
    return free_bits[: len(free_bits) - k], free_bits[len(free_bits) - k :]


def gray_masks(positions: Sequence[int]) -> Iterator[int]:
    """All ``2^len(positions)`` masks over ``positions``, Gray-code ordered.

    Consecutive masks differ in exactly one bit (the binary-reflected
    code: step ``j`` flips the bit indexed by ``ctz(j)``), which is what
    lets a shard's walk reuse the resolver's per-candidate caches.
    """
    mask = 0
    yield mask
    for j in range(1, 1 << len(positions)):
        mask ^= 1 << positions[(j & -j).bit_length() - 1]
        yield mask


def assignment_mask(positions: Sequence[int], assignment: int) -> int:
    """The mask fixing ``positions`` to the bits of ``assignment``."""
    mask = 0
    for offset, position in enumerate(positions):
        if assignment >> offset & 1:
            mask |= 1 << position
    return mask


# ----------------------------------------------------------------------
# per-shard sweep (runs in workers; also in-process when workers == 1)
# ----------------------------------------------------------------------

#: Per-process solver state, set by :func:`_init_worker` (or directly by the
#: in-process path).  A plain dict: fork-started workers inherit nothing
#: stale because the initializer always overwrites every key.
_WORKER: Dict[str, Any] = {}


def _init_worker(
    program: Program,
    base_mask: int,
    low_positions: List[int],
    emit_certificate: bool,
    any_solution: bool,
    batch_size: int,
    fault_plan: Optional[Any] = None,
    backend_selection: Optional[str] = None,
    arena_spec: Optional[Any] = None,
    has_plan: bool = True,
    plan: Optional[PhiPlan] = None,
) -> None:
    """Per-process solver setup, spawn-start-method clean.

    Everything arrives by value through initargs except the Φ plan's bulk
    data: with ``arena_spec`` set the worker *re-attaches by segment name*
    and evaluates through zero-copy views (no plan recompilation, no
    pickled successor arrays).  Without one — arena disabled, or the
    program not batchable — the worker compiles its own plan as before.
    ``backend_selection`` replays the parent's backend choice, which a
    spawned child would otherwise lose (the selection is process-global
    state, not environment).  The resolver is built lazily: batched arena
    sweeps never need one unless a poisoned candidate forces the exact
    serial re-run.
    """
    if backend_selection is not None:
        set_default_backend(backend_selection)
    if plan is not None:
        # A shipped plan (the socket worker's payload-fallback path) wins:
        # nothing to attach, nothing to recompile.
        pass
    elif emit_certificate or not has_plan:
        plan = None
    elif arena_spec is not None:
        plan = arena_spec.attach(program.space)
    else:
        plan = compile_phi_plan(program)
    _WORKER.clear()
    _WORKER.update(
        program=program,
        resolver=None,
        plan=plan,
        backend=batch_backend_for(program.space.size, batch_size)
        if plan is not None
        else None,
        base_mask=base_mask,
        low_positions=low_positions,
        emit_certificate=emit_certificate,
        any_solution=any_solution,
        batch_size=batch_size,
        fault_plan=fault_plan,
    )


def _worker_resolver():
    """The process's :class:`CandidateResolver`, built on first use."""
    resolver = _WORKER.get("resolver")
    if resolver is None:
        from .kbp import CandidateResolver

        resolver = CandidateResolver(_WORKER["program"])
        _WORKER["resolver"] = resolver
    return resolver


def _shard_candidates(fixed_mask: int) -> Iterator[int]:
    base = _WORKER["base_mask"] | fixed_mask
    for gray in gray_masks(_WORKER["low_positions"]):
        yield base | gray


def _sweep_shard(
    shard_index: int, fixed_mask: int
) -> Tuple[List[int], int, List[Tuple[str, Any]]]:
    """One shard's sweep: ``(solution_masks, candidates_checked, evidence)``.

    Evidence is empty unless the worker was initialized with
    ``emit_certificate``; with ``any_solution`` the walk stops at the first
    solution (the returned count is then partial, as documented).  When a
    fault plan was threaded through :func:`_init_worker`, its worker-side
    clauses fire here — ``crash``/``hang`` before the sweep, ``delay``
    after it (a valid result arriving late).
    """
    fault_plan = _WORKER.get("fault_plan")
    if fault_plan is not None:
        fault_plan.before_shard(shard_index)
    if _WORKER["emit_certificate"]:
        result = _sweep_shard_certified(fixed_mask)
    elif _WORKER["plan"] is not None:
        result = _sweep_shard_batched(fixed_mask)
    else:
        result = _sweep_shard_resolver(fixed_mask)
    if fault_plan is not None:
        fault_plan.after_shard(shard_index)
    return result


def _sweep_shard_batched(fixed_mask: int):
    plan: PhiPlan = _WORKER["plan"]
    backend = _WORKER["backend"]
    any_solution = _WORKER["any_solution"]
    batch_size = _WORKER["batch_size"]
    solutions: List[int] = []
    checked = 0
    block: List[int] = []

    def flush(block: List[int]) -> bool:
        try:
            phis = backend.batch_phi(plan, block)
        except BatchPoisonError:
            # Some candidate enables a statement outside its domain; the
            # serial resolver raises the original error for it.
            resolver = _worker_resolver()
            space = _WORKER["program"].space
            phis = [resolver.phi(Predicate(space, m)).mask for m in block]
        solutions.extend(m for m, value in zip(block, phis) if value == m)
        return any_solution and bool(solutions)

    for mask in _shard_candidates(fixed_mask):
        block.append(mask)
        checked += 1
        if len(block) >= batch_size:
            if flush(block):
                return solutions, checked, []
            block = []
    if block:
        flush(block)
    return solutions, checked, []


def _sweep_shard_resolver(fixed_mask: int):
    resolver = _worker_resolver()
    space = _WORKER["program"].space
    any_solution = _WORKER["any_solution"]
    solutions: List[int] = []
    checked = 0
    for mask in _shard_candidates(fixed_mask):
        checked += 1
        candidate = Predicate(space, mask)
        if resolver.phi(candidate) == candidate:
            solutions.append(mask)
            if any_solution:
                break
    return solutions, checked, []


def _sweep_shard_certified(fixed_mask: int):
    from .kbp import _candidate_evidence

    resolver = _worker_resolver()
    space = _WORKER["program"].space
    any_solution = _WORKER["any_solution"]
    solutions: List[int] = []
    checked = 0
    evidence: List[Tuple[str, Any]] = []
    for mask in _shard_candidates(fixed_mask):
        checked += 1
        kind, payload = _candidate_evidence(resolver, Predicate(space, mask))
        evidence.append((kind, payload))
        if kind == "solution":
            solutions.append(mask)
            if any_solution:
                break
    return solutions, checked, evidence


# ----------------------------------------------------------------------
# the public solver
# ----------------------------------------------------------------------


def _encode_evidence(evidence: Sequence[Tuple[str, Any]]) -> List[Any]:
    """Evidence (kind, payload-object) pairs → journalable JSON values."""
    return [[kind, payload.to_payload()] for kind, payload in evidence]


def _decode_evidence(items: Sequence[Any], space) -> List[Tuple[str, Any]]:
    """Journaled evidence values → the certificate payload objects."""
    from ..certificates.certs import CandidateRefutation, KbpSolutionEntry

    out: List[Tuple[str, Any]] = []
    for item in items:
        kind, payload = item
        cls = KbpSolutionEntry if kind == "solution" else CandidateRefutation
        out.append((kind, cls.from_payload(payload, space)))
    return out


def _journal_header(
    program: Program,
    base_mask: int,
    low_positions: List[int],
    high_positions: List[int],
    shard_count: int,
    emit_certificate: bool,
    batch_size: int,
) -> Dict[str, Any]:
    """What a checkpoint journal pins about its solve.

    Any difference — another program or init, a different shard layout, a
    different certificate mode — makes resume refuse the journal.
    """
    from ..certificates.canonical import program_digest

    return {
        "program": program_digest(program),
        "base_mask": base_mask,
        "low_positions": list(low_positions),
        "high_positions": list(high_positions),
        "shard_count": shard_count,
        "emit_certificate": bool(emit_certificate),
        "batch_size": batch_size,
    }


def solve_si_parallel(
    program: Program,
    workers: Optional[int] = None,
    emit_certificate: bool = False,
    any_solution: bool = False,
    batch_size: int = BATCH_SIZE,
    resolver: Optional[Any] = None,
    fault_policy: Optional[Any] = None,
    checkpoint: Optional[Any] = None,
    fault_plan: Optional[Any] = None,
    progress: Optional[Any] = None,
    start_method: Optional[str] = None,
    arena: Optional[str] = None,
    collect_stats: bool = False,
    remote_workers: Optional[Sequence[str]] = None,
):
    """Exhaustively solve eq. (25) with sharding and batched Φ.

    Bit-identical to :func:`repro.core.kbp.solve_si` on complete sweeps:
    the same sorted solutions, the same candidate count, and (under
    ``emit_certificate``) the same evidence order, hence the same
    certificate digests.  ``any_solution=True`` answers well-posedness
    only: the sweep stops at the first solution found, outstanding shards
    are cancelled, and ``candidates_checked`` reflects the partial walk.

    ``workers`` defaults to ``REPRO_SOLVER_WORKERS`` or ``min(8, cpus)``;
    ``workers=1`` runs in-process (no executor) but still batches, which
    is where most of the speedup lives on small hosts.  ``resolver`` is
    honored on the in-process path only — worker processes build their own
    (term caches cannot be shared across process boundaries).

    Fault tolerance (DESIGN.md §10): multiprocess sweeps run under a
    :class:`repro.robustness.ShardSupervisor` — shards lost to worker
    crashes or deadlines are re-dispatched (re-spawning the pool), and a
    shard that exhausts its retry budget falls back to the in-process
    sweep.  ``fault_policy`` tunes this (``FaultPolicy.off()`` restores the
    bare pool loop, where a broken pool raises
    :class:`~repro.robustness.SolverWorkerError`); the report's
    ``fault_log`` records every incident.  ``checkpoint`` names a journal
    file (or :class:`~repro.robustness.ShardJournal`): completed shards are
    journaled as they land, and a killed solve re-run with the same
    checkpoint resumes from disk — the final report and certificate are
    byte-identical to an uninterrupted run.  ``fault_plan`` (or the
    ``REPRO_FAULT_PLAN`` environment variable) injects deterministic
    faults for the chaos suite.

    ``progress`` is an optional callback receiving
    :class:`~repro.robustness.SolveProgress` ticks — one per resumed
    batch and one per completed shard, in journal order.  It is honored
    on supervised sweeps only (``FaultPolicy.off()`` ignores it).

    ``remote_workers`` (or ``REPRO_SOLVER_REMOTE_WORKERS``) names
    ``host:port`` addresses of ``python -m repro.worker`` daemons; shards
    then dispatch over the TCP transport (DESIGN.md §15) instead of a
    local pool.  Degradation is graceful and logged: unreachable workers
    at attach fall back to the local pool (``degraded-to-local``
    incident), a worker lost mid-shard surrenders only its own lease
    (``worker-lost``), and losing *every* worker respawns through the
    factory — socket again if anything answers, local pool otherwise,
    with the per-shard serial fallback as the last resort.  Reports and
    certificates stay byte-identical to serial throughout.
    """
    from ..certificates.canonical import payload_digest
    from ..robustness import (
        FaultLog,
        FaultPlan,
        FaultPolicy,
        ShardJournal,
        ShardSupervisor,
    )
    from .kbp import SolveReport, _check_exhaustive_size, solve_si

    space = program.space
    _check_exhaustive_size(space)
    if not program.is_knowledge_based():
        if checkpoint is not None:
            raise ValueError(
                "checkpoint journals are for knowledge-based sweeps; a "
                "standard program's SI is a single sst computation"
            )
        return solve_si(
            program, emit_certificate=emit_certificate, parallel="never"
        )
    addresses = _resolve_remote_workers(remote_workers)
    if workers is None:
        workers = max(2, len(addresses)) if addresses else default_workers()
    elif addresses:
        # Socket dispatch needs shard granularity (workers==1 would take
        # the in-process path and never touch the network).
        workers = max(workers, 2)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if fault_policy is None:
        fault_policy = FaultPolicy()
    if checkpoint is not None and any_solution:
        raise ValueError(
            "checkpoint requires a complete sweep; any_solution stops early"
        )
    if checkpoint is not None and not fault_policy.supervised:
        raise ValueError(
            "checkpoint journals need a supervised policy; drop "
            "FaultPolicy.off() or the checkpoint"
        )
    if fault_plan is None:
        fault_plan = FaultPlan.from_env()

    base_mask = program.init.mask
    free_bits = _bit_positions(space.full_mask & ~base_mask)
    # A single worker normally walks one giant shard, but a checkpoint is
    # only as fine-grained as the shard layout — resuming a one-shard
    # journal would restart from scratch — so checkpointed in-process
    # solves shard as if two workers were sweeping.
    plan_workers = 2 if (workers == 1 and checkpoint is not None) else workers
    low_positions, high_positions = plan_shards(free_bits, plan_workers)
    shard_masks = [
        assignment_mask(high_positions, a)
        for a in range(1 << len(high_positions))
    ]
    if fault_plan is not None:
        fault_plan = fault_plan.bind(
            len(shard_masks), len(addresses) if addresses else 1
        )

    journal = None
    if checkpoint is not None:
        journal = (
            checkpoint
            if isinstance(checkpoint, ShardJournal)
            else ShardJournal(checkpoint)
        )
    header = _journal_header(
        program, base_mask, low_positions, high_positions,
        len(shard_masks), emit_certificate, batch_size,
    )

    resolved_method = _resolve_start_method(start_method)
    arena_mode = _resolve_arena_mode(arena)
    # The plan is compiled exactly once, parent-side.  The in-process sweep
    # uses it directly; pool workers either attach the arena built from it
    # (zero-copy) or, with arenas off, recompile their own — `has_plan`
    # spares them the attempt when the program is not batchable at all.
    plan = None if emit_certificate else compile_phi_plan(program)
    backend_selection = get_default_backend()
    if isinstance(backend_selection, PredicateBackend):
        backend_selection = backend_selection.name
    stats = DispatchStats(start_method=resolved_method) if workers > 1 else None
    arena_holder: List[Optional[SolveArena]] = [None]
    # One log serves the supervisor *and* the pool factory, so transport
    # degradation (socket → local) is an incident on the report, not a
    # silent change of dispatch mechanism.
    shared_log = FaultLog()

    def pool_factory():
        # Lazy on both axes: no pool → no arena (a fully journaled resume
        # never pays for either), and one arena serves every pool respawn
        # (workers re-attach by segment name).
        arena_spec = None
        if arena_mode == "auto" and plan is not None:
            if arena_holder[0] is None:
                digest = payload_digest(header["program"]).split(":", 1)[-1]
                arena_holder[0] = SolveArena.build(plan, digest)
                if stats is not None:
                    stats.arena_bytes = arena_holder[0].nbytes
                    stats.arena_segments = 1
            arena_spec = arena_holder[0].spec
        if addresses:
            try:
                return SocketTransport(
                    addresses,
                    program_digest=header["program"],
                    attach_args=dict(
                        program=program,
                        base_mask=base_mask,
                        low_positions=low_positions,
                        emit_certificate=emit_certificate,
                        any_solution=any_solution,
                        batch_size=batch_size,
                        fault_plan=fault_plan,
                        backend_selection=backend_selection,
                        arena_spec=arena_spec,
                        has_plan=plan is not None,
                    ),
                    plan=plan,
                    policy=fault_policy,
                    stats=stats,
                    log=shared_log,
                    net_plan=fault_plan
                    if hasattr(fault_plan, "refuses_connect")
                    else None,
                )
            except SocketTransportError as exc:
                shared_log.record(
                    "degraded-to-local",
                    detail=f"socket transport unavailable ({exc}); "
                    "dispatching through a local pool instead",
                )
        return LocalPoolTransport(
            workers=min(workers, len(shard_masks)),
            mp_context=mp.get_context(resolved_method),
            initializer=_init_worker,
            initargs=(
                program, base_mask, low_positions,
                emit_certificate, any_solution, batch_size, fault_plan,
                backend_selection, arena_spec, plan is not None,
            ),
            stats=stats,
        )

    fault_log = None
    solution_masks: List[int] = []
    checked = 0
    evidence: List[Tuple[str, Any]] = []

    try:
        if workers == 1 or fault_policy.supervised:
            in_process = workers == 1

            parent_ready = [False]

            def serial_runner(index: int, fixed: int):
                # The in-process sweep: also the supervisor's degradation
                # path.  Reuses the parent-compiled plan (no arena — the
                # whole point of shared memory is crossing a process
                # boundary) and honors a caller-supplied resolver.  No
                # fault plan — a crash clause must not kill the parent.
                if not parent_ready[0]:
                    _WORKER.clear()
                    _WORKER.update(
                        program=program,
                        resolver=resolver,
                        plan=plan,
                        backend=batch_backend_for(space.size, batch_size)
                        if plan is not None
                        else None,
                        base_mask=base_mask,
                        low_positions=low_positions,
                        emit_certificate=emit_certificate,
                        any_solution=any_solution,
                        batch_size=batch_size,
                        fault_plan=None,
                    )
                    parent_ready[0] = True
                return _sweep_shard(index, fixed)

            drain_hook = None
            if collect_stats and not in_process:

                def drain_hook(pool):
                    stats.worker_peak_rss_kb = max(
                        stats.worker_peak_rss_kb, pool.sample_worker_rss()
                    )

            supervisor = ShardSupervisor(
                pool_factory=None if in_process else pool_factory,
                task=_sweep_shard,
                shard_masks=shard_masks,
                policy=fault_policy,
                any_solution=any_solution,
                journal=journal,
                journal_header=header,
                # Parent-side clauses (kill/torn) only; worker clauses
                # travel through _init_worker and fire in pool processes.
                fault_plan=fault_plan,
                serial_runner=serial_runner,
                encode_evidence=_encode_evidence,
                decode_evidence=lambda items: _decode_evidence(items, space),
                progress=progress,
                drain_hook=drain_hook,
                log=shared_log,
            )
            try:
                solution_masks, checked, evidence = supervisor.run()
            finally:
                if parent_ready[0]:
                    _WORKER.clear()
            fault_log = supervisor.log
        else:
            # FaultPolicy.off(): the bare PR-3 wait loop — no leases, no
            # retries — except that a broken pool names the lost shard
            # instead of surfacing a raw BrokenProcessPool traceback.
            solution_masks, checked, evidence = _unsupervised_sweep(
                pool_factory, shard_masks, any_solution, collect_stats
            )
    finally:
        # Covers SimulatedKill (a BaseException) from parent-side fault
        # clauses: the segment must never outlive the solve.
        if arena_holder[0] is not None:
            arena_holder[0].close(unlink=True)

    solutions = [Predicate(space, mask) for mask in solution_masks]
    solutions.sort(key=lambda p: (p.count(), p.mask))
    certificate = None
    if emit_certificate:
        certificate = _merged_certificate(
            program, evidence, space.full_mask & ~base_mask
        )
    return SolveReport(
        solutions=tuple(solutions),
        candidates_checked=checked,
        certificate=certificate,
        fault_log=fault_log,
        dispatch=stats,
    )


def _unsupervised_sweep(
    pool_factory,
    shard_masks: List[int],
    any_solution: bool,
    collect_stats: bool = False,
) -> Tuple[List[int], int, List[Tuple[str, Any]]]:
    """The PR-3 pool loop, kept for overhead benchmarking and as a floor.

    Dispatches through the same transport as the supervised path (so
    arenas and byte accounting apply here too).  A dead worker aborts the
    sweep — but now with a :class:`~repro.robustness.SolverWorkerError`
    naming the shard's fixed-bit mask and the completed/pending counts
    instead of a bare ``BrokenProcessPool``.
    """
    from ..robustness import SolverWorkerError

    solution_masks: List[int] = []
    checked = 0
    evidence: List[Tuple[str, Any]] = []
    completed = 0
    pool = pool_factory()
    try:
        pending = {
            pool.submit(_sweep_shard, index, fixed): (index, fixed)
            for index, fixed in enumerate(shard_masks)
        }
        try:
            while pending:
                done, _ = wait(set(pending), return_when=FIRST_COMPLETED)
                stop = False
                for future in done:
                    index, fixed = pending.pop(future)
                    try:
                        masks, shard_checked, shard_evidence = future.result()
                    except (BrokenProcessPool, ShardLeaseRevoked) as exc:
                        raise SolverWorkerError(
                            shard_mask=fixed,
                            attempts=1,
                            completed=completed,
                            pending=len(pending) + 1,
                            cause=str(exc) or "process pool broke",
                        ) from exc
                    completed += 1
                    solution_masks.extend(masks)
                    checked += shard_checked
                    evidence.extend(shard_evidence)
                    if any_solution and masks:
                        stop = True
                if stop:
                    pool.shutdown(wait=False, cancel_futures=True)
                    return solution_masks, checked, evidence
        finally:
            for future in pending:
                future.cancel()
        if collect_stats and pool.stats is not None:
            pool.stats.worker_peak_rss_kb = max(
                pool.stats.worker_peak_rss_kb, pool.sample_worker_rss()
            )
    finally:
        pool.shutdown(wait=True)
    return solution_masks, checked, evidence


def _merged_certificate(program: Program, evidence, free_mask: int):
    """Re-assemble shard evidence into the serial sweep's certificate.

    The serial enumeration visits free-bit submasks in strictly decreasing
    numeric order, so sorting merged evidence by descending
    ``candidate & free`` reproduces its entry sequence exactly — byte-for-
    byte equal certificates, digests included.
    """
    from ..certificates.canonical import program_digest
    from ..certificates.certs import KbpSolveCertificate

    ordered = sorted(
        evidence, key=lambda item: -(item[1].candidate.mask & free_mask)
    )
    entries = tuple(p for kind, p in ordered if kind == "solution")
    refutations = tuple(p for kind, p in ordered if kind == "refutation")
    return KbpSolveCertificate(
        program=program_digest(program),
        init=program.init,
        solutions=entries,
        refutations=refutations,
    )
