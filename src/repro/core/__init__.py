"""The paper's primary contribution: knowledge as a predicate transformer.

Exposes the knowledge operator (eq. 13), the S5/junctivity verifiers
(eqs. 14–24), and the knowledge-based-protocol machinery around the
self-referential SI equation (eq. 25).
"""

from .kbp import (
    InitMonotonicityReport,
    IterativeReport,
    SolveReport,
    compare_inits,
    instantiates,
    is_solution,
    phi,
    resolution_at,
    resolve_at,
    solve_si,
    solve_si_cubes,
    solve_si_iterative,
    sp_hat,
)
from .knowledge import KnowledgeOperator
from .parallel import compile_phi_plan, solve_si_parallel
from .knowledge_rules import k_invariant_intro, k_localization, k_truth
from .s5 import (
    S5Violation,
    check_antimonotonicity_in_si,
    check_distribution,
    check_invariant_equivalence,
    check_local_invariant_equivalence,
    check_monotonicity_in_p,
    check_necessitation,
    check_negative_introspection,
    check_positive_introspection,
    check_truth_axiom,
    check_universal_conjunctivity,
    find_disjunctivity_counterexample,
    verify_all,
)

__all__ = [
    "KnowledgeOperator",
    "k_invariant_intro",
    "k_localization",
    "k_truth",
    "S5Violation",
    "check_antimonotonicity_in_si",
    "check_distribution",
    "check_invariant_equivalence",
    "check_local_invariant_equivalence",
    "check_monotonicity_in_p",
    "check_necessitation",
    "check_negative_introspection",
    "check_positive_introspection",
    "check_truth_axiom",
    "check_universal_conjunctivity",
    "find_disjunctivity_counterexample",
    "verify_all",
    "InitMonotonicityReport",
    "IterativeReport",
    "SolveReport",
    "compare_inits",
    "instantiates",
    "is_solution",
    "phi",
    "resolution_at",
    "resolve_at",
    "compile_phi_plan",
    "solve_si",
    "solve_si_cubes",
    "solve_si_iterative",
    "solve_si_parallel",
    "sp_hat",
]
