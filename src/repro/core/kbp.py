"""Knowledge-based protocols and the fixed-point equation for their SI.

Section 4 of the paper: when knowledge predicates appear in guards, the
program's strongest postcondition depends on the knowledge predicates,
which depend on ``SI``, which depends on ``SP`` — so ``SI`` is defined by
the *self-referential* equation (25)::

    SI ≡ strongest x : [ŜP.x ⇒ x] ∧ [init ⇒ x]

where ``ŜP.x`` is ``SP`` of the standard program obtained by resolving the
knowledge predicates against the candidate invariant ``x``.  Unlike the
standard case, ``ŜP`` is **not monotonic**, so

* a solution need not exist (the paper's Figure 1), and
* even when solutions exist, ``SI`` need not be monotonic in the initial
  condition (Figure 2) — strengthening ``init`` can destroy both safety and
  liveness properties.

A candidate ``x`` is a **solution** when the standard program ``P_x``
(knowledge resolved at ``x``) has strongest invariant exactly ``x``::

    Φ(x) = sst_{P_x}(init)      —  x solves (25)  iff  Φ(x) = x.

Solvers: :func:`solve_si` enumerates all candidates ``⊇ init`` exhaustively
(complete on small spaces), :func:`solve_si_cubes` prunes whole sub-cubes
of the candidate lattice at once (complete for non-nested knowledge, and
the only complete route on symbolic-scale spaces), and
:func:`solve_si_iterative` runs the Kleene chain ``init, Φ(init), Φ²(init),
…``, which may converge, cycle, or reach a non-solution — all three
outcomes are reported.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..predicates import Predicate, iterate_to_fixpoint, limits
from ..predicates.backends import backend_for_size
from ..transformers import sp_program, sst
from ..unity import Knowledge, Program
from .knowledge import KnowledgeOperator

#: Backward-compatible alias of the unified ``solver`` limit's *default*
#: (``repro.predicates.limits``; override with ``REPRO_MAX_SOLVER_STATES``
#: or ``set_limit('solver', ...)`` — the guards consult the live value).
MAX_EXHAUSTIVE_STATES = limits.get_limit("solver")

#: ``solve_si(parallel="auto")`` switches to the sharded solver when at
#: least this many state-bits are free (2^12 candidates and up — below
#: that, process/plan setup costs more than the serial sweep).
PARALLEL_AUTO_FREE_BITS = 12

#: Per-resolver LRU budget for memoized resolutions / Φ probes.  Exhaustive
#: sweeps visit each candidate once (memoization buys nothing there), but
#: Kleene chains, instantiation checks and Figure-2 comparisons re-probe
#: the same few candidates repeatedly.
_RESOLVER_LRU = 128


class CandidateResolver:
    """Shares work across the many candidate SIs a KBP solver probes.

    Three layers of reuse, from always-valid to per-candidate:

    * the knowledge-term *bodies* (per-state expression evaluation, the
      dominant pure-Python cost) are SI-independent and shared through a
      single :class:`KnowledgeOperator` term cache;
    * successor arrays and kernel tables of knowledge-**free** statements
      are identical in every resolved program ``P_x`` and are adopted from
      a single donor computation;
    * full resolutions, resolved programs and ``Φ`` values are memoized
      per candidate fingerprint in bounded LRUs.
    """

    def __init__(self, program: Program):
        self.program = program
        views = {p.name: p.variables for p in program.processes.values()}
        self._base_operator = KnowledgeOperator(
            program.space, program.init, views
        )
        self._terms = program.knowledge_terms()
        self._resolutions: "OrderedDict[bytes, Dict[Knowledge, Predicate]]" = (
            OrderedDict()
        )
        self._programs: "OrderedDict[bytes, Program]" = OrderedDict()
        self._phi: "OrderedDict[bytes, Predicate]" = OrderedDict()
        #: knowledge-free statements whose semantics are SI-independent
        self._static_statements = [
            s for s in program.statements if not s.is_knowledge_based()
        ]
        self._static_donor: Optional[Program] = None

    def share_term_cache_with(self, other: "CandidateResolver") -> None:
        """Reuse ``other``'s term-body memo (valid across same-space variants,
        e.g. the two initial conditions of a Figure-2 comparison)."""
        self._base_operator._term_cache = other._base_operator._term_cache

    @staticmethod
    def _lookup(store: "OrderedDict", key: bytes):
        found = store.get(key)
        if found is not None:
            store.move_to_end(key)
        return found

    @staticmethod
    def _store(store: "OrderedDict", key: bytes, value) -> None:
        store[key] = value
        while len(store) > _RESOLVER_LRU:
            store.popitem(last=False)

    def operator_at(self, candidate_si: Predicate) -> KnowledgeOperator:
        """A knowledge operator for ``candidate_si`` sharing the body memo."""
        return self._base_operator.with_si(candidate_si)

    def resolution(self, candidate_si: Predicate) -> Dict[Knowledge, Predicate]:
        """The knowledge-term resolution induced by ``candidate_si`` (memoized)."""
        key = candidate_si.fingerprint()
        found = self._lookup(self._resolutions, key)
        if found is None:
            found = self.operator_at(candidate_si).resolve_terms(self._terms)
            self._store(self._resolutions, key, found)
        return found

    def resolved_program(self, candidate_si: Predicate) -> Program:
        """``P_x`` with operational caches of knowledge-free statements shared."""
        key = candidate_si.fingerprint()
        found = self._lookup(self._programs, key)
        if found is None:
            found = self.program.resolve(self.resolution(candidate_si))
            donor = self._static_donor
            if donor is None:
                # First resolution computes the static statements' caches …
                self._static_donor = found
            else:
                # … every later P_x adopts them instead of recomputing.
                for stmt in self._static_statements:
                    found.adopt_operational_caches(donor, stmt)
            self._store(self._programs, key, found)
        return found

    def phi(self, candidate_si: Predicate) -> Predicate:
        """``Φ(x) = sst_{P_x}(init)`` — the induced strongest invariant."""
        key = candidate_si.fingerprint()
        found = self._lookup(self._phi, key)
        if found is None:
            resolved = self.resolved_program(candidate_si)
            found = sst(resolved, resolved.init).predicate
            self._store(self._phi, key, found)
        return found


def resolve_at(program: Program, candidate_si: Predicate) -> Program:
    """The standard program ``P_x``: knowledge terms resolved at ``x``.

    Each knowledge term ``K_i φ`` becomes the concrete predicate of
    eq. (13) computed with ``SI = x`` (nested terms innermost-first).
    One-shot convenience — the solvers share a :class:`CandidateResolver`
    instead.
    """
    return CandidateResolver(program).resolved_program(candidate_si)


def resolution_at(
    program: Program, candidate_si: Predicate
) -> Dict[Knowledge, Predicate]:
    """The knowledge-term resolution induced by a candidate SI."""
    return CandidateResolver(program).resolution(candidate_si)


def phi(program: Program, candidate_si: Predicate) -> Predicate:
    """``Φ(x) = sst_{P_x}(init)`` — the induced strongest invariant."""
    return CandidateResolver(program).phi(candidate_si)


def sp_hat(program: Program) -> Callable[[Predicate], Predicate]:
    """The transformer ``ŜP``: ``x ↦ SP_{P_x}.x`` (eq. 25's body).

    This is the object whose **lack of monotonicity** the paper identifies
    as "the culprit" behind ill-posed knowledge-based protocols; feed it to
    :func:`repro.transformers.check_monotonic` to exhibit that.
    """
    resolver = CandidateResolver(program)

    def transform(x: Predicate) -> Predicate:
        return sp_program(resolver.resolved_program(x), x)

    return transform


def is_solution(program: Program, candidate_si: Predicate) -> bool:
    """Whether ``candidate_si`` solves eq. (25) (i.e. ``Φ(x) = x``)."""
    if not program.init.entails(candidate_si):
        return False
    return phi(program, candidate_si) == candidate_si


@dataclass(frozen=True)
class SolveReport:
    """Result of the exhaustive SI search.

    ``solutions`` are all fixed points of ``Φ`` above ``init``;
    ``candidates_checked`` counts the supersets of ``init`` examined.
    An empty ``solutions`` list certifies (on these finite spaces) that the
    knowledge-based protocol has **no** consistent standard protocol —
    Figure 1's situation.

    With ``solve_si(..., emit_certificate=True)``, ``certificate`` carries a
    :class:`repro.certificates.certs.KbpSolveCertificate` — the per-candidate
    evidence (sst chains for solutions, escape paths or closed-set witnesses
    for refutations) an independent replayer re-checks without this solver.
    """

    solutions: Tuple[Predicate, ...]
    candidates_checked: int
    certificate: Optional[object] = None
    #: :class:`repro.robustness.FaultLog` from supervised parallel sweeps —
    #: ``None`` for serial solves; ``fault_log.clean`` means no faults fired.
    fault_log: Optional[object] = None
    #: :class:`repro.core.transport.DispatchStats` from multiprocess sweeps —
    #: bytes shipped per shard, arena size, worker peak RSS; ``None`` for
    #: serial and in-process solves.
    dispatch: Optional[object] = None

    @property
    def well_posed(self) -> bool:
        """At least one solution exists."""
        return bool(self.solutions)

    @property
    def unique(self) -> bool:
        """Exactly one solution exists."""
        return len(self.solutions) == 1

    def strongest(self) -> Predicate:
        """The ⊑-minimum solution; raises if none exists.

        "Strongest" means entailing every other solution — a smallest state
        *count* is not enough (two solutions can be incomparable).  When no
        minimum exists the question "the strongest solution" has no answer,
        and silently picking one would misreport the protocol's SI; the
        error names an incomparable pair so the caller can see why.
        """
        if not self.solutions:
            raise ValueError("knowledge-based protocol has no solution")
        # Solutions are pre-sorted by (count, mask): only the first can be a
        # ⊑-minimum (anything it fails to entail is no larger than it).
        candidate = self.solutions[0]
        for other in self.solutions[1:]:
            if not candidate.entails(other):
                raise ValueError(
                    "no strongest solution: "
                    f"{candidate!r} and {other!r} are ⊑-incomparable "
                    f"({len(self.solutions)} solutions in total)"
                )
        return candidate


def _supersets_of(base_mask: int, full_mask: int) -> Iterator[int]:
    """All masks ``m`` with ``base ⊆ m ⊆ full``, via submask enumeration."""
    free = full_mask & ~base_mask
    sub = free
    while True:
        yield base_mask | sub
        if sub == 0:
            return
        sub = (sub - 1) & free


def _check_exhaustive_size(space) -> None:
    """Refuse exhaustive sweeps beyond the unified ``solver`` limit."""
    limits.check_solver_size(space.size, symbolic_ok=True)


def solve_si(
    program: Program,
    resolver: Optional[CandidateResolver] = None,
    emit_certificate: bool = False,
    parallel: str = "auto",
    workers: Optional[int] = None,
    fault_policy: Optional[object] = None,
    checkpoint: Optional[object] = None,
    method: str = "auto",
    progress: Optional[object] = None,
    remote_workers: Optional[object] = None,
) -> SolveReport:
    """Completely solve eq. (25) over all candidates ``x ⊇ init``.

    ``method`` selects the complete solver for knowledge-based programs:

    * ``"exhaustive"`` — test every candidate individually.  Exponential in
      the number of non-initial states and guarded by the unified
      ``solver`` limit (:mod:`repro.predicates.limits`).
    * ``"cubes"`` — :func:`solve_si_cubes`: evaluate Φ once per sub-cube of
      the ``[init, true]`` lattice and split only undecided cubes.  Not
      size-guarded (it never enumerates candidates one by one), complete
      for programs whose knowledge terms are non-nested.
    * ``"auto"`` — exhaustive within the ``solver`` limit, cubes beyond it.

    Standard (knowledge-free) programs short-circuit to a single ``sst``
    (eq. 25 degenerates to eq. 1) with **no** size guard — on symbolic
    spaces the whole chain runs on ROBDD handles.
    Pass a :class:`CandidateResolver` to share knowledge-term bodies with
    related solves (the Figure-2 comparison does).

    ``parallel`` routes big exhaustive sweeps through the sharded, batched
    solver in :mod:`repro.core.parallel` (bit-identical results): ``"auto"``
    switches over at :data:`PARALLEL_AUTO_FREE_BITS` free state-bits,
    ``"force"`` always uses it for knowledge-based programs, ``"never"``
    keeps the serial sweep.  ``workers`` is forwarded to the parallel
    solver.

    ``fault_policy`` (a :class:`repro.robustness.FaultPolicy`) and
    ``checkpoint`` (a journal path or :class:`~repro.robustness.ShardJournal`)
    are sharded-solver features (DESIGN.md §10): passing either forces the
    parallel route for knowledge-based programs, and combining them with
    ``parallel="never"`` is an error.  So is ``progress`` — a callback
    receiving :class:`~repro.robustness.SolveProgress` ticks (one per
    resumed batch, one per completed shard, in journal order) from the
    supervised sharded sweep.

    With ``emit_certificate=True`` the report carries a full eq.-(25)
    certificate: each candidate's resolution plus either the sst chain
    (solutions) or a concrete refutation — a labeled escape path when
    ``Φ(x) ⊄ x``, a closed-set witness when ``Φ(x) ⊊ x``.  Only meaningful
    for knowledge-based programs, and only on the exhaustive route (the
    cube solver never visits refuted candidates individually).
    """
    if parallel not in ("auto", "never", "force"):
        raise ValueError(
            f"parallel={parallel!r} is not one of 'auto', 'never', 'force'"
        )
    if method not in ("auto", "exhaustive", "cubes"):
        raise ValueError(
            f"method={method!r} is not one of 'auto', 'exhaustive', 'cubes'"
        )
    wants_robustness = (
        fault_policy is not None
        or checkpoint is not None
        or progress is not None
        or remote_workers is not None
    )
    if wants_robustness and parallel == "never":
        raise ValueError(
            "fault_policy/checkpoint/progress/remote_workers are "
            'sharded-solver features; they cannot be combined with '
            'parallel="never"'
        )
    space = program.space
    if not program.is_knowledge_based():
        if emit_certificate:
            raise ValueError(
                "kbp-solve certificates are for knowledge-based programs; "
                "certify a standard program's SI with a fixpoint certificate"
            )
        # Standard program: eq. (25) degenerates to eq. (1); unique solution.
        solution = sst(program, program.init).predicate
        return SolveReport(solutions=(solution,), candidates_checked=1)
    if method == "auto":
        # Cubes only help (and are only sound) for non-nested knowledge;
        # otherwise stay exhaustive so the size guard can name the
        # remaining escape hatches.
        cubes_apply = not any(
            t.formula.knowledge_terms() for t in program.knowledge_terms()
        )
        method = (
            "cubes"
            if cubes_apply and space.size > limits.get_limit("solver")
            else "exhaustive"
        )
    if method == "cubes":
        if emit_certificate:
            raise ValueError(
                "the cube-pruning solver prunes refuted candidates in bulk "
                "and cannot emit per-candidate evidence; use "
                "method='exhaustive' (within the solver limit) for a "
                "certified sweep"
            )
        if wants_robustness:
            raise ValueError(
                "fault_policy/checkpoint/progress/remote_workers are sharded "
                "exhaustive-solver features; they cannot be combined with "
                "method='cubes'"
            )
        return solve_si_cubes(program, resolver=resolver)
    _check_exhaustive_size(space)
    if parallel != "never":
        free_bits = space.size - program.init.count()
        if (
            parallel == "force"
            or wants_robustness
            or free_bits >= PARALLEL_AUTO_FREE_BITS
        ):
            from .parallel import solve_si_parallel

            return solve_si_parallel(
                program,
                workers=workers,
                emit_certificate=emit_certificate,
                resolver=resolver,
                fault_policy=fault_policy,
                checkpoint=checkpoint,
                progress=progress,
                remote_workers=remote_workers,
            )
    if resolver is None:
        resolver = CandidateResolver(program)
    if emit_certificate:
        return _solve_si_certified(program, resolver)
    solutions: List[Predicate] = []
    checked = 0
    for mask in _supersets_of(program.init.mask, space.full_mask):
        checked += 1
        candidate = Predicate(space, mask)
        if resolver.phi(candidate) == candidate:
            solutions.append(candidate)
    solutions.sort(key=lambda p: (p.count(), p.mask))
    return SolveReport(solutions=tuple(solutions), candidates_checked=checked)


def _some_free_index(p: Predicate) -> Optional[int]:
    """A satisfying state index of ``p``, or None — mask- and handle-safe."""
    if p._mask is not None:
        m = p._mask
        return (m & -m).bit_length() - 1 if m else None
    return p._backend.some_index(p._handle, p.space.size)


def _single_state(space, index: int) -> Predicate:
    """The singleton predicate ``{index}`` without a 2^index-bit mask."""
    if space.size <= limits.get_limit("explicit"):
        return Predicate(space, 1 << index)
    backend = backend_for_size(space.size)
    return backend.wrap(space, backend.single(space, index))


def solve_si_cubes(
    program: Program, resolver: Optional[CandidateResolver] = None
) -> SolveReport:
    """Solve eq. (25) by pruning sub-cubes of the ``[init, true]`` lattice.

    A *cube* ``[L, U]`` is the set of candidates ``x`` with ``L ⊆ x ⊆ U``.
    For non-nested knowledge terms, eq. (13)'s resolution is **antitone**
    in the candidate SI (a larger ``x`` strengthens ``x ⇒ p`` under the
    ``wcyl`` and shrinks ``¬x``), so if the resolutions at the endpoints
    agree term-for-term they agree on the *whole* cube.  Then ``Φ`` is
    constant ``= c`` on the cube, and the cube's solutions are exactly
    ``{c}`` if ``L ⊆ c ⊆ U`` and ``∅`` otherwise — one ``Φ`` evaluation
    decides ``2^|U∖L|`` candidates.  Undecided cubes split on a single
    free state (preferring one where the endpoint resolutions differ).

    Complete: every candidate lies in exactly one decided cube.  Nested
    knowledge terms are refused — composing antitone resolutions is not
    antitone, so endpoint agreement would not imply constancy.

    Never size-guarded; on symbolic spaces every lattice operation stays
    on ROBDD handles (singleton split predicates included).

    The returned report's ``candidates_checked`` counts *decided cubes*
    (equivalently Φ evaluations plus refuted-cube probes), not individual
    candidates — the latter can exceed 2^(2^40).
    """
    if not program.is_knowledge_based():
        solution = sst(program, program.init).predicate
        return SolveReport(solutions=(solution,), candidates_checked=1)
    nested = sorted(
        (t for t in program.knowledge_terms() if t.formula.knowledge_terms()),
        key=repr,
    )
    if nested:
        raise ValueError(
            f"cube-pruning SI solver requires non-nested knowledge terms "
            f"(resolution is antitone in the candidate SI only then), but "
            f"{nested[0]!r} nests knowledge; use method='exhaustive' within "
            "the solver limit"
        )
    if resolver is None:
        resolver = CandidateResolver(program)
    space = program.space
    terms = sorted(program.knowledge_terms(), key=repr)
    solutions: List[Predicate] = []
    probes = 0
    stack: List[Tuple[Predicate, Predicate]] = [
        (program.init, Predicate.true(space))
    ]
    while stack:
        low, high = stack.pop()
        probes += 1
        res_low = resolver.resolution(low)
        res_high = resolver.resolution(high)
        if all(res_low[t] == res_high[t] for t in terms):
            # Resolution (hence Φ) is constant on [low, high]; the single
            # possible fixed point is its value c, provided c lies inside.
            value = resolver.phi(low)
            if low.entails(value) and value.entails(high):
                solutions.append(value)
            continue
        # Split on a free state, preferring one where the endpoint
        # resolutions disagree (deciding its membership tends to collapse
        # the disagreement fastest).
        free = high - low
        disagree = None
        for t in terms:
            d = (res_low[t] ^ res_high[t]) & free
            if not d.is_false():
                disagree = d
                break
        pick = disagree if disagree is not None else free
        index = _some_free_index(pick)
        assert index is not None  # endpoints differ, so the cube is proper
        single = _single_state(space, index)
        stack.append((low, high - single))
        stack.append((low | single, high))
    solutions.sort(key=lambda p: (p.count(), p.fingerprint()))
    return SolveReport(solutions=tuple(solutions), candidates_checked=probes)


def _candidate_evidence(
    resolver: CandidateResolver, candidate: Predicate
) -> Tuple[str, object]:
    """One candidate's certificate evidence: ``("solution", entry)`` or
    ``("refutation", refutation)``.

    Shared by the serial certified sweep and the sharded solver's per-shard
    walks — both must produce byte-identical evidence for a candidate.
    """
    # Lazy imports: repro.certificates depends on this module's data types.
    from ..certificates.certs import (
        CandidateRefutation,
        KbpSolutionEntry,
        resolution_table,
    )
    from ..proofs.modelcheck import labeled_path

    table = resolution_table(resolver.resolution(candidate))
    resolved = resolver.resolved_program(candidate)
    result = sst(resolved, resolved.init)
    value = result.predicate
    if value == candidate:
        return "solution", KbpSolutionEntry(
            candidate=candidate, resolution=table, chain=result.chain
        )
    if not value.entails(candidate):
        # Φ(x) ⊄ x: some state outside x is reachable in P_x — show it.
        path = labeled_path(resolved, resolved.init.mask, (~candidate).mask)
        assert path is not None  # value ⊄ candidate guarantees one
        return "refutation", CandidateRefutation(
            candidate=candidate,
            resolution=table,
            witness_kind="escape",
            path_states=path[0],
            path_statements=path[1],
        )
    # Φ(x) ⊊ x: reachability confines itself to Φ(x), leaving a candidate
    # state unreached.
    missing = next((candidate & ~value).indices())
    return "refutation", CandidateRefutation(
        candidate=candidate,
        resolution=table,
        witness_kind="unreached",
        closed=value,
        missing=missing,
    )


def _solve_si_certified(
    program: Program, resolver: CandidateResolver
) -> SolveReport:
    """The exhaustive sweep, recording per-candidate evidence as it goes."""
    from ..certificates.canonical import program_digest
    from ..certificates.certs import KbpSolveCertificate

    space = program.space
    solutions: List[Predicate] = []
    entries: List[object] = []
    refutations: List[object] = []
    checked = 0
    for mask in _supersets_of(program.init.mask, space.full_mask):
        checked += 1
        candidate = Predicate(space, mask)
        kind, payload = _candidate_evidence(resolver, candidate)
        if kind == "solution":
            solutions.append(candidate)
            entries.append(payload)
        else:
            refutations.append(payload)
    solutions.sort(key=lambda p: (p.count(), p.mask))
    certificate = KbpSolveCertificate(
        program=program_digest(program),
        init=program.init,
        solutions=tuple(entries),
        refutations=tuple(refutations),
    )
    return SolveReport(
        solutions=tuple(solutions),
        candidates_checked=checked,
        certificate=certificate,
    )


@dataclass(frozen=True)
class IterativeReport:
    """Outcome of the Kleene iteration ``init, Φ(init), Φ²(init), …``.

    ``converged`` means a fixed point of ``Φ`` was reached — i.e. an actual
    solution of (25).  ``cycle`` holds the repeating segment otherwise
    (possible because ``Φ`` inherits ``ŜP``'s non-monotonicity).
    """

    converged: bool
    solution: Optional[Predicate]
    iterations: int
    cycle: Tuple[Predicate, ...] = ()


def solve_si_iterative(
    program: Program, max_iterations: Optional[int] = None
) -> IterativeReport:
    """Iterate ``Φ`` from ``init``; report fixed point or cycle.

    Sound (a reported solution really solves (25)) but incomplete: when
    ``Φ`` cycles, solutions may still exist elsewhere in the lattice —
    the exhaustive solver decides that on small spaces.
    """
    resolver = CandidateResolver(program)
    result = iterate_to_fixpoint(
        resolver.phi,
        program.init,
        max_iterations,
        name=f"Φ of {program.name!r} (eq. 25)",
    )
    if result.converged:
        return IterativeReport(
            converged=True, solution=result.value, iterations=result.iterations
        )
    return IterativeReport(
        converged=False,
        solution=None,
        iterations=result.iterations,
        cycle=tuple(result.cycle),
    )


@dataclass(frozen=True)
class InitMonotonicityReport:
    """Comparison of SIs under a weaker and a stronger initial condition.

    The paper's Figure 2 phenomenon: ``init_strong ⇒ init_weak`` but
    ``si_strong ⇏ si_weak`` — reachability *grows* when fewer states may
    start, so safety/liveness properties are not preserved.
    """

    init_weak: Predicate
    init_strong: Predicate
    si_weak: Predicate
    si_strong: Predicate
    certificate_weak: Optional[object] = None
    certificate_strong: Optional[object] = None

    @property
    def monotonic(self) -> bool:
        """Whether ``si_strong ⇒ si_weak`` (what standard programs guarantee)."""
        return self.si_strong.entails(self.si_weak)


def compare_inits(
    program: Program,
    init_weak: Predicate,
    init_strong: Predicate,
    emit_certificate: bool = False,
) -> InitMonotonicityReport:
    """Solve the protocol under both initial conditions and compare SIs.

    Requires ``[init_strong ⇒ init_weak]`` and a unique solution for each
    variant (which holds for Figure 2); raises otherwise.  With
    ``emit_certificate=True`` both solves record full eq.-(25) certificates
    (one per variant) for the non-monotonicity evidence bundle.
    """
    if not init_strong.entails(init_weak):
        raise ValueError("init_strong must imply init_weak")
    shared: List[CandidateResolver] = []

    def solved_report(init: Predicate) -> SolveReport:
        variant = program.with_init(init)
        resolver = CandidateResolver(variant)
        if shared:
            # Term bodies are init-independent: both variants reuse them.
            resolver.share_term_cache_with(shared[0])
        shared.append(resolver)
        report = solve_si(
            variant, resolver=resolver, emit_certificate=emit_certificate
        )
        if not report.well_posed:
            raise ValueError("protocol variant has no SI solution")
        return report

    report_weak = solved_report(init_weak)
    report_strong = solved_report(init_strong)
    return InitMonotonicityReport(
        init_weak=init_weak,
        init_strong=init_strong,
        si_weak=report_weak.strongest(),
        si_strong=report_strong.strongest(),
        certificate_weak=report_weak.certificate,
        certificate_strong=report_strong.certificate,
    )


def instantiates(
    kb_program: Program,
    standard_program: Program,
    proposed: Dict[Knowledge, Predicate],
) -> bool:
    """Whether a standard protocol *instantiates* the knowledge-based one.

    Checks §6.3's criterion: the proposed predicates must coincide with the
    true knowledge predicates computed from the standard protocol's own
    strongest invariant, on the reachable states.  (Off ``SI`` the value is
    immaterial — no execution visits those states.)
    """
    from ..transformers import strongest_invariant

    si = strongest_invariant(standard_program)
    operator = KnowledgeOperator(
        kb_program.space,
        si,
        {p.name: p.variables for p in kb_program.processes.values()},
    )
    actual = operator.resolve_terms(kb_program.knowledge_terms())
    for term, proposed_pred in proposed.items():
        if term not in actual:
            raise KeyError(f"term {term!r} not in the protocol's knowledge terms")
        if not (proposed_pred & si) == (actual[term] & si):
            return False
    return True
