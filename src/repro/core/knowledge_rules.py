"""Proof rules bridging the knowledge operator and the UNITY proof kernel.

The paper's metatheorems (14), (23), (24) let knowledge facts enter UNITY
derivations.  Each rule validates its side conditions against the concrete
:class:`~repro.core.KnowledgeOperator` (whose SI must agree with the proof
context's) and returns a checked :class:`~repro.proofs.Proof`.
"""

from __future__ import annotations

from ..predicates import Predicate, depends_only_on
from ..proofs import Invariant, Proof, ProofContext, ProofError
from .knowledge import KnowledgeOperator


def _check_alignment(ctx: ProofContext, operator: KnowledgeOperator) -> None:
    if operator.space != ctx.space:
        raise ProofError("knowledge operator over a different state space")
    if not operator.si == ctx.si:
        raise ProofError(
            "knowledge operator's SI differs from the proof context's — "
            "knowledge facts would not be sound in this context"
        )


def k_truth(
    ctx: ProofContext,
    operator: KnowledgeOperator,
    process: str,
    p: Predicate,
    note: str = "",
) -> Proof:
    """Eq. (14) as an invariant: ``invariant (K_i p ⇒ p)``.

    Holds unconditionally (everywhere, in fact) by the definition (13).
    """
    _check_alignment(ctx, operator)
    kp = operator.knows(process, p)
    if not kp.entails(p):
        raise ProofError("internal error: truth axiom (14) violated")
    return Proof(Invariant(kp.implies(p)), "K-truth(14)", (), note)


def k_invariant_intro(
    ctx: ProofContext,
    operator: KnowledgeOperator,
    process: str,
    premise: Proof,
    note: str = "",
) -> Proof:
    """Eq. (23), ⇒ direction: ``invariant p ⊢ invariant K_i p``."""
    _check_alignment(ctx, operator)
    if not isinstance(premise.conclusion, Invariant):
        raise ProofError("premise must be an invariant proof")
    p = premise.conclusion.p
    kp = operator.knows(process, p)
    if not ctx.si.entails(kp):
        raise ProofError("internal error: (23) violated")
    return Proof(Invariant(kp), "K-invariant-intro(23)", (premise,), note)


def k_localization(
    ctx: ProofContext,
    operator: KnowledgeOperator,
    process: str,
    q: Predicate,
    p: Predicate,
    premise: Proof,
    note: str = "",
) -> Proof:
    """Eq. (24), ⇒ direction: local facts promote to knowledge.

    From ``invariant (q ⇒ p)`` with ``q`` depending only on the process's
    variables, conclude ``invariant (q ⇒ K_i p)``.  This is the paper's
    route to (52): from ``invariant (z ≥ k ⇒ j ≥ k)`` (54), with ``z``
    Sender-local, to ``invariant (z ≥ k ⇒ K_S(j ≥ k))``.
    """
    _check_alignment(ctx, operator)
    if not isinstance(premise.conclusion, Invariant):
        raise ProofError("premise must be an invariant proof")
    if not ctx.si.entails(premise.conclusion.p.iff(q.implies(p))):
        raise ProofError("premise is not `invariant (q ⇒ p)` for the given q, p")
    if not depends_only_on(q, operator.vars_of(process)):
        raise ProofError(
            f"(24) needs q to depend only on {process}'s variables"
        )
    kp = operator.knows(process, p)
    conclusion = q.implies(kp)
    if not ctx.si.entails(conclusion):
        raise ProofError("internal error: (24) violated")
    return Proof(Invariant(conclusion), "K-localization(24)", (premise,), note)
