"""The length-prefixed, digest-checked frame protocol shared by network code.

One wire format serves both sides of the distributed story: the shard
worker protocol (:mod:`repro.worker` / ``SocketTransport``) frames every
message through here, and the JSONL certificate service reuses the same
*limits* for its line framing, so a stalled or unbounded peer is cut off
by the same two constants everywhere.

A frame is::

    u32 header length (big-endian) | header JSON (ascii) | body bytes

where the header always carries ``type``, ``body`` (the body length) and,
for non-empty bodies, ``sha256`` — the hex digest of the body bytes.  The
receiver re-hashes what it actually read; a mismatch raises
:class:`FrameError` rather than handing corrupt bytes to ``pickle``.  The
header length is capped at :data:`MAX_LINE_BYTES` (the same cap the
service applies to a request line) and the body at
:data:`MAX_FRAME_BYTES`, so no peer can make a reader allocate without
bound.

The functions below work on blocking file-like objects (``socket
.makefile``); deadlines are the caller's business via ``settimeout`` —
:data:`READ_DEADLINE` is the shared default for "how long may a peer go
silent before the connection is presumed dead".

Trust model: the digest protects *integrity*, never *authenticity* — a
frame's sha256 says the bytes survived the wire, not that the peer is
allowed to send them.  Because the worker protocol carries pickles in
both directions (attach/plan payloads to the daemon, result bodies back
to the coordinator), accepting a frame from an unauthenticated peer is
arbitrary code execution on the receiver.  The HMAC helpers below
implement the mutual challenge–response both sides run *before any
pickle.loads* (the same construction as
``multiprocessing.connection``): each side proves knowledge of the
shared :data:`AUTH_KEY_ENV_VAR` secret over the other's fresh nonce.
Keyless operation is refused outright on non-loopback addresses, on
both the bind side and the connect side.
"""

from __future__ import annotations

import hashlib
import hmac
import ipaddress
import json
import os
import secrets
import struct
from typing import Any, Dict, Optional, Tuple

#: Cap on a JSONL request line *and* a frame header.  Anything legitimate
#: is a few hundred bytes; past this the peer is broken or hostile.
MAX_LINE_BYTES = 64 * 1024

#: Cap on a frame body (plan payloads, shard results).  Far above any real
#: payload, far below "allocate until the OOM killer arrives".
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: Default quiet-time deadline (seconds): how long a reader waits for the
#: next line/frame before declaring the peer gone.  Heartbeats make the
#: effective gap on a healthy worker connection a fraction of this.
READ_DEADLINE = 600.0

#: Worker protocol tag, echoed in attach handshakes.  /2 added the
#: mandatory hello/auth handshake ahead of ``attach``.
WORKER_PROTOCOL = "repro-worker/2"

#: Shared-secret knob for the worker protocol: both the daemon and the
#: coordinator read it (the daemon also takes ``--key-file``).  Any
#: non-empty string works; generate one with
#: ``python -c "import secrets; print(secrets.token_hex(32))"``.
AUTH_KEY_ENV_VAR = "REPRO_WORKER_KEY"

#: Domain separation for the worker-protocol HMAC, so a digest produced
#: here can never double as anything else keyed by the same secret.
_AUTH_CONTEXT = b"repro-worker-hmac-v1:"

_LEN = struct.Struct("!I")


class FrameError(Exception):
    """A frame failed to parse, verify its digest, or respect the limits."""


class AuthError(FrameError):
    """The peer failed (or refused) the HMAC handshake."""


def load_auth_key(value: Optional[str] = None) -> Optional[bytes]:
    """The shared worker-protocol secret as bytes, or ``None`` if unset.

    ``value`` overrides the :data:`AUTH_KEY_ENV_VAR` environment lookup;
    surrounding whitespace is stripped so key files may end in a newline.
    An empty (post-strip) value counts as "no key".
    """
    if value is None:
        value = os.environ.get(AUTH_KEY_ENV_VAR)
    if value is None:
        return None
    stripped = value.strip()
    return stripped.encode("utf-8") if stripped else None


def new_nonce() -> str:
    """A fresh 256-bit challenge nonce, hex-encoded for frame headers."""
    return secrets.token_hex(32)


def auth_digest(key: bytes, nonce: str) -> str:
    """HMAC-SHA256 proof of ``key`` over a peer's challenge ``nonce``."""
    return hmac.new(
        key, _AUTH_CONTEXT + nonce.encode("ascii"), hashlib.sha256
    ).hexdigest()


def check_auth_digest(key: bytes, nonce: str, claimed: Any) -> bool:
    """Constant-time check of a peer's answer to our challenge."""
    if not isinstance(claimed, str):
        return False
    return hmac.compare_digest(auth_digest(key, nonce), claimed)


def is_loopback_host(host: str) -> bool:
    """True when ``host`` can only name this machine's loopback.

    Hostnames other than ``localhost`` answer False even if they happen
    to resolve to 127.0.0.1 — the keyless worker protocol is allowed
    only where the name alone proves the traffic never leaves the host.
    """
    if host == "localhost":
        return True
    try:
        return ipaddress.ip_address(host).is_loopback
    except ValueError:
        return False


def _read_exact(rfile, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise :class:`FrameError`.

    A clean EOF *before any byte* raises ``FrameError("connection
    closed")`` so callers can distinguish an orderly hangup from a frame
    torn mid-transfer.
    """
    chunks = []
    remaining = count
    while remaining:
        chunk = rfile.read(remaining)
        if not chunk:
            if remaining == count:
                raise FrameError("connection closed")
            raise FrameError(
                f"frame torn mid-transfer: expected {count} bytes, "
                f"got {count - remaining}"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def encode_frame(
    frame_type: str, meta: Optional[Dict[str, Any]] = None, body: bytes = b""
) -> bytes:
    """One frame as bytes: length-prefixed header JSON plus raw body."""
    header: Dict[str, Any] = {"type": frame_type, "body": len(body)}
    if meta:
        header.update(meta)
    if body:
        header["sha256"] = hashlib.sha256(body).hexdigest()
    blob = json.dumps(header, sort_keys=True).encode("ascii")
    if len(blob) > MAX_LINE_BYTES:
        raise FrameError(
            f"frame header is {len(blob)} bytes; the cap is {MAX_LINE_BYTES}"
        )
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame body is {len(body)} bytes; the cap is {MAX_FRAME_BYTES}"
        )
    return _LEN.pack(len(blob)) + blob + body


def send_frame(
    wfile,
    frame_type: str,
    meta: Optional[Dict[str, Any]] = None,
    body: bytes = b"",
) -> int:
    """Write one frame; returns the byte count that hit the wire."""
    data = encode_frame(frame_type, meta, body)
    wfile.write(data)
    wfile.flush()
    return len(data)


def recv_frame(rfile) -> Tuple[Dict[str, Any], bytes, int]:
    """Read one frame; returns ``(header, body, bytes_read)``.

    Raises :class:`FrameError` on EOF, torn transfer, oversized header or
    body, malformed header JSON, or a body whose sha256 does not match the
    advertised digest (a corrupt frame must never reach ``pickle``).
    """
    raw_len = _read_exact(rfile, _LEN.size)
    (header_len,) = _LEN.unpack(raw_len)
    if header_len > MAX_LINE_BYTES:
        raise FrameError(
            f"frame header claims {header_len} bytes; the cap is "
            f"{MAX_LINE_BYTES}"
        )
    try:
        header = json.loads(_read_exact(rfile, header_len))
        if not isinstance(header, dict) or "type" not in header:
            raise ValueError("header is not an object with a 'type'")
        body_len = int(header.get("body", 0))
    except (ValueError, UnicodeDecodeError) as exc:
        raise FrameError(f"malformed frame header: {exc}") from None
    if body_len < 0 or body_len > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame body claims {body_len} bytes; the cap is {MAX_FRAME_BYTES}"
        )
    body = _read_exact(rfile, body_len) if body_len else b""
    if body:
        digest = hashlib.sha256(body).hexdigest()
        if digest != header.get("sha256"):
            raise FrameError(
                f"corrupt frame: body hashes to {digest[:16]}…, header "
                f"advertised {str(header.get('sha256'))[:16]}…"
            )
    return header, body, _LEN.size + header_len + body_len
