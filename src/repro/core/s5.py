"""Verification of the modal-logic properties of ``K_i`` (paper eqs. 14–24).

Equations (14)–(18) are the S5 axioms (knowledge axiom T, distribution K,
positive and negative introspection 4 and 5, and necessitation); (19)–(22)
are junctivity properties; (23)–(24) relate knowledge to invariants.

Every check here is *exhaustive over predicates* on small spaces (a proof,
not a test) and returns ``None`` on success or a counterexample witness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

from ..predicates import Predicate, depends_only_on
from ..statespace import StateSpace
from ..transformers import all_predicates, random_predicate
from .knowledge import KnowledgeOperator


@dataclass(frozen=True)
class S5Violation:
    """A failed S5/knowledge law, with the offending predicates."""

    law: str
    witnesses: Tuple[Predicate, ...]

    def __repr__(self) -> str:
        return f"S5Violation({self.law})"


def _predicates(
    space: StateSpace, samples: Optional[int], rng: Optional[random.Random]
) -> Iterator[Predicate]:
    if samples is None:
        yield from all_predicates(space)
    else:
        rng = rng or random.Random(0)
        for _ in range(samples):
            yield random_predicate(space, rng)


def check_truth_axiom(
    op: KnowledgeOperator,
    process: str,
    samples: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> Optional[S5Violation]:
    """Eq. (14): ``[K_i p ⇒ p]`` — knowledge is true."""
    for p in _predicates(op.space, samples, rng):
        if not op.knows(process, p).entails(p):
            return S5Violation("(14) [K_i p => p]", (p,))
    return None


def check_distribution(
    op: KnowledgeOperator,
    process: str,
    samples: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> Optional[S5Violation]:
    """Eq. (15): ``[(K_i p ∧ K_i(p ⇒ q)) ⇒ K_i q]`` — axiom K."""
    space = op.space
    if samples is None:
        pairs = ((p, q) for p in all_predicates(space) for q in all_predicates(space))
    else:
        rng = rng or random.Random(0)
        pairs = (
            (random_predicate(space, rng), random_predicate(space, rng))
            for _ in range(samples)
        )
    for p, q in pairs:
        lhs = op.knows(process, p) & op.knows(process, p.implies(q))
        if not lhs.entails(op.knows(process, q)):
            return S5Violation("(15) distribution", (p, q))
    return None


def check_positive_introspection(
    op: KnowledgeOperator,
    process: str,
    samples: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> Optional[S5Violation]:
    """Eq. (16): ``[K_i p ≡ K_i K_i p]`` — axiom 4 (as an equivalence)."""
    for p in _predicates(op.space, samples, rng):
        kp = op.knows(process, p)
        if not kp == op.knows(process, kp):
            return S5Violation("(16) positive introspection", (p,))
    return None


def check_negative_introspection(
    op: KnowledgeOperator,
    process: str,
    samples: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> Optional[S5Violation]:
    """Eq. (17): ``[¬K_i p ≡ K_i ¬K_i p]`` — axiom 5 (as an equivalence).

    Note: with the eq.-(13) definition this equivalence is guaranteed on the
    *reachable* states (within SI); on unreachable states ``K_i q`` takes the
    value of ``q``, which keeps (17) an exact equivalence there too.
    """
    for p in _predicates(op.space, samples, rng):
        not_kp = ~op.knows(process, p)
        if not not_kp == op.knows(process, not_kp):
            return S5Violation("(17) negative introspection", (p,))
    return None


def check_necessitation(
    op: KnowledgeOperator,
    process: str,
    samples: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> Optional[S5Violation]:
    """Eq. (18): ``[p] ⇒ [K_i p]`` — valid facts are known."""
    for p in _predicates(op.space, samples, rng):
        if p.is_everywhere() and not op.knows(process, p).is_everywhere():
            return S5Violation("(18) necessitation", (p,))
    return None


def check_monotonicity_in_p(
    op: KnowledgeOperator,
    process: str,
    samples: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> Optional[S5Violation]:
    """Eq. (19): ``K_i`` is monotonic with respect to ``p``."""
    space = op.space
    if samples is None:
        pairs = ((p, q) for p in all_predicates(space) for q in all_predicates(space))
    else:
        rng = rng or random.Random(0)
        pairs = (
            (random_predicate(space, rng), random_predicate(space, rng))
            for _ in range(samples)
        )
    for p, q in pairs:
        q = p | q if samples is not None else q
        if p.entails(q) and not op.knows(process, p).entails(op.knows(process, q)):
            return S5Violation("(19) monotone in p", (p, q))
    return None


def check_antimonotonicity_in_si(
    op_weak: KnowledgeOperator,
    op_strong: KnowledgeOperator,
    process: str,
    samples: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> Optional[S5Violation]:
    """Eq. (20): ``K_i p`` is anti-monotonic with respect to ``SI``.

    Fewer possible states ⇒ more knowledge: if ``SI' ⇒ SI`` then
    ``K_i^{SI} p ⇒ K_i^{SI'} p`` **on the states where both are defined the
    same way** — per eq. (13) the operators also differ on unreachable
    states, so the comparison is made under the stronger SI (where both
    SIs hold the classical reading applies).
    """
    if not op_strong.si.entails(op_weak.si):
        raise ValueError("op_strong must have the stronger (smaller) SI")
    for p in _predicates(op_weak.space, samples, rng):
        weak_k = op_weak.knows(process, p) & op_strong.si
        strong_k = op_strong.knows(process, p) & op_strong.si
        if not weak_k.entails(strong_k):
            return S5Violation("(20) anti-monotone in SI", (p,))
    return None


def check_universal_conjunctivity(
    op: KnowledgeOperator, process: str
) -> Optional[S5Violation]:
    """Eq. (21): ``K_i`` is universally conjunctive (exhaustive, small spaces)."""
    from ..transformers import check_universally_conjunctive

    ce = check_universally_conjunctive(lambda p: op.knows(process, p), op.space)
    if ce is not None:
        return S5Violation("(21) universally conjunctive", ce.witnesses)
    return None


def find_disjunctivity_counterexample(
    op: KnowledgeOperator, process: str
) -> Optional[Tuple[Predicate, Predicate]]:
    """Eq. (22): search for ``p, q`` with ``K_i p ∨ K_i q ≠ K_i(p ∨ q)``.

    Returns a witness pair when the operator is **not** disjunctive (the
    generic situation, per the paper), or ``None`` when it happens to be.
    """
    for p in all_predicates(op.space):
        for q in all_predicates(op.space):
            if not (op.knows(process, p) | op.knows(process, q)) == op.knows(
                process, p | q
            ):
                return (p, q)
    return None


def check_invariant_equivalence(
    op: KnowledgeOperator,
    process: str,
    samples: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> Optional[S5Violation]:
    """Eq. (23): ``invariant p ≡ invariant K_i p`` (both read as ``[SI ⇒ ·]``)."""
    for p in _predicates(op.space, samples, rng):
        inv_p = op.si.entails(p)
        inv_kp = op.si.entails(op.knows(process, p))
        if inv_p != inv_kp:
            return S5Violation("(23) invariant p ≡ invariant K_i p", (p,))
    return None


def check_local_invariant_equivalence(
    op: KnowledgeOperator,
    process: str,
    samples: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> Optional[S5Violation]:
    """Eq. (24): for ``q`` over ``vars_i``: ``inv (q ⇒ p) ≡ inv (q ⇒ K_i p)``.

    The result the expert reviewer of the paper thought was wrong; here it
    is checked exhaustively (all local ``q``, all ``p``).
    """
    variables = op.vars_of(process)
    space = op.space
    local_qs: List[Predicate] = [
        q for q in all_predicates(space) if depends_only_on(q, variables)
    ]
    for p in _predicates(space, samples, rng):
        kp = op.knows(process, p)
        for q in local_qs:
            lhs = op.si.entails(q.implies(p))
            rhs = op.si.entails(q.implies(kp))
            if lhs != rhs:
                return S5Violation("(24) local invariant equivalence", (p, q))
    return None


def verify_all(
    op: KnowledgeOperator, process: str, samples: Optional[int] = None
) -> List[S5Violation]:
    """Run every check (14)–(19), (21)–(24); returns all violations found.

    (20) needs a second operator and is exercised separately.
    """
    rng = random.Random(1991)
    checks: List[Callable[[], Optional[S5Violation]]] = [
        lambda: check_truth_axiom(op, process, samples, rng),
        lambda: check_distribution(op, process, samples, rng),
        lambda: check_positive_introspection(op, process, samples, rng),
        lambda: check_negative_introspection(op, process, samples, rng),
        lambda: check_necessitation(op, process, samples, rng),
        lambda: check_monotonicity_in_p(op, process, samples, rng),
        lambda: (
            check_universal_conjunctivity(op, process) if samples is None else None
        ),
        lambda: check_invariant_equivalence(op, process, samples, rng),
        lambda: check_local_invariant_equivalence(op, process, samples, rng),
    ]
    violations: List[S5Violation] = []
    for check in checks:
        violation = check()
        if violation is not None:
            violations.append(violation)
    return violations
