"""The shard-dispatch transport seam (ROADMAP item 4).

The supervisor treats shards as leased, journaled, retryable units; what
actually *carries* a shard to a worker is a transport.  Today that is
:class:`LocalPoolTransport` — a ``ProcessPoolExecutor`` behind a small
interface — but the interface is the point: a TCP worker protocol slots
in as a second implementation without touching the supervisor or the
solver, because everything they need is ``submit``/``shutdown``/
``terminate`` plus futures.

The transport is also where dispatch *accounting* lives.  With the
shared-memory arena (DESIGN.md §14) a shard submission pickles exactly
``(shard_index, fixed_mask)`` — two small ints — and
:class:`DispatchStats` measures that, so the bench can report
bytes-shipped-per-shard instead of inferring it.  Worker peak RSS is
sampled through the same pool (one probe task per worker slot) right
before teardown.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple


@dataclass
class DispatchStats:
    """What one solve shipped across its dispatch boundary.

    Attached to ``SolveReport.dispatch`` by the parallel solver.  Byte
    counts are parent-side pickle sizes of submitted task arguments —
    the per-shard payload the transport actually serializes; the
    one-time worker-initialization payload (program + arena spec) is
    recorded separately in ``init_bytes`` so the two costs cannot be
    conflated.
    """

    start_method: str = ""
    shards_dispatched: int = 0
    bytes_dispatched: int = 0
    #: pickled size of the worker initializer's arguments (once per worker)
    init_bytes: int = 0
    #: size of the shared-memory arena, 0 when no arena was built
    arena_bytes: int = 0
    arena_segments: int = 0
    #: max ``ru_maxrss`` (KiB on Linux) sampled across pool workers
    worker_peak_rss_kb: int = 0

    @property
    def bytes_per_shard(self) -> float:
        if not self.shards_dispatched:
            return 0.0
        return self.bytes_dispatched / self.shards_dispatched

    def as_dict(self) -> Dict[str, Any]:
        return {
            "start_method": self.start_method,
            "shards_dispatched": self.shards_dispatched,
            "bytes_dispatched": self.bytes_dispatched,
            "bytes_per_shard": round(self.bytes_per_shard, 2),
            "init_bytes": self.init_bytes,
            "arena_bytes": self.arena_bytes,
            "arena_segments": self.arena_segments,
            "worker_peak_rss_kb": self.worker_peak_rss_kb,
        }


def _probe_worker_rss(pause: float) -> Tuple[int, int]:
    """Runs in a worker: (pid, peak RSS in KiB-ish ru_maxrss units).

    The pause spreads probes across pool slots so one idle worker does
    not answer for all of them.
    """
    import resource

    if pause:
        time.sleep(pause)
    usage = resource.getrusage(resource.RUSAGE_SELF)
    return os.getpid(), int(usage.ru_maxrss)


class ShardTransport:
    """What the supervisor requires of a dispatch mechanism.

    ``submit`` returns a future; ``shutdown`` mirrors the executor
    protocol; ``terminate`` is the hard teardown the lease machinery
    needs for hung workers (the executor API alone cannot preempt one).
    """

    def submit(self, fn: Callable[..., Any], *args: Any):
        raise NotImplementedError

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        raise NotImplementedError

    def terminate(self) -> None:
        """Kill workers outright; safe on an already-stopped transport."""
        raise NotImplementedError


class LocalPoolTransport(ShardTransport):
    """A process pool behind the transport interface, with accounting."""

    def __init__(
        self,
        *,
        workers: int,
        mp_context,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
        stats: Optional[DispatchStats] = None,
    ):
        self.workers = workers
        self.stats = stats
        if stats is not None:
            stats.init_bytes = len(
                pickle.dumps(initargs, protocol=pickle.HIGHEST_PROTOCOL)
            )
        self._pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=mp_context,
            initializer=initializer,
            initargs=initargs,
        )

    def submit(self, fn, *args):
        if self.stats is not None:
            self.stats.shards_dispatched += 1
            self.stats.bytes_dispatched += len(
                pickle.dumps(args, protocol=pickle.HIGHEST_PROTOCOL)
            )
        return self._pool.submit(fn, *args)

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        self._pool.shutdown(wait=wait, cancel_futures=cancel_futures)

    def terminate(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)
        processes = getattr(self._pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # racing a worker's own exit is fine
                pass

    def sample_worker_rss(self, timeout: float = 10.0) -> int:
        """Max peak RSS across pool workers (0 if none answer in time).

        Dispatches one probe per worker slot; probes do not count as
        shard dispatches.  Call while the pool is healthy, before
        teardown.
        """
        futures = [
            self._pool.submit(_probe_worker_rss, 0.02)
            for _ in range(self.workers)
        ]
        peak: Dict[int, int] = {}
        for future in futures:
            try:
                pid, rss = future.result(timeout=timeout)
            except Exception:  # a dying pool just yields no sample
                continue
            peak[pid] = max(peak.get(pid, 0), rss)
        return max(peak.values(), default=0)
