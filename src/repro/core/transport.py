"""The shard-dispatch transport seam (ROADMAP item 4).

The supervisor treats shards as leased, journaled, retryable units; what
actually *carries* a shard to a worker is a transport.  Two live behind
the same interface:

* :class:`LocalPoolTransport` — a ``ProcessPoolExecutor`` behind
  ``submit``/``shutdown``/``terminate``, with the shared-memory arena
  (DESIGN.md §14) keeping per-shard payloads at two pickled ints;
* :class:`SocketTransport` — the TCP worker protocol (DESIGN.md §15):
  every address in ``workers`` names a ``python -m repro.worker`` daemon,
  shards travel as length-prefixed digest-checked frames
  (:mod:`repro.core.netproto`), workers prove liveness with heartbeats,
  and a worker that vanishes mid-shard surrenders its lease back to the
  supervisor as :class:`ShardLeaseRevoked` — the supervisor re-dispatches
  it to a surviving worker, exactly as it re-dispatches a crashed pool
  worker's shard.

The transport is also where dispatch *accounting* lives:
:class:`DispatchStats` measures what each solve actually shipped —
pickled bytes per shard, the one-time attach payload, and (for sockets)
frames, wire bytes, per-worker retries, and lost workers — so
degradation is observable on the report instead of silent.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import queue
import socket
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .netproto import (
    AUTH_KEY_ENV_VAR,
    AuthError,
    FrameError,
    WORKER_PROTOCOL,
    auth_digest,
    check_auth_digest,
    is_loopback_host,
    load_auth_key,
    new_nonce,
    recv_frame,
    send_frame,
)

#: Environment knob: seconds between worker heartbeats while computing.
HEARTBEAT_ENV_VAR = "REPRO_SOCKET_HEARTBEAT"

#: Environment knob: seconds of worker silence before its lease is revoked.
HEARTBEAT_TIMEOUT_ENV_VAR = "REPRO_SOCKET_HEARTBEAT_TIMEOUT"

DEFAULT_HEARTBEAT = 0.5
DEFAULT_HEARTBEAT_TIMEOUT = 10.0


def heartbeat_interval() -> float:
    return float(os.environ.get(HEARTBEAT_ENV_VAR) or DEFAULT_HEARTBEAT)


def heartbeat_timeout() -> float:
    return float(
        os.environ.get(HEARTBEAT_TIMEOUT_ENV_VAR) or DEFAULT_HEARTBEAT_TIMEOUT
    )


@dataclass
class DispatchStats:
    """What one solve shipped across its dispatch boundary.

    Attached to ``SolveReport.dispatch`` by the parallel solver.  Byte
    counts are parent-side pickle sizes of submitted task arguments —
    the per-shard payload the transport actually serializes; the
    one-time worker-initialization payload (initargs for a local pool,
    the attach payload for socket workers) is recorded separately in
    ``init_bytes`` so the two costs cannot be conflated.

    One stats object can serve several transports in sequence — a solve
    that degrades from socket workers to a local pool keeps accumulating
    into the same instance, and ``transports`` records every dispatch
    mechanism that carried shards.  :meth:`as_dict` output survives a
    JSON round-trip through :meth:`from_dict`, and :meth:`merge` combines
    two accounts (e.g. per-transport snapshots) into one; derived values
    like ``bytes_per_shard`` are always recomputed from the counts, never
    trusted from a serialized copy.
    """

    start_method: str = ""
    shards_dispatched: int = 0
    bytes_dispatched: int = 0
    #: pickled size of the worker initializer's arguments (once per worker)
    init_bytes: int = 0
    #: size of the shared-memory arena, 0 when no arena was built
    arena_bytes: int = 0
    arena_segments: int = 0
    #: max ``ru_maxrss`` (KiB on Linux) sampled across pool workers
    worker_peak_rss_kb: int = 0
    #: every dispatch mechanism that carried shards, in first-use order
    transports: List[str] = field(default_factory=list)
    #: protocol frames sent to / received from socket workers
    frames_sent: int = 0
    frames_received: int = 0
    #: wire bytes sent to / received from socket workers (frames included)
    net_bytes_sent: int = 0
    net_bytes_received: int = 0
    #: bytes of Φ-plan payload shipped to workers that could not reach the arena
    plan_payload_bytes: int = 0
    #: connect/IO retries per worker address
    worker_retries: Dict[str, int] = field(default_factory=dict)
    #: socket workers declared permanently lost during the solve
    workers_lost: int = 0
    #: byte-identical duplicate shard results ignored (keyed mask+attempt)
    duplicate_results: int = 0

    @property
    def bytes_per_shard(self) -> float:
        """Mean per-shard payload; exactly 0.0 when nothing was dispatched.

        Derived — never stored, never rounded internally — so merged and
        round-tripped stats recompute it from the raw counts instead of
        averaging averages.
        """
        if self.shards_dispatched <= 0:
            return 0.0
        return self.bytes_dispatched / self.shards_dispatched

    def note_transport(self, name: str) -> None:
        if name not in self.transports:
            self.transports.append(name)

    def count_retry(self, address: str) -> None:
        self.worker_retries[address] = self.worker_retries.get(address, 0) + 1

    def as_dict(self) -> Dict[str, Any]:
        return {
            "start_method": self.start_method,
            "shards_dispatched": self.shards_dispatched,
            "bytes_dispatched": self.bytes_dispatched,
            "bytes_per_shard": round(self.bytes_per_shard, 2),
            "init_bytes": self.init_bytes,
            "arena_bytes": self.arena_bytes,
            "arena_segments": self.arena_segments,
            "worker_peak_rss_kb": self.worker_peak_rss_kb,
            "transports": list(self.transports),
            "frames_sent": self.frames_sent,
            "frames_received": self.frames_received,
            "net_bytes_sent": self.net_bytes_sent,
            "net_bytes_received": self.net_bytes_received,
            "plan_payload_bytes": self.plan_payload_bytes,
            "worker_retries": dict(self.worker_retries),
            "workers_lost": self.workers_lost,
            "duplicate_results": self.duplicate_results,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "DispatchStats":
        """Rebuild stats from :meth:`as_dict` output (JSON round-trip safe).

        ``bytes_per_shard`` in the input is ignored — it is derived state,
        and the serialized copy is rounded; trusting it would make
        round-tripped stats disagree with their own counts.
        """
        known = {f.name for f in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        kwargs = {k: v for k, v in doc.items() if k in known}
        kwargs["transports"] = list(kwargs.get("transports", []))
        kwargs["worker_retries"] = dict(kwargs.get("worker_retries", {}))
        return cls(**kwargs)

    def merge(self, other: "DispatchStats") -> "DispatchStats":
        """Combine two accounts into a new one (counts add, peaks max).

        A degraded solve that dispatched through both a socket transport
        and a local pool merges to one account whose ``bytes_per_shard``
        is the true overall mean — total bytes over total shards — not an
        average of the two per-transport means.
        """
        retries = dict(self.worker_retries)
        for address, count in other.worker_retries.items():
            retries[address] = retries.get(address, 0) + count
        transports = list(self.transports)
        for name in other.transports:
            if name not in transports:
                transports.append(name)
        return DispatchStats(
            start_method=self.start_method or other.start_method,
            shards_dispatched=self.shards_dispatched + other.shards_dispatched,
            bytes_dispatched=self.bytes_dispatched + other.bytes_dispatched,
            init_bytes=self.init_bytes + other.init_bytes,
            arena_bytes=max(self.arena_bytes, other.arena_bytes),
            arena_segments=max(self.arena_segments, other.arena_segments),
            worker_peak_rss_kb=max(
                self.worker_peak_rss_kb, other.worker_peak_rss_kb
            ),
            transports=transports,
            frames_sent=self.frames_sent + other.frames_sent,
            frames_received=self.frames_received + other.frames_received,
            net_bytes_sent=self.net_bytes_sent + other.net_bytes_sent,
            net_bytes_received=self.net_bytes_received
            + other.net_bytes_received,
            plan_payload_bytes=self.plan_payload_bytes
            + other.plan_payload_bytes,
            worker_retries=retries,
            workers_lost=self.workers_lost + other.workers_lost,
            duplicate_results=self.duplicate_results + other.duplicate_results,
        )


def _probe_worker_rss(pause: float) -> Tuple[int, int]:
    """Runs in a worker: (pid, peak RSS in KiB-ish ru_maxrss units).

    The pause spreads probes across pool slots so one idle worker does
    not answer for all of them.
    """
    import resource

    if pause:
        time.sleep(pause)
    usage = resource.getrusage(resource.RUSAGE_SELF)
    return os.getpid(), int(usage.ru_maxrss)


class ShardTransport:
    """What the supervisor requires of a dispatch mechanism.

    ``submit`` returns a future; ``shutdown`` mirrors the executor
    protocol; ``terminate`` is the hard teardown the lease machinery
    needs for hung workers (the executor API alone cannot preempt one).
    """

    def submit(self, fn: Callable[..., Any], *args: Any):
        raise NotImplementedError

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        raise NotImplementedError

    def terminate(self) -> None:
        """Kill workers outright; safe on an already-stopped transport."""
        raise NotImplementedError


class LocalPoolTransport(ShardTransport):
    """A process pool behind the transport interface, with accounting."""

    def __init__(
        self,
        *,
        workers: int,
        mp_context,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
        stats: Optional[DispatchStats] = None,
    ):
        self.workers = workers
        self.stats = stats
        if stats is not None:
            stats.note_transport("local")
            stats.init_bytes += len(
                pickle.dumps(initargs, protocol=pickle.HIGHEST_PROTOCOL)
            )
        self._pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=mp_context,
            initializer=initializer,
            initargs=initargs,
        )

    def submit(self, fn, *args):
        if self.stats is not None:
            self.stats.shards_dispatched += 1
            self.stats.bytes_dispatched += len(
                pickle.dumps(args, protocol=pickle.HIGHEST_PROTOCOL)
            )
        return self._pool.submit(fn, *args)

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        self._pool.shutdown(wait=wait, cancel_futures=cancel_futures)

    def terminate(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)
        processes = getattr(self._pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # racing a worker's own exit is fine
                pass

    def sample_worker_rss(self, timeout: float = 10.0) -> int:
        """Max peak RSS across pool workers (0 if none answer in time).

        Dispatches one probe per worker slot; probes do not count as
        shard dispatches.  Call while the pool is healthy, before
        teardown.
        """
        futures = [
            self._pool.submit(_probe_worker_rss, 0.02)
            for _ in range(self.workers)
        ]
        peak: Dict[int, int] = {}
        for future in futures:
            try:
                pid, rss = future.result(timeout=timeout)
            except Exception:  # a dying pool just yields no sample
                continue
            peak[pid] = max(peak.get(pid, 0), rss)
        return max(peak.values(), default=0)


# ----------------------------------------------------------------------
# the TCP transport
# ----------------------------------------------------------------------


class SocketTransportError(RuntimeError):
    """No socket worker could be attached; the caller should degrade."""


class ShardLeaseRevoked(Exception):
    """A socket worker vanished mid-shard; its lease is surrendered.

    Raised *through the shard's future* so the supervisor — not the
    transport — decides what happens next: the shard re-enters the lease
    machinery (retry with backoff on a surviving worker, then the serial
    fallback) with the incident on the fault log.  Distinct from
    ``BrokenProcessPool``, which a transport raises only when *every*
    worker is gone and the whole pool must be respawned.
    """

    def __init__(self, shard_index: int, fixed_mask: int, worker: str, cause: str):
        self.shard_index = shard_index
        self.fixed_mask = fixed_mask
        self.worker = worker
        super().__init__(
            f"socket worker {worker} lost shard {shard_index} "
            f"(fixed-bit mask {bin(fixed_mask)}): {cause}"
        )


class _LinkBroken(Exception):
    """Internal: this worker connection can no longer be trusted."""


def parse_address(address: str) -> Tuple[str, int]:
    """``host:port`` → ``(host, port)``; the only address syntax accepted."""
    host, sep, port = address.strip().rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"worker address {address!r} is not host:port (e.g. "
            "127.0.0.1:7421)"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(
            f"worker address {address!r} has a non-integer port {port!r}"
        ) from None


@dataclass
class _SocketTask:
    index: int
    fixed_mask: int
    attempt: int
    future: Future


class _WorkerLink:
    """One attached worker connection plus its bookkeeping."""

    def __init__(self, index: int, address: str):
        self.index = index
        self.address = address
        self.sock: Optional[socket.socket] = None
        self.rfile = None
        self.wfile = None
        self.mode = ""  # "arena" | "payload" | "resolver" (worker-reported)
        self.alive = False

    def close(self) -> None:
        for stream in (self.rfile, self.wfile, self.sock):
            if stream is None:
                continue
            try:
                stream.close()
            except OSError:
                pass
        self.sock = self.rfile = self.wfile = None
        self.alive = False


class SocketTransport(ShardTransport):
    """Shards over TCP to ``python -m repro.worker`` daemons.

    Construction connects to and *attaches* every address: the worker
    receives the solve's program digest plus the attach payload (program,
    shard layout, solver flags, arena spec) and either maps the
    shared-memory arena by name or — when the segment does not resolve,
    e.g. on another host — asks for and receives the full Φ-plan payload.
    A worker none of whose connect attempts succeed (retry with the fault
    policy's exponential backoff) is simply skipped; zero attached
    workers raises :class:`SocketTransportError` so the caller can
    degrade to a local pool.

    Per shard, the owning link sends one ``shard`` frame and waits for a
    ``result`` frame, with worker ``heartbeat`` frames resetting the
    per-worker deadline in between; a worker silent past the heartbeat
    timeout, or one whose connection breaks or frames arrive corrupt, is
    first retried (reconnect + re-attach + re-dispatch under a fresh
    attempt number) and then declared lost — the in-flight shard's future
    raises :class:`ShardLeaseRevoked` and the supervisor re-dispatches.
    Results are keyed by ``(fixed_mask, attempt)``: a duplicate result is
    accepted only if byte-identical to the first (anything else breaks
    the link), so re-executed shards are idempotent by construction.
    """

    def __init__(
        self,
        addresses: Sequence[str],
        *,
        program_digest: str,
        attach_args: Dict[str, Any],
        plan: Optional[Any] = None,
        policy: Optional[Any] = None,
        stats: Optional[DispatchStats] = None,
        log: Optional[Any] = None,
        net_plan: Optional[Any] = None,
        heartbeat: Optional[float] = None,
        timeout: Optional[float] = None,
        connect_timeout: float = 5.0,
        auth_key: Optional[bytes] = None,
    ):
        if not addresses:
            raise SocketTransportError("no worker addresses given")
        for address in addresses:
            parse_address(address)  # fail fast on syntax, not mid-solve
        self.addresses = list(addresses)
        self.program_digest = program_digest
        self.policy = policy
        self.stats = stats
        self.log = log
        self.net_plan = net_plan
        self.heartbeat = heartbeat if heartbeat is not None else heartbeat_interval()
        self.timeout = timeout if timeout is not None else heartbeat_timeout()
        self.connect_timeout = connect_timeout
        #: shared secret for the mutual HMAC handshake (AUTH_KEY_ENV_VAR
        #: when not given); both directions of this protocol carry
        #: pickles, so keyless links are accepted for loopback only.
        self.auth_key = auth_key if auth_key is not None else load_auth_key()
        self._attach_payload = pickle.dumps(
            attach_args, protocol=pickle.HIGHEST_PROTOCOL
        )
        self._plan = plan
        self._plan_payload: Optional[bytes] = None
        self._queue: "queue.Queue[_SocketTask]" = queue.Queue()
        self._lock = threading.Lock()
        self._stopping = threading.Event()
        self._broken = False
        self._attempts: Dict[int, int] = {}
        #: (fixed_mask, attempt) → result body sha256, for idempotency
        #: checks; the digest (already computed and verified by the frame
        #: layer) establishes byte identity without retaining a second
        #: copy of every result body for the lifetime of the solve.
        self._seen: Dict[Tuple[int, int], str] = {}
        self._threads: List[threading.Thread] = []
        self.links: List[_WorkerLink] = []

        unreachable: List[str] = []
        for index, address in enumerate(self.addresses):
            link = _WorkerLink(index, address)
            try:
                self._open_link(link)
            except (OSError, FrameError, SocketTransportError) as exc:
                unreachable.append(f"{address} ({exc})")
                continue
            self.links.append(link)
        if not self.links:
            raise SocketTransportError(
                "no socket worker reachable: " + "; ".join(unreachable)
            )
        # Accounted only once at least one worker attached: a transport
        # that never carried a shard must not appear in the stats.
        if stats is not None:
            stats.note_transport("socket")
            stats.init_bytes += len(self._attach_payload)
        if unreachable and self.log is not None:
            self.log.record(
                "worker-unreachable",
                detail=f"{len(unreachable)} of {len(self.addresses)} worker(s) "
                "skipped at attach: " + "; ".join(unreachable),
            )
        for link in self.links:
            thread = threading.Thread(
                target=self._serve_link,
                args=(link,),
                name=f"shard-link-{link.address}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------

    def _backoff(self, attempt: int) -> float:
        if self.policy is None:
            return min(0.05 * (2.0 ** (attempt - 1)), 2.0)
        return self.policy.backoff(attempt + 1)

    def _max_retries(self) -> int:
        return 2 if self.policy is None else self.policy.max_retries

    def _open_link(self, link: _WorkerLink) -> None:
        """Connect and attach one worker, retrying with backoff.

        Raises on exhaustion; the caller decides whether that means
        "skip this worker" (construction) or "worker lost" (recovery).
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                if self.net_plan is not None and self.net_plan.refuses_connect(
                    link.index
                ):
                    raise ConnectionRefusedError(
                        "injected conn-refused (fault plan)"
                    )
                sock = socket.create_connection(
                    parse_address(link.address), timeout=self.connect_timeout
                )
                break
            except OSError as exc:
                if attempt > self._max_retries():
                    raise SocketTransportError(
                        f"worker {link.address} unreachable after {attempt} "
                        f"attempt(s): {exc}"
                    ) from exc
                if self.stats is not None:
                    self.stats.count_retry(link.address)
                time.sleep(self._backoff(attempt))
        try:
            self._attach(link, sock)
        except (OSError, FrameError) as exc:
            try:
                sock.close()
            except OSError:
                pass
            raise SocketTransportError(
                f"worker {link.address} failed the attach handshake: {exc}"
            ) from exc

    def _handshake(self, link: _WorkerLink, rfile, wfile) -> None:
        """The daemon's ``hello`` plus the mutual HMAC proof, if keyed.

        Runs before any payload crosses the link in either direction:
        results coming back are pickles, so the worker must prove it
        holds the shared key (``welcome`` over our counter-nonce) just
        as we prove ourselves to it.  Keyless operation is a loopback
        privilege — an unauthenticated non-loopback worker is refused,
        and a keyless worker is refused whenever we hold a key (no
        silent downgrade).
        """
        header, _body, nbytes = recv_frame(rfile)
        self._count_received(nbytes)
        if header.get("type") != "hello":
            raise FrameError(f"expected 'hello', got {header.get('type')!r}")
        if header.get("protocol") != WORKER_PROTOCOL:
            raise FrameError(
                f"protocol mismatch: worker {link.address} speaks "
                f"{header.get('protocol')!r}, this coordinator "
                f"{WORKER_PROTOCOL}"
            )
        mode = header.get("auth")
        if mode == "none":
            if self.auth_key is not None:
                raise AuthError(
                    f"worker {link.address} is unauthenticated but this "
                    "coordinator holds a key; refusing the keyless "
                    "downgrade"
                )
            if not is_loopback_host(parse_address(link.address)[0]):
                raise AuthError(
                    f"refusing keyless non-loopback worker {link.address}: "
                    "shard results are pickled payloads, so both sides "
                    f"must share {AUTH_KEY_ENV_VAR}"
                )
            return
        if mode != "hmac":
            raise AuthError(
                f"worker {link.address} offers unknown auth mode {mode!r}"
            )
        if self.auth_key is None:
            raise AuthError(
                f"worker {link.address} requires authentication; set "
                f"{AUTH_KEY_ENV_VAR} to its shared secret"
            )
        nonce = header.get("nonce")
        if not isinstance(nonce, str) or not nonce:
            raise AuthError(
                f"worker {link.address} sent no challenge nonce"
            )
        counter = new_nonce()
        self._count_sent(
            send_frame(
                wfile,
                "auth",
                {
                    "digest": auth_digest(self.auth_key, nonce),
                    "nonce": counter,
                },
            )
        )
        header, _body, nbytes = recv_frame(rfile)
        self._count_received(nbytes)
        if header.get("type") == "error":
            raise AuthError(
                f"worker {link.address} refused the handshake: "
                f"{header.get('message')}"
            )
        if header.get("type") != "welcome":
            raise FrameError(
                f"expected 'welcome', got {header.get('type')!r}"
            )
        if not check_auth_digest(self.auth_key, counter, header.get("digest")):
            raise AuthError(
                f"worker {link.address} failed the counter-challenge — "
                "wrong key or impostor; refusing to exchange payloads"
            )

    def _attach(self, link: _WorkerLink, sock: socket.socket) -> None:
        sock.settimeout(max(self.timeout, 30.0))
        rfile = sock.makefile("rb")
        wfile = sock.makefile("wb")
        self._handshake(link, rfile, wfile)
        self._count_sent(
            send_frame(
                wfile,
                "attach",
                {
                    "program": self.program_digest,
                    "protocol": WORKER_PROTOCOL,
                    "heartbeat": self.heartbeat,
                },
                self._attach_payload,
            )
        )
        header, _body, nbytes = recv_frame(rfile)
        self._count_received(nbytes)
        if header["type"] == "need-plan":
            payload = self._plan_bytes()
            self._count_sent(send_frame(wfile, "plan", {}, payload))
            if self.stats is not None:
                self.stats.plan_payload_bytes += len(payload)
            header, _body, nbytes = recv_frame(rfile)
            self._count_received(nbytes)
        if header["type"] == "error":
            raise FrameError(f"worker refused attach: {header.get('message')}")
        if header["type"] != "attached":
            raise FrameError(f"expected 'attached', got {header['type']!r}")
        if header.get("program") != self.program_digest:
            raise FrameError(
                f"worker attached to program {header.get('program')!r}; "
                f"this solve is {self.program_digest!r}"
            )
        link.sock = sock
        link.rfile = rfile
        link.wfile = wfile
        link.mode = header.get("mode", "")
        link.alive = True

    def _plan_bytes(self) -> bytes:
        if self._plan is None:
            raise FrameError(
                "worker asked for a plan payload but this solve has no "
                "batchable plan (resolver-path programs ship no plan)"
            )
        if self._plan_payload is None:
            from ..predicates.backends.batch import PhiPlan

            # A memo-free copy: the parent plan's per-backend handle memos
            # are process-local state and would only bloat the payload.
            bare = PhiPlan(
                space=self._plan.space,
                init_mask=self._plan.init_mask,
                statements=self._plan.statements,
                terms=self._plan.terms,
            )
            self._plan_payload = pickle.dumps(
                bare, protocol=pickle.HIGHEST_PROTOCOL
            )
        return self._plan_payload

    def _count_sent(self, nbytes: int) -> None:
        if self.stats is not None:
            self.stats.frames_sent += 1
            self.stats.net_bytes_sent += nbytes

    def _count_received(self, nbytes: int) -> None:
        if self.stats is not None:
            self.stats.frames_received += 1
            self.stats.net_bytes_received += nbytes

    # ------------------------------------------------------------------
    # the transport interface
    # ------------------------------------------------------------------

    def submit(self, fn, *args):
        """Queue one shard; ``fn`` is ignored (workers run their own sweep).

        The signature mirrors the executor protocol so the supervisor can
        treat every transport identically; what actually crosses the wire
        is the shard coordinates plus a fresh attempt number.
        """
        index, fixed_mask = args
        future: Future = Future()
        if self.stats is not None:
            self.stats.shards_dispatched += 1
            self.stats.bytes_dispatched += len(
                pickle.dumps(args, protocol=pickle.HIGHEST_PROTOCOL)
            )
        with self._lock:
            if self._broken or not any(l.alive for l in self.links):
                future.set_exception(
                    BrokenProcessPool("no live socket workers to dispatch to")
                )
                return future
            attempt = self._attempts.get(fixed_mask, 0) + 1
            self._attempts[fixed_mask] = attempt
            # The put must stay under the lock: _lose_link marks the
            # transport broken and then fails the backlog, so a task
            # enqueued after its liveness check but outside the lock
            # could land in a queue no thread will ever serve again.
            self._queue.put(_SocketTask(index, fixed_mask, attempt, future))
        return future

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        self._stopping.set()
        if cancel_futures:
            self._drain_queue_cancelling()
        for link in self.links:
            if link.alive and link.wfile is not None:
                try:
                    send_frame(link.wfile, "bye")
                except (OSError, FrameError):
                    pass
            link.close()
        if wait:
            for thread in self._threads:
                thread.join(timeout=5.0)

    def terminate(self) -> None:
        self._stopping.set()
        for link in self.links:
            link.close()
        self._drain_queue_cancelling()

    def _drain_queue_cancelling(self) -> None:
        while True:
            try:
                task = self._queue.get_nowait()
            except queue.Empty:
                return
            task.future.cancel()

    def sample_worker_rss(self, timeout: float = 10.0) -> int:
        """Max peak RSS across live workers via ``rss`` probe frames.

        Only safe while no shards are in flight (the solver calls it
        after the pool phase drains) — probe frames share each link's
        socket with shard traffic.
        """
        peak = 0
        for link in self.links:
            if not link.alive:
                continue
            try:
                link.sock.settimeout(timeout)
                self._count_sent(send_frame(link.wfile, "rss"))
                header, _body, nbytes = recv_frame(link.rfile)
                self._count_received(nbytes)
                if header.get("type") == "rss":
                    peak = max(peak, int(header.get("kb", 0)))
            except (OSError, FrameError):
                continue
        return peak

    # ------------------------------------------------------------------
    # per-link service loop
    # ------------------------------------------------------------------

    def _serve_link(self, link: _WorkerLink) -> None:
        while not self._stopping.is_set():
            try:
                task = self._queue.get(timeout=0.05)
            except queue.Empty:
                continue
            if task.future.cancelled():
                continue
            if not self._dispatch(link, task):
                return  # link is dead; survivors drain the queue

    def _dispatch(self, link: _WorkerLink, task: _SocketTask) -> bool:
        """Run one task on ``link``; returns False once the link is lost."""
        retries = 0
        cause = "unknown"
        while True:
            try:
                self._send_shard(link, task)
                result = self._await_result(link, task)
            except _LinkBroken as exc:
                cause = str(exc)
                link.close()
                retries += 1
                if self._stopping.is_set() or retries > self._max_retries():
                    break
                if self.stats is not None:
                    self.stats.count_retry(link.address)
                if self.log is not None:
                    self.log.record(
                        "link-retry",
                        shard_index=task.index,
                        attempt=retries,
                        detail=f"{link.address}: {cause}",
                    )
                time.sleep(self._backoff(retries))
                try:
                    self._open_link(link)
                except (OSError, FrameError, SocketTransportError) as reopen:
                    cause = f"{cause}; reconnect failed: {reopen}"
                    break
                # Re-dispatch under a fresh attempt number: the old session
                # may have computed (or half-sent) the old attempt's result,
                # and idempotency is keyed per attempt.
                with self._lock:
                    attempt = self._attempts.get(task.fixed_mask, 0) + 1
                    self._attempts[task.fixed_mask] = attempt
                task = _SocketTask(task.index, task.fixed_mask, attempt, task.future)
                continue
            if not task.future.cancelled():
                try:
                    task.future.set_result(result)
                except Exception:  # pragma: no cover - racing cancellation
                    pass
            return True
        self._lose_link(link, task, cause)
        return False

    def _send_shard(self, link: _WorkerLink, task: _SocketTask) -> None:
        try:
            self._count_sent(
                send_frame(
                    link.wfile,
                    "shard",
                    {
                        "index": task.index,
                        "fixed_mask": task.fixed_mask,
                        "attempt": task.attempt,
                    },
                )
            )
        except (OSError, FrameError) as exc:
            raise _LinkBroken(f"send failed: {exc}") from exc

    def _await_result(self, link: _WorkerLink, task: _SocketTask):
        """Read frames until this task's result arrives.

        Heartbeats reset the deadline implicitly (each successful read
        restarts the socket timeout); silence past the heartbeat timeout,
        a torn or corrupt frame, or a worker-side error all break the
        link.  Duplicate results are cross-checked byte-for-byte against
        the first copy and ignored.
        """
        link.sock.settimeout(self.timeout)
        while True:
            try:
                header, body, nbytes = recv_frame(link.rfile)
            except socket.timeout as exc:
                raise _LinkBroken(
                    f"no heartbeat within {self.timeout}s"
                ) from exc
            except (OSError, FrameError) as exc:
                raise _LinkBroken(str(exc)) from exc
            self._count_received(nbytes)
            kind = header.get("type")
            if kind == "heartbeat":
                continue
            if kind == "error":
                raise _LinkBroken(f"worker error: {header.get('message')}")
            if kind != "result":
                raise _LinkBroken(f"unexpected frame {kind!r} awaiting result")
            key = (int(header.get("fixed_mask", -1)), int(header.get("attempt", -1)))
            # The frame layer has already verified body against this
            # digest, so digest equality *is* byte equality — without
            # keeping a second copy of every result body around.
            digest = header.get("sha256") or hashlib.sha256(body).hexdigest()
            with self._lock:
                seen = self._seen.get(key)
                if seen is None:
                    self._seen[key] = digest
            if seen is not None:
                if seen != digest:
                    raise _LinkBroken(
                        f"worker re-sent shard {header.get('index')} attempt "
                        f"{key[1]} with different bytes — refusing the "
                        "non-idempotent duplicate"
                    )
                if self.stats is not None:
                    self.stats.duplicate_results += 1
                if self.log is not None:
                    self.log.record(
                        "duplicate-result",
                        shard_index=header.get("index"),
                        attempt=key[1],
                        detail=f"byte-identical duplicate from {link.address} "
                        "ignored",
                    )
            if key == (task.fixed_mask, task.attempt):
                try:
                    return pickle.loads(body)
                except Exception as exc:
                    raise _LinkBroken(f"undecodable result payload: {exc}") from exc
            # A result for some other attempt (e.g. an injected duplicate):
            # recorded above, not ours to return.

    def _lose_link(self, link: _WorkerLink, task: _SocketTask, cause: str) -> None:
        link.close()
        if self._stopping.is_set():
            # Mid-teardown the link is not "lost" — but the in-flight
            # future must still complete, or a caller that shuts the
            # transport down and then waits on its futures blocks
            # forever (only *queued* tasks pass through the cancelling
            # drain).
            if not task.future.cancel():
                try:
                    task.future.set_exception(
                        ShardLeaseRevoked(
                            task.index, task.fixed_mask, link.address,
                            f"transport shutdown: {cause}",
                        )
                    )
                except Exception:  # pragma: no cover - already completed
                    pass
            return
        with self._lock:
            survivors = any(l.alive for l in self.links)
            if self.stats is not None:
                self.stats.workers_lost += 1
            if not survivors:
                self._broken = True
        if task.future.cancelled():
            pass
        elif survivors:
            try:
                task.future.set_exception(
                    ShardLeaseRevoked(
                        task.index, task.fixed_mask, link.address, cause
                    )
                )
            except Exception:  # pragma: no cover - racing cancellation
                pass
        else:
            error = BrokenProcessPool(
                f"all {len(self.links)} socket worker(s) lost "
                f"(last: {link.address}: {cause})"
            )
            try:
                task.future.set_exception(error)
            except Exception:  # pragma: no cover - racing cancellation
                pass
            # Nobody is left to drain the queue; fail the backlog so the
            # supervisor sees a broken pool instead of a hang.
            while True:
                try:
                    queued = self._queue.get_nowait()
                except queue.Empty:
                    break
                if not queued.future.cancelled():
                    try:
                        queued.future.set_exception(error)
                    except Exception:  # pragma: no cover
                        pass
