"""Run supervision: livelock, starvation, and budget diagnosis.

A randomized run that misses its goal is ambiguous: was the budget too
small (slow progress), or can *no* extension of this run ever reach the
goal (livelock)?  The watchdog separates the two with evidence rather
than thresholds:

* **Deterministic lasso** — when the scheduler is deterministic (it
  exposes a :meth:`~repro.sim.schedulers.Scheduler.state_key`), the pair
  (scheduler state, program state) repeating proves the run is exactly
  periodic from the first visit on.  The goal was tested at every state
  of the cycle, so the run *provably never* reaches it: livelock, with
  the revisited cycle as the certificate.
* **Closed trap** — scheduler-independent: if every state visited in the
  recent window has *all* of its statement successors inside the visited
  set and the goal holds nowhere in it, the set is an invariant trap
  disjoint from the goal.  No scheduler, fair or not, escapes it —
  livelock regardless of future choices (a fixed point of all statements
  is the one-state special case).
* **Starvation** — a statement continuously enabled for a whole window
  without once firing.  Not terminal (the run may still finish), but it
  is exactly the symptom the demonic starvation scheduler induces and
  the signal a fairness bug in a custom scheduler would show.

Everything lands in a structured :class:`RunDiagnosis` attached to the
:class:`~repro.sim.executor.RunResult`, alongside the fairness monitor's
certificate.  :func:`supervise_run` adds *step-budget escalation*: run
with a small budget, and only escalate when the diagnosis says "slow
progress" rather than "provably stuck" — the soak harness's way of
spending steps only where they can still change the verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Sequence, Tuple, Union

from ..predicates import Predicate
from ..statespace import State
from .schedulers import FairnessMonitor, FairnessReport

#: Diagnosis verdicts, from best to worst.
REACHED = "reached"
SLOW_PROGRESS = "budget-exhausted"
LIVELOCK = "livelock"
FIXED_POINT = "fixed-point"


@dataclass(frozen=True)
class RunDiagnosis:
    """Structured post-mortem of one (possibly escalated) execution.

    ``verdict`` is one of ``reached``, ``budget-exhausted``, ``livelock``
    or ``fixed-point``.  For livelocks, ``lasso`` holds the revisited
    cycle (deterministic) or the closed trap's states, and ``lasso_kind``
    says which certificate backs it (``deterministic-cycle`` /
    ``closed-trap``).  ``starved`` lists statements that sat enabled for a
    full starvation window without firing; ``fairness`` is the schedule's
    sliding-window fairness certificate.
    """

    verdict: str
    steps: int
    budget_escalations: Tuple[int, ...] = ()
    lasso: Tuple[int, ...] = ()
    lasso_kind: str = ""
    starved: Tuple[str, ...] = ()
    fairness: Optional[FairnessReport] = None

    @property
    def provably_stuck(self) -> bool:
        """Whether more budget provably cannot change the outcome."""
        return self.verdict in (LIVELOCK, FIXED_POINT)


class Watchdog:
    """Per-run observer feeding livelock/starvation/fairness detection.

    One watchdog instance follows one logical execution — possibly across
    several escalated budget slices of the same executor — and keeps its
    revisit and fairness history across slices.  Pass a fresh instance per
    logical run.
    """

    def __init__(
        self,
        novelty_window: int = 256,
        starvation_window: int = 256,
        trap_check_interval: int = 64,
        fairness_window: Optional[int] = None,
    ):
        self.novelty_window = novelty_window
        self.starvation_window = starvation_window
        self.trap_check_interval = trap_check_interval
        self.monitor = FairnessMonitor(window=fairness_window)
        self._arrays: Optional[List[Sequence[int]]] = None
        self._names: List[str] = []
        self._goal: Optional[Callable[[int], bool]] = None
        self._seen_pairs: dict = {}
        self._trajectory: List[int] = []
        self._recent: List[int] = []
        self._enabled_streak: List[int] = []
        self._starved: set = set()
        self._verdict: Optional[str] = None
        self._lasso: Tuple[int, ...] = ()
        self._lasso_kind: str = ""
        self._step = 0  # global step counter across budget slices

    # ------------------------------------------------------------------
    # executor-facing hooks
    # ------------------------------------------------------------------

    def attach(self, executor, goal: Callable[[int], bool]) -> None:
        """Bind program structure (idempotent across budget slices)."""
        if self._arrays is None:
            self._arrays = list(executor._arrays)
            self._guards = list(executor._guards)
            self._names = list(executor._names)
            self._enabled_streak = [0] * len(self._names)
            self.monitor.begin(self._names)
        self._goal = goal

    def observe(
        self,
        state_before: int,
        chosen: int,
        fired: bool,
        state_after: int,
        sched_key,
    ) -> Optional[str]:
        """Digest one step; returns a terminal verdict or ``None``.

        Called after the chosen statement was applied.  ``state_before``
        was already goal-tested (false) by the executor.
        """
        step = self._step
        self._step = step + 1
        self.monitor.note(step, chosen)

        # Deterministic lasso: (scheduler state, program state) revisited.
        if sched_key is not None:
            pair = (sched_key, state_after)
            first = self._seen_pairs.get(pair)
            if first is not None:
                cycle = self._trajectory[first:]
                self._verdict = LIVELOCK
                self._lasso = tuple(dict.fromkeys(cycle + [state_after]))
                self._lasso_kind = "deterministic-cycle"
                return self._verdict
            self._seen_pairs[pair] = len(self._trajectory)
        self._trajectory.append(state_after)

        # Starvation: enabled all window long, never fired.
        for i, guard in enumerate(self._guards):
            if guard.holds_at(state_after):
                if fired and i == chosen:
                    self._enabled_streak[i] = 0
                else:
                    self._enabled_streak[i] += 1
                    if self._enabled_streak[i] >= self.starvation_window:
                        self._starved.add(self._names[i])
            else:
                self._enabled_streak[i] = 0

        # Closed trap: the recent window is statement-closed and goal-free.
        self._recent.append(state_after)
        if len(self._recent) > self.novelty_window:
            del self._recent[: len(self._recent) - self.novelty_window]
        if (
            step > 0
            and step % self.trap_check_interval == 0
            and len(self._recent) >= min(self.novelty_window, 2)
        ):
            trap = self._closed_trap()
            if trap is not None:
                self._verdict = FIXED_POINT if len(trap) == 1 else LIVELOCK
                self._lasso = trap
                self._lasso_kind = "closed-trap"
                return self._verdict
        return None

    def _closed_trap(self) -> Optional[Tuple[int, ...]]:
        """The recent states, iff they form a goal-free invariant set."""
        states = set(self._recent)
        goal = self._goal
        assert self._arrays is not None and goal is not None
        for s in states:
            if goal(s):
                return None
            for array in self._arrays:
                if array[s] not in states:
                    return None
        return tuple(sorted(states))

    # ------------------------------------------------------------------
    # diagnosis
    # ------------------------------------------------------------------

    def snapshot(
        self,
        reached: bool,
        steps: int,
        budget_escalations: Tuple[int, ...] = (),
    ) -> RunDiagnosis:
        """The diagnosis for the execution observed so far (pure)."""
        if reached:
            verdict = REACHED
        elif self._verdict is not None:
            verdict = self._verdict
        else:
            verdict = SLOW_PROGRESS
        return RunDiagnosis(
            verdict=verdict,
            steps=steps,
            budget_escalations=budget_escalations,
            lasso=self._lasso,
            lasso_kind=self._lasso_kind,
            starved=tuple(sorted(self._starved)),
            fairness=self.monitor.report(),
        )


def supervise_run(
    executor,
    until: Union[Predicate, Callable[[State], bool]],
    budgets: Sequence[int] = (1_000, 4_000, 16_000),
    watchdog: Optional[Watchdog] = None,
    start: Optional[State] = None,
):
    """Run under escalating step budgets with watchdog supervision.

    Runs ``executor`` toward ``until`` with the first budget; if the goal
    is missed and the watchdog has *not* proven the run stuck, continues
    from the final state with the next budget, and so on.  A proven
    livelock (or fixed point) stops the escalation immediately — extra
    steps cannot change that verdict.

    Returns a single :class:`~repro.sim.executor.RunResult` whose
    ``steps``/``fired``/``attempted`` aggregate all slices and whose
    ``diagnosis`` records the budgets actually spent.
    """
    if not budgets:
        raise ValueError("supervise_run needs at least one budget")
    wd = watchdog if watchdog is not None else Watchdog()
    spent: List[int] = []
    result = None
    state = start
    total_steps = 0
    fired: Optional[dict] = None
    attempted: Optional[dict] = None
    for budget in budgets:
        result = executor.run(until, start=state, max_steps=budget, watchdog=wd)
        spent.append(budget)
        total_steps += result.steps
        if fired is None:
            fired, attempted = result.fired, result.attempted
        else:
            fired.update(result.fired)
            attempted.update(result.attempted)
        if result.reached:
            break
        if result.diagnosis is not None and result.diagnosis.provably_stuck:
            break
        state = result.final_state
    assert result is not None
    return replace(
        result,
        steps=total_steps,
        fired=fired,
        attempted=attempted,
        diagnosis=wd.snapshot(result.reached, total_steps, tuple(spent)),
    )
