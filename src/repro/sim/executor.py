"""Scheduled execution of UNITY programs (random, fair, or adversarial).

The UNITY execution model picks statements nondeterministically with the
fairness constraint that every statement is attempted infinitely often.  A
uniformly (or weighted-) random scheduler realizes this with probability
one, which is what the simulation benches use: model checking establishes
the *possibility* results exactly; simulation measures *quantities* (how
many messages a protocol sends at a given loss rate).

Statement weights are the loss-rate knob: giving the channel's ``lose_*``
statements weight ``r/(1-r)`` relative to each protocol statement makes a
transmitted message face roughly probability ``r`` of being dropped before
the next receive.

Scheduling is pluggable (:mod:`repro.sim.schedulers`): beyond the default
weighted-random scheduler the executor accepts round-robin and *demonic*
strategies that starve statements or greedily fire channel attacks —
probing what the paper's liveness results must survive, not just sampling
benign behavior.  A :class:`~repro.sim.watchdog.Watchdog` can ride along
to certify fairness and to distinguish livelock from slow progress.
"""

from __future__ import annotations

import hashlib
import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

from ..predicates import Predicate
from ..predicates.backends import backend_for_size
from ..statespace import State
from ..unity import Program
from .schedulers import Scheduler, WeightedRandomScheduler, scheduler_from_spec

if False:  # typing-only import, avoids a cycle at runtime
    from .watchdog import RunDiagnosis, Watchdog


def weights_fingerprint(
    names: Sequence[str], weights: Sequence[float]
) -> str:
    """A stable sha256 digest of the effective per-statement weight table."""
    text = ";".join(f"{name}={weight!r}" for name, weight in zip(names, weights))
    return "sha256:" + hashlib.sha256(text.encode("utf-8")).hexdigest()


def goal_fingerprint(until: Union[Predicate, Callable]) -> str:
    """A stable identifier for a run's goal, recorded for replay safety.

    Predicates fingerprint by content (sha256 of the canonical bit mask);
    callables can only be identified by name — good enough to catch the
    realistic mistake of replaying against a different goal, which
    otherwise silently produces decision-identical but meaningless runs.
    """
    if isinstance(until, Predicate):
        digest = hashlib.sha256(until.fingerprint()).hexdigest()
        return f"predicate:sha256:{digest}"
    name = (
        getattr(until, "__qualname__", None)
        or getattr(until, "__name__", None)
        or type(until).__name__
    )
    return f"callable:{name}"


@dataclass
class RunResult:
    """Outcome of one scheduled execution.

    Carries everything needed to replay itself: the scheduler ``seed``, the
    effective ``weights`` table (and its ``weights_fingerprint``, for cheap
    comparison across result sets), the ``scheduler`` spec string and its
    internal ``scheduler_state``, the ``start_index``, the exact RNG state
    at the first scheduling decision, the step budget, and a
    ``goal_fingerprint`` guarding against replay under a different goal.
    Given the same program, :func:`replay_run` reproduces the execution
    exactly.
    """

    reached: bool
    steps: int
    final_state: State
    #: per-statement count of *effective* firings (guard held when chosen)
    fired: Counter = field(default_factory=Counter)
    #: per-statement count of attempts (chosen by the scheduler at all)
    attempted: Counter = field(default_factory=Counter)
    #: the scheduler seed the executor was built with
    seed: Optional[int] = None
    #: sha256 of the effective per-statement weight table
    weights_fingerprint: Optional[str] = None
    #: the effective weight table itself ({statement name: weight})
    weights: Optional[Dict[str, float]] = field(default=None, repr=False)
    #: state index the run started from
    start_index: Optional[int] = None
    #: RNG state at the run's first scheduling decision
    rng_state: Optional[Any] = field(default=None, repr=False, compare=False)
    #: the run's step budget
    max_steps: Optional[int] = None
    #: spec string of the scheduler that drove the run
    scheduler: str = "weighted-random"
    #: deterministic scheduler's internal state at the run's first decision
    scheduler_state: Optional[Any] = field(default=None, repr=False, compare=False)
    #: fingerprint of the goal the run executed toward
    goal_fingerprint: Optional[str] = None
    #: watchdog post-mortem, when the run was supervised
    diagnosis: Optional["RunDiagnosis"] = field(
        default=None, repr=False, compare=False
    )

    def messages(self, transmit_statements: Sequence[str]) -> int:
        """Total effective firings of the named transmit statements."""
        return sum(self.fired[name] for name in transmit_statements)


class Executor:
    """A pluggable-strategy scheduler over a (standard) program's statements.

    ``scheduler`` accepts a :class:`~repro.sim.schedulers.Scheduler`
    instance or a spec string (``"round-robin"``, ``"greedy-loss"``, …);
    the default is the weighted-random fair scheduler, byte-compatible
    with the executor's historical behavior.
    """

    def __init__(
        self,
        program: Program,
        weights: Optional[Mapping[str, float]] = None,
        seed: int = 0,
        scheduler: Union[Scheduler, str, None] = None,
    ):
        if program.is_knowledge_based():
            raise ValueError(
                f"program {program.name!r} is knowledge-based; resolve it before executing"
            )
        self.program = program
        self.seed = seed
        self.rng = random.Random(seed)
        self._names: List[str] = [s.name for s in program.statements]
        self._weights: List[float] = [
            float((weights or {}).get(name, 1.0)) for name in self._names
        ]
        self.weights_fingerprint = weights_fingerprint(
            self._names, self._weights
        )
        if min(self._weights) < 0:
            raise ValueError("statement weights must be non-negative")
        if max(self._weights) == 0:
            raise ValueError("at least one statement needs positive weight")
        self._arrays = [program.successor_array(s) for s in program.statements]
        self._guards: List[Predicate] = [
            program.enabled(s) for s in program.statements
        ]
        # Prime backend handles so the per-step guard/goal tests hit the
        # backend's O(1) bit probe instead of shifting a big int each step.
        self._backend = backend_for_size(program.space.size)
        for guard in self._guards:
            guard.handle(self._backend)
        if scheduler is None:
            scheduler = WeightedRandomScheduler()
        elif isinstance(scheduler, str):
            scheduler = scheduler_from_spec(scheduler)
        self.scheduler: Scheduler = scheduler
        self.scheduler.bind(self._names, self._weights, self._guards, self.rng)
        #: init's state indices, materialized once (the soak harness calls
        #: initial_state thousands of times per sweep)
        self._init_indices: Optional[List[int]] = None

    def initial_state(self) -> State:
        """A uniformly random initial state."""
        if self._init_indices is None:
            self._init_indices = list(self.program.init.indices())
        if not self._init_indices:
            raise ValueError("program has no initial states")
        return State(self.program.space, self.rng.choice(self._init_indices))

    def run(
        self,
        until: Union[Predicate, Callable[[State], bool]],
        start: Optional[State] = None,
        max_steps: int = 100_000,
        watchdog: Optional["Watchdog"] = None,
    ) -> RunResult:
        """Execute until the goal holds or ``max_steps`` statements fired.

        ``until`` may be a predicate or any state → bool function.  With a
        ``watchdog``, each step is fed to livelock/starvation/fairness
        tracking and the run terminates early on a proven livelock, with
        the diagnosis attached to the result.
        """
        fingerprint = goal_fingerprint(until)
        if isinstance(until, Predicate):
            until.handle(self._backend)
            goal = until.holds_at
            current = start.index if start is not None else self.initial_state().index
            return self._run_indexed(goal, current, max_steps, fingerprint, watchdog)
        current_state = start if start is not None else self.initial_state()
        return self._run_indexed(
            lambda i: until(State(self.program.space, i)),
            current_state.index,
            max_steps,
            fingerprint,
            watchdog,
        )

    def _run_indexed(
        self,
        goal,
        current: int,
        max_steps: int,
        fingerprint: Optional[str] = None,
        watchdog: Optional["Watchdog"] = None,
    ) -> RunResult:
        fired: Counter = Counter()
        attempted: Counter = Counter()
        names = self._names
        weights = self._weights
        arrays = self._arrays
        guards = self._guards
        scheduler = self.scheduler
        start_index = current
        # getstate(), not just the seed: a reused executor's RNG has already
        # advanced (initial_state draws, earlier runs), and a replayable
        # result must capture the stream exactly where this run picked it up.
        rng_state = self.rng.getstate()
        scheduler_state = scheduler.get_state()
        if watchdog is not None:
            watchdog.attach(self, goal)

        def result(reached: bool, steps: int) -> RunResult:
            return RunResult(
                reached=reached,
                steps=steps,
                final_state=State(self.program.space, current),
                fired=fired,
                attempted=attempted,
                seed=self.seed,
                weights_fingerprint=self.weights_fingerprint,
                weights=dict(zip(names, weights)),
                start_index=start_index,
                rng_state=rng_state,
                max_steps=max_steps,
                scheduler=scheduler.spec,
                scheduler_state=scheduler_state,
                goal_fingerprint=fingerprint,
                diagnosis=(
                    watchdog.snapshot(reached, steps)
                    if watchdog is not None
                    else None
                ),
            )

        for step in range(max_steps):
            if goal(current):
                return result(True, step)
            k = scheduler.choose(step, current)
            attempted[names[k]] += 1
            before = current
            enabled = guards[k].holds_at(current)
            if enabled:
                fired[names[k]] += 1
                current = arrays[k][current]
            if watchdog is not None:
                verdict = watchdog.observe(
                    before, k, enabled, current, scheduler.state_key()
                )
                if verdict is not None:
                    return result(goal(current), step + 1)
        return result(goal(current), max_steps)


def replay_run(
    program: Program,
    result: RunResult,
    until: Union[Predicate, Callable[[State], bool]],
) -> RunResult:
    """Re-execute the run a :class:`RunResult` describes, exactly.

    Rebuilds the executor from the result's recorded seed, weight table and
    scheduler spec, restores the RNG and scheduler to the states they held
    at the run's first scheduling decision, and re-runs from the recorded
    start state with the same step budget.  The replayed result matches
    the original decision-for-decision (same ``fired``/``attempted``
    counters, same final state).

    The goal is verified against the recorded fingerprint: replaying
    against a *different* goal would silently reproduce the decisions but
    change what ``reached`` means, so a mismatch raises instead.
    """
    if result.seed is None or result.rng_state is None:
        raise ValueError("RunResult predates replay support; re-run it first")
    if result.goal_fingerprint is not None:
        offered = goal_fingerprint(until)
        if offered != result.goal_fingerprint:
            raise ValueError(
                f"goal mismatch: the run was recorded against "
                f"{result.goal_fingerprint} but replay was asked to use "
                f"{offered}; pass the original goal (or re-run instead of "
                "replaying)"
            )
    executor = Executor(
        program,
        weights=result.weights,
        seed=result.seed,
        scheduler=result.scheduler,
    )
    if executor.weights_fingerprint != result.weights_fingerprint:
        raise ValueError(
            "program's statement list no longer matches the recorded "
            "weight table; the result is not replayable against it"
        )
    executor.rng.setstate(result.rng_state)
    executor.scheduler.set_state(result.scheduler_state)
    return executor.run(
        until,
        start=State(program.space, result.start_index),
        max_steps=result.max_steps,
    )


def average_messages(
    program: Program,
    goal: Predicate,
    transmit_statements: Sequence[str],
    runs: int = 20,
    seed: int = 0,
    weights: Optional[Mapping[str, float]] = None,
    max_steps: int = 100_000,
) -> Dict[str, float]:
    """Mean message count and steps to reach ``goal`` over several seeded runs.

    Returns ``{"messages": …, "steps": …, "completed": fraction}``.  The
    means are taken over the *completed* runs only; when no run completes
    they are ``nan`` — a mean of zero messages would dress total failure
    up as a perfect protocol.
    """
    totals = {"messages": 0.0, "steps": 0.0, "completed": 0.0}
    for r in range(runs):
        executor = Executor(program, weights=weights, seed=seed + r)
        result = executor.run(goal, max_steps=max_steps)
        if result.reached:
            totals["completed"] += 1
            totals["messages"] += result.messages(transmit_statements)
            totals["steps"] += result.steps
    done = totals["completed"]
    if done == 0:
        return {
            "messages": float("nan"),
            "steps": float("nan"),
            "completed": 0.0,
        }
    return {
        "messages": totals["messages"] / done,
        "steps": totals["steps"] / done,
        "completed": totals["completed"] / runs,
    }
