"""Randomized fair execution of UNITY programs.

The UNITY execution model picks statements nondeterministically with the
fairness constraint that every statement is attempted infinitely often.  A
uniformly (or weighted-) random scheduler realizes this with probability
one, which is what the simulation benches use: model checking establishes
the *possibility* results exactly; simulation measures *quantities* (how
many messages a protocol sends at a given loss rate).

Statement weights are the loss-rate knob: giving the channel's ``lose_*``
statements weight ``r/(1-r)`` relative to each protocol statement makes a
transmitted message face roughly probability ``r`` of being dropped before
the next receive.
"""

from __future__ import annotations

import hashlib
import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

from ..predicates import Predicate
from ..predicates.backends import backend_for_size
from ..statespace import State
from ..unity import Program


def weights_fingerprint(
    names: Sequence[str], weights: Sequence[float]
) -> str:
    """A stable sha256 digest of the effective per-statement weight table."""
    text = ";".join(f"{name}={weight!r}" for name, weight in zip(names, weights))
    return "sha256:" + hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class RunResult:
    """Outcome of one randomized execution.

    Carries everything needed to replay itself: the scheduler ``seed``, the
    effective ``weights`` table (and its ``weights_fingerprint``, for cheap
    comparison across result sets), the ``start_index``, the exact RNG state
    at the first scheduling decision, and the step budget.  Given the same
    program, :func:`replay_run` reproduces the execution exactly.
    """

    reached: bool
    steps: int
    final_state: State
    #: per-statement count of *effective* firings (guard held when chosen)
    fired: Counter = field(default_factory=Counter)
    #: per-statement count of attempts (chosen by the scheduler at all)
    attempted: Counter = field(default_factory=Counter)
    #: the scheduler seed the executor was built with
    seed: Optional[int] = None
    #: sha256 of the effective per-statement weight table
    weights_fingerprint: Optional[str] = None
    #: the effective weight table itself ({statement name: weight})
    weights: Optional[Dict[str, float]] = field(default=None, repr=False)
    #: state index the run started from
    start_index: Optional[int] = None
    #: RNG state at the run's first scheduling decision
    rng_state: Optional[Any] = field(default=None, repr=False, compare=False)
    #: the run's step budget
    max_steps: Optional[int] = None

    def messages(self, transmit_statements: Sequence[str]) -> int:
        """Total effective firings of the named transmit statements."""
        return sum(self.fired[name] for name in transmit_statements)


class Executor:
    """A weighted random scheduler over a (standard) program's statements."""

    def __init__(
        self,
        program: Program,
        weights: Optional[Mapping[str, float]] = None,
        seed: int = 0,
    ):
        if program.is_knowledge_based():
            raise ValueError(
                f"program {program.name!r} is knowledge-based; resolve it before executing"
            )
        self.program = program
        self.seed = seed
        self.rng = random.Random(seed)
        self._names: List[str] = [s.name for s in program.statements]
        self._weights: List[float] = [
            float((weights or {}).get(name, 1.0)) for name in self._names
        ]
        self.weights_fingerprint = weights_fingerprint(
            self._names, self._weights
        )
        if min(self._weights) < 0:
            raise ValueError("statement weights must be non-negative")
        if max(self._weights) == 0:
            raise ValueError("at least one statement needs positive weight")
        self._arrays = [program.successor_array(s) for s in program.statements]
        self._guards: List[Predicate] = [
            program.enabled(s) for s in program.statements
        ]
        # Prime backend handles so the per-step guard/goal tests hit the
        # backend's O(1) bit probe instead of shifting a big int each step.
        self._backend = backend_for_size(program.space.size)
        for guard in self._guards:
            guard.handle(self._backend)

    def initial_state(self) -> State:
        """A uniformly random initial state."""
        choices = list(self.program.init.indices())
        if not choices:
            raise ValueError("program has no initial states")
        return State(self.program.space, self.rng.choice(choices))

    def run(
        self,
        until: Union[Predicate, Callable[[State], bool]],
        start: Optional[State] = None,
        max_steps: int = 100_000,
    ) -> RunResult:
        """Execute until the goal holds or ``max_steps`` statements fired.

        ``until`` may be a predicate or any state → bool function.
        """
        if isinstance(until, Predicate):
            until.handle(self._backend)
            goal = until.holds_at
            current = start.index if start is not None else self.initial_state().index
            return self._run_indexed(goal, current, max_steps)
        current_state = start if start is not None else self.initial_state()
        return self._run_indexed(
            lambda i: until(State(self.program.space, i)),
            current_state.index,
            max_steps,
        )

    def _run_indexed(self, goal, current: int, max_steps: int) -> RunResult:
        fired: Counter = Counter()
        attempted: Counter = Counter()
        names = self._names
        weights = self._weights
        arrays = self._arrays
        guards = self._guards
        rng = self.rng
        start_index = current
        # getstate(), not just the seed: a reused executor's RNG has already
        # advanced (initial_state draws, earlier runs), and a replayable
        # result must capture the stream exactly where this run picked it up.
        rng_state = rng.getstate()

        def result(reached: bool, steps: int) -> RunResult:
            return RunResult(
                reached=reached,
                steps=steps,
                final_state=State(self.program.space, current),
                fired=fired,
                attempted=attempted,
                seed=self.seed,
                weights_fingerprint=self.weights_fingerprint,
                weights=dict(zip(names, weights)),
                start_index=start_index,
                rng_state=rng_state,
                max_steps=max_steps,
            )

        for step in range(max_steps):
            if goal(current):
                return result(True, step)
            k = rng.choices(range(len(names)), weights=weights)[0]
            attempted[names[k]] += 1
            if guards[k].holds_at(current):
                fired[names[k]] += 1
                current = arrays[k][current]
        return result(goal(current), max_steps)


def replay_run(
    program: Program,
    result: RunResult,
    until: Union[Predicate, Callable[[State], bool]],
) -> RunResult:
    """Re-execute the run a :class:`RunResult` describes, exactly.

    Rebuilds the executor from the result's recorded seed and weight table,
    restores the RNG to the state it held at the run's first scheduling
    decision, and re-runs from the recorded start state with the same step
    budget.  The replayed result matches the original decision-for-decision
    (same ``fired``/``attempted`` counters, same final state).
    """
    if result.seed is None or result.rng_state is None:
        raise ValueError("RunResult predates replay support; re-run it first")
    executor = Executor(program, weights=result.weights, seed=result.seed)
    if executor.weights_fingerprint != result.weights_fingerprint:
        raise ValueError(
            "program's statement list no longer matches the recorded "
            "weight table; the result is not replayable against it"
        )
    executor.rng.setstate(result.rng_state)
    return executor.run(
        until,
        start=State(program.space, result.start_index),
        max_steps=result.max_steps,
    )


def average_messages(
    program: Program,
    goal: Predicate,
    transmit_statements: Sequence[str],
    runs: int = 20,
    seed: int = 0,
    weights: Optional[Mapping[str, float]] = None,
    max_steps: int = 100_000,
) -> Dict[str, float]:
    """Mean message count and steps to reach ``goal`` over several seeded runs.

    Returns ``{"messages": …, "steps": …, "completed": fraction}``.
    """
    totals = {"messages": 0.0, "steps": 0.0, "completed": 0.0}
    for r in range(runs):
        executor = Executor(program, weights=weights, seed=seed + r)
        result = executor.run(goal, max_steps=max_steps)
        if result.reached:
            totals["completed"] += 1
            totals["messages"] += result.messages(transmit_statements)
            totals["steps"] += result.steps
    done = max(totals["completed"], 1.0)
    return {
        "messages": totals["messages"] / done,
        "steps": totals["steps"] / done,
        "completed": totals["completed"] / runs,
    }
