"""Seeded, resumable soak sweeps over the adversarial execution matrix.

The soak harness is where the runtime's attack surface gets exercised
systematically: every cell of a {protocol × channel × scheduler × budget ×
crash plan} matrix is executed under watchdog supervision, the observed
verdict is classified (``delivered`` / ``unsafe`` / ``livelock`` /
``undecided``), and — the part that makes a soak more than a fuzzer —
every verdict is **cross-checked against model-checked ground truth**:

* an observed safety violation is only consistent when the model checker
  refutes eq. (34) on that (protocol, channel, crash) configuration;
* a *proven* livelock (deterministic lasso or closed trap, see
  :mod:`repro.sim.watchdog`) is only consistent when the fair leads-to
  checker refutes eq. (35): both certificates quantify over fair
  schedules, so simulation and model checking must agree;
* every non-demonic schedule must post-hoc certify as fair
  (:class:`~repro.sim.schedulers.FairnessMonitor`), otherwise the
  executor itself — not the protocol — is broken.

Any disagreement is an *inconsistency*: a bug in the executor, the
watchdog, the channel models, or the model checker.  A clean soak is
therefore a differential test of the whole stack against itself, with the
paper's E13 narrative as its centerpiece: the greedy-loss adversary must
refute liveness on the unrestricted ``LOSSY`` channel and must fail to on
``bounded_loss`` — and crash cells must show knowledge lost at the crash
being re-established by delivery (eqs. 23/24).

Determinism and resumability reuse the robustness layer's journal
(:class:`~repro.robustness.checkpoint.ShardJournal`, PR 4): each finished
cell is appended to a sha256-chained journal keyed by the exact matrix, so
the same config and seed produce byte-identical journals, and a soak
killed mid-sweep (even via the fault plan's ``kill@N``) resumes without
re-running finished cells — ending with the same bytes an uninterrupted
run writes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .executor import Executor
from .schedulers import scheduler_from_spec
from .watchdog import Watchdog, supervise_run

#: Observed cell verdicts.
DELIVERED = "delivered"
UNSAFE = "unsafe"
LIVELOCK_VERDICT = "livelock"
UNDECIDED = "undecided"
UNSOLVED = "kbp-unsolved"


# ----------------------------------------------------------------------
# matrix configuration
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SoakConfig:
    """The soak matrix: every combination of the listed axes is one cell.

    ``channels``/``schedulers`` use the canonical spec strings of
    :func:`repro.seqtrans.channel_from_spec` and
    :func:`repro.sim.schedulers.scheduler_from_spec`; ``crashes`` entries
    are ``"none"`` or ``"+"``-joined process names (``"receiver"``,
    ``"sender"``, ``"receiver+sender"``).  ``seeds`` multiplies the matrix
    by per-cell RNG seeds (relevant to randomized schedulers only, but
    kept uniform so cell keys stay scheduler-agnostic).
    """

    length: int = 1
    alphabet: Tuple[str, ...] = ("a", "b")
    protocols: Tuple[str, ...] = ("standard",)
    channels: Tuple[str, ...] = ("bounded_loss:1", "lossy")
    schedulers: Tuple[str, ...] = ("weighted-random", "greedy-loss")
    crashes: Tuple[str, ...] = ("none",)
    budgets: Tuple[int, ...] = (2_000,)
    seeds: Tuple[int, ...] = (0,)

    def describe(self) -> Dict[str, Any]:
        """Canonical JSON shape of the matrix (pins the journal header)."""
        return {
            "length": self.length,
            "alphabet": list(self.alphabet),
            "protocols": list(self.protocols),
            "channels": list(self.channels),
            "schedulers": list(self.schedulers),
            "crashes": list(self.crashes),
            "budgets": list(self.budgets),
            "seeds": list(self.seeds),
        }

    def digest(self) -> str:
        from ..certificates.canonical import canonical_dumps

        text = canonical_dumps(self.describe())
        return "sha256:" + hashlib.sha256(text.encode("ascii")).hexdigest()


@dataclass(frozen=True)
class SoakCell:
    """One coordinate of the matrix."""

    index: int
    protocol: str
    channel: str
    scheduler: str
    crash: str
    budget: int
    seed: int

    @property
    def key(self) -> str:
        return (
            f"{self.protocol}|{self.channel}|{self.scheduler}"
            f"|{self.crash}|b{self.budget}|s{self.seed}"
        )

    @property
    def config_key(self) -> Tuple[str, str, str]:
        """The (protocol, channel, crash) triple sharing one ground truth."""
        return (self.protocol, self.channel, self.crash)


def enumerate_cells(config: SoakConfig) -> List[SoakCell]:
    """The matrix in a fixed, documented order (protocol-major)."""
    cells: List[SoakCell] = []
    for protocol in config.protocols:
        for channel in config.channels:
            for crash in config.crashes:
                for scheduler in config.schedulers:
                    for budget in config.budgets:
                        for seed in config.seeds:
                            cells.append(
                                SoakCell(
                                    index=len(cells),
                                    protocol=protocol,
                                    channel=channel,
                                    scheduler=scheduler,
                                    crash=crash,
                                    budget=budget,
                                    seed=seed,
                                )
                            )
    return cells


def _cell_seed(config_seed: int, cell: SoakCell) -> int:
    """Deterministic per-cell executor seed, stable across resumes."""
    text = f"{config_seed}:{cell.key}"
    return int.from_bytes(
        hashlib.sha256(text.encode("ascii")).digest()[:4], "big"
    )


# ----------------------------------------------------------------------
# ground truth (model checked once per (protocol, channel, crash))
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SoakGroundTruth:
    """Model-checked expectations for one program configuration.

    ``knowledge_reestablished`` is only computed for crash configurations:
    it asserts that post-crash delivered states exist in the strongest
    invariant and that at every one of them the Receiver again knows
    ``x_0`` — the executable reading of eqs. (23)/(24): the crash erased
    the knowledge, the protocol re-derived it.
    """

    safety_holds: bool
    liveness_holds: Tuple[bool, ...]
    solved: bool = True
    knowledge_reestablished: Optional[bool] = None

    @property
    def liveness_all(self) -> bool:
        return all(self.liveness_holds)


def _crash_spec(crash: str):
    from ..seqtrans import CrashSpec

    if crash == "none":
        return None
    processes = tuple(part.capitalize() for part in crash.split("+"))
    return CrashSpec(processes=processes, budget=1)


def _build_program(cell_config: Tuple[str, str, str], config: SoakConfig):
    """(protocol, channel, crash) → an executable standard program, or None.

    The ``kbp`` protocol is solved via Φ-iteration (eq. 25) and resolved
    at its solution; when the iteration does not converge the
    configuration is reported ``kbp-unsolved`` rather than executed.
    """
    from ..seqtrans import (
        SeqTransParams,
        build_kbp_protocol,
        build_standard_protocol,
        channel_from_spec,
    )

    protocol, channel_spec, crash = cell_config
    params = SeqTransParams(length=config.length, alphabet=config.alphabet)
    channel = channel_from_spec(channel_spec)
    crash_obj = _crash_spec(crash)
    if protocol == "standard":
        return build_standard_protocol(params, channel, crash=crash_obj), params
    if protocol == "kbp":
        from ..core import resolve_at, solve_si_iterative

        kbp = build_kbp_protocol(params, channel, crash=crash_obj)
        report = solve_si_iterative(kbp, max_iterations=60)
        if not report.converged or report.solution is None:
            return None, params
        return resolve_at(kbp, report.solution), params
    raise ValueError(
        f"unknown protocol {protocol!r} (know 'standard' and 'kbp')"
    )


def _ground_truth(
    program, params, crash: str
) -> SoakGroundTruth:
    from ..core import KnowledgeOperator
    from ..predicates import Predicate
    from ..seqtrans import check_spec, delivered_all
    from ..transformers import strongest_invariant

    si = strongest_invariant(program)
    report = check_spec(program, params, si=si)
    knowledge: Optional[bool] = None
    if crash != "none" and "Receiver" in program.processes:
        space = program.space
        operator = KnowledgeOperator.of_program(program, si)
        delivered = delivered_all(space, params)
        crash_budget = _crash_spec(crash).budget
        post_crash = Predicate.from_callable(
            space, lambda s: s["cb"] < crash_budget
        )
        relearned = Predicate.false(space)
        for alpha in params.alphabet:
            fact = Predicate.from_callable(
                space, lambda s, a=alpha: s["x"][0] == a
            )
            relearned = relearned | (
                fact & operator.knows("Receiver", fact)
            )
        recovered = si & delivered & post_crash
        knowledge = (not recovered.is_false()) and recovered.entails(relearned)
    return SoakGroundTruth(
        safety_holds=report.safety_holds,
        liveness_holds=tuple(report.liveness_holds),
        knowledge_reestablished=knowledge,
    )


# ----------------------------------------------------------------------
# journal records
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SoakCellRecord:
    """One journaled cell result (plugs into :class:`ShardJournal`)."""

    index: int
    key: str
    verdict: str
    steps: int
    expected_safety: bool
    expected_liveness: Tuple[bool, ...]
    consistent: bool
    fairness_certified: Optional[bool] = None
    knowledge_reestablished: Optional[bool] = None
    detail: str = ""

    def body(self) -> Dict[str, Any]:
        return {
            "type": "soak-cell",
            "index": self.index,
            "key": self.key,
            "verdict": self.verdict,
            "steps": self.steps,
            "expected_safety": self.expected_safety,
            "expected_liveness": list(self.expected_liveness),
            "consistent": self.consistent,
            "fairness_certified": self.fairness_certified,
            "knowledge_reestablished": self.knowledge_reestablished,
            "detail": self.detail,
        }

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "SoakCellRecord":
        # Lazy: repro.robustness transitively imports repro.sim (via the
        # certificate model registry → seqtrans → apriori), so a module-level
        # import here would close the cycle.
        from ..robustness.checkpoint import JournalError

        for required in ("index", "key", "verdict", "steps", "consistent"):
            if required not in body:
                raise JournalError(f"soak record missing {required!r}")
        return cls(
            index=body["index"],
            key=body["key"],
            verdict=body["verdict"],
            steps=body["steps"],
            expected_safety=bool(body.get("expected_safety", True)),
            expected_liveness=tuple(body.get("expected_liveness", ())),
            consistent=body["consistent"],
            fairness_certified=body.get("fairness_certified"),
            knowledge_reestablished=body.get("knowledge_reestablished"),
            detail=body.get("detail", ""),
        )


@dataclass(frozen=True)
class SoakReport:
    """Outcome of one :func:`run_soak` invocation (fresh or resumed)."""

    config_digest: str
    total: int
    executed: Tuple[str, ...]
    resumed: int
    verdicts: Dict[str, str]
    inconsistencies: Tuple[str, ...]
    records: Dict[int, SoakCellRecord] = field(repr=False, default_factory=dict)

    @property
    def consistent(self) -> bool:
        return not self.inconsistencies


# ----------------------------------------------------------------------
# the sweep
# ----------------------------------------------------------------------


def _run_cell(cell: SoakCell, config: SoakConfig, program, params, truth):
    """Execute one cell under supervision; classify and cross-check."""
    from ..seqtrans import delivered_all, safety_predicate

    space = program.space
    safety = safety_predicate(space)
    delivered = delivered_all(space, params)
    goal = delivered | ~safety  # stop at delivery or the first violation
    scheduler = scheduler_from_spec(cell.scheduler)
    executor = Executor(
        program,
        seed=_cell_seed(cell.seed, cell),
        scheduler=scheduler,
    )
    watchdog = Watchdog()
    result = supervise_run(
        executor,
        goal,
        budgets=(cell.budget, 4 * cell.budget),
        watchdog=watchdog,
    )

    if not safety.holds_at(result.final_state.index):
        verdict = UNSAFE
    elif result.reached:
        verdict = DELIVERED
    elif result.diagnosis is not None and result.diagnosis.provably_stuck:
        verdict = LIVELOCK_VERDICT
    else:
        verdict = UNDECIDED

    fairness = result.diagnosis.fairness if result.diagnosis else None
    certified = fairness.certified if fairness is not None else None

    problems: List[str] = []
    if verdict == UNSAFE and truth.safety_holds:
        problems.append(
            "observed a safety violation the model checker proves impossible"
        )
    if verdict == LIVELOCK_VERDICT and truth.liveness_all:
        problems.append(
            "proved a livelock though the fair leads-to checker proves liveness"
        )
    if not scheduler.demonic and certified is False:
        problems.append("non-demonic schedule failed fairness certification")

    detail = "; ".join(problems)
    if not problems and result.diagnosis is not None and result.diagnosis.lasso_kind:
        detail = result.diagnosis.lasso_kind
    return SoakCellRecord(
        index=cell.index,
        key=cell.key,
        verdict=verdict,
        steps=result.steps,
        expected_safety=truth.safety_holds,
        expected_liveness=truth.liveness_holds,
        consistent=not problems,
        fairness_certified=certified,
        knowledge_reestablished=truth.knowledge_reestablished,
        detail=detail,
    )


def run_soak(
    config: SoakConfig,
    journal_path: Union[str, Path],
    fault_plan=None,
) -> SoakReport:
    """Sweep the soak matrix, journaling each finished cell.

    Resumable: cells already journaled (same config digest) are loaded,
    not re-run, and the journal an interrupted-then-resumed soak ends with
    is byte-identical to an uninterrupted one.  ``fault_plan`` hooks the
    same parent-side faults the sharded solver supports (``kill@N`` after
    N journaled cells), which is how the resume path is tested.
    """
    from ..robustness.checkpoint import ShardJournal

    cells = enumerate_cells(config)
    journal = ShardJournal(journal_path, record_cls=SoakCellRecord)
    header = {
        "soak": config.describe(),
        "digest": config.digest(),
        "cell_count": len(cells),
    }
    completed: Dict[int, SoakCellRecord] = journal.open(header)

    truths: Dict[Tuple[str, str, str], SoakGroundTruth] = {}
    programs: Dict[Tuple[str, str, str], Any] = {}
    executed: List[str] = []
    for cell in cells:
        if cell.index in completed:
            continue
        cfg = cell.config_key
        if cfg not in programs:
            programs[cfg] = _build_program(cfg, config)
        program, params = programs[cfg]
        if program is None:
            record = SoakCellRecord(
                index=cell.index,
                key=cell.key,
                verdict=UNSOLVED,
                steps=0,
                expected_safety=True,
                expected_liveness=(),
                consistent=True,
                detail="eq.-(25) iteration did not converge",
            )
        else:
            if cfg not in truths:
                truths[cfg] = _ground_truth(program, params, cell.crash)
            record = _run_cell(cell, config, program, params, truths[cfg])
        completed[cell.index] = record
        executed.append(cell.key)
        count = journal.append(record)
        if fault_plan is not None:
            fault_plan.after_journal_append(count)

    verdicts = {
        record.key: record.verdict
        for record in sorted(completed.values(), key=lambda r: r.index)
    }
    inconsistencies = tuple(
        f"{record.key}: {record.detail}"
        for record in sorted(completed.values(), key=lambda r: r.index)
        if not record.consistent
    )
    return SoakReport(
        config_digest=config.digest(),
        total=len(cells),
        executed=tuple(executed),
        resumed=len(cells) - len(executed),
        verdicts=verdicts,
        inconsistencies=inconsistencies,
        records=dict(completed),
    )


def quick_config(seeds: Tuple[int, ...] = (0,)) -> SoakConfig:
    """The CI ``soak-quick`` matrix: small, fast, and pointed.

    Covers the E13 pair (greedy-loss refutes ``lossy``, fails to refute
    ``bounded_loss``), a benign random baseline, and one crash/recovery
    pair (receiver crash on ``reliable`` heals; on ``bounded_loss`` it can
    deadlock).
    """
    return SoakConfig(
        length=1,
        alphabet=("a", "b"),
        protocols=("standard",),
        channels=("bounded_loss:1", "lossy", "reliable"),
        schedulers=("weighted-random", "greedy-loss"),
        crashes=("none", "receiver"),
        budgets=(2_000,),
        seeds=seeds,
    )
