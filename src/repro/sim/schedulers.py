"""Scheduler strategies for the randomized executor.

UNITY's execution model only demands *fairness*: every statement is
attempted infinitely often.  That leaves the adversary — the scheduler —
enormous freedom, and the paper's liveness results are claims about what
survives **every** fair adversary, not about what a benign random walk
happens to do.  This module therefore factors the scheduling decision out
of :class:`~repro.sim.executor.Executor` into a :class:`Scheduler`
interface with four strategies:

* :class:`WeightedRandomScheduler` — the original behavior: fair with
  probability one, the measurement workhorse;
* :class:`RoundRobinScheduler` — the canonical deterministic fair
  schedule, useful as a reproducible baseline;
* :class:`StarvationScheduler` — *demonic but fair*: delays a target
  statement as long as the declared fairness window allows, scheduling it
  only once every ``window`` steps.  Liveness theorems must survive it;
* :class:`GreedyHostileScheduler` — the E13 adversary: fires a hostile
  (``lose_*``/``corrupt_*``/``crash_*``) statement whenever one is
  enabled, round-robin otherwise.  Still *fair* in UNITY's
  attempted-infinitely-often sense (hostile statements disable themselves),
  yet it realizes the fair runs that refute liveness on the unrestricted
  LOSSY channel — fairness alone does not deliver the channel assumption.

Every scheduler is reconstructible from a canonical *spec string* (see
:func:`scheduler_from_spec`), which is what :class:`RunResult` records and
what the soak matrix uses as a cell key.  Deterministic schedulers expose
their internal state via :meth:`Scheduler.state_key`, enabling the
watchdog's exact lasso detection: if the pair (scheduler state, program
state) repeats, the run is provably periodic.

The :class:`FairnessMonitor` closes the loop: it certifies, post-hoc, that
every statement was attempted within a sliding window — the executable
counterpart of the fairness hypothesis the model checker assumes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..predicates import Predicate

#: Statement-name prefixes regarded as environment attacks by the greedy
#: hostile scheduler (channel loss/corruption/reordering, process crashes).
HOSTILE_PREFIXES = ("lose_", "corrupt_", "swap_", "crash_")


class Scheduler:
    """Strategy choosing which statement the executor attempts next.

    A scheduler is *bound* to one executor (statement names, weight table,
    guard predicates, and the executor's RNG) before use.  ``fair``
    declares whether the strategy attempts every statement infinitely
    often — all built-in strategies do, which is exactly what makes the
    hostile ones interesting: they refute liveness *without* cheating on
    fairness.  ``demonic`` marks the strategies built to attack.
    """

    #: canonical spec string (round-trips through scheduler_from_spec)
    spec: str = "?"
    fair: bool = True
    demonic: bool = False

    def bind(
        self,
        names: Sequence[str],
        weights: Sequence[float],
        guards: Sequence[Predicate],
        rng: random.Random,
    ) -> None:
        self._names = list(names)
        self._weights = list(weights)
        self._guards = list(guards)
        self._rng = rng
        self._indices = list(range(len(names)))
        self._bound()

    def _bound(self) -> None:
        """Hook for subclasses to finish binding (resolve names, etc.)."""

    def choose(self, step: int, current: int) -> int:
        """Index of the statement to attempt at ``current`` (pure decision)."""
        raise NotImplementedError

    def state_key(self) -> Optional[Hashable]:
        """Internal state of a deterministic scheduler, or ``None``.

        When non-``None``, (state_key, program state) repeating implies the
        run is exactly periodic — the watchdog's livelock certificate.
        """
        return None

    def get_state(self):
        """Resumable internal state (mirrors ``random.Random.getstate``)."""
        return None

    def set_state(self, state) -> None:
        if state is not None:
            raise ValueError(f"{type(self).__name__} carries no state")


class WeightedRandomScheduler(Scheduler):
    """The original weighted-random fair scheduler (fair w.p. 1)."""

    spec = "weighted-random"

    def choose(self, step: int, current: int) -> int:
        return self._rng.choices(self._indices, weights=self._weights)[0]


class RoundRobinScheduler(Scheduler):
    """Cycle through the statements in declaration order."""

    spec = "round-robin"

    def _bound(self) -> None:
        self._pos = 0

    def choose(self, step: int, current: int) -> int:
        k = self._pos
        self._pos = (k + 1) % len(self._indices)
        return k

    def state_key(self) -> Hashable:
        return self._pos

    def get_state(self):
        return self._pos

    def set_state(self, state) -> None:
        self._pos = int(state or 0)


class StarvationScheduler(Scheduler):
    """Starve one statement as hard as the fairness window allows.

    The target is attempted exactly once every ``window`` steps; all other
    steps round-robin through the remaining statements.  This is the
    *weakest* schedule the fairness hypothesis admits for the target, so
    any liveness property that leans on the target's firing is stressed
    maximally while remaining a legitimate fair execution.
    """

    demonic = True

    def __init__(self, target: str, window: int = 64):
        if window < 2:
            raise ValueError("starvation window must be >= 2")
        self.target = target
        self.window = window
        self.spec = f"demonic-starve:{target}:window={window}"

    def _bound(self) -> None:
        try:
            self._target_index = self._names.index(self.target)
        except ValueError:
            raise ValueError(
                f"starvation target {self.target!r} is not a statement "
                f"(have {self._names})"
            ) from None
        self._others = [i for i in self._indices if i != self._target_index]
        self._pos = 0
        self._countdown = self.window - 1

    def choose(self, step: int, current: int) -> int:
        if self._countdown == 0:
            self._countdown = self.window - 1
            return self._target_index
        self._countdown -= 1
        if not self._others:
            return self._target_index
        k = self._others[self._pos]
        self._pos = (self._pos + 1) % len(self._others)
        return k

    def state_key(self) -> Hashable:
        return (self._pos, self._countdown)

    def get_state(self):
        return (self._pos, self._countdown)

    def set_state(self, state) -> None:
        if state is None:
            return
        self._pos, self._countdown = int(state[0]), int(state[1])


class GreedyHostileScheduler(Scheduler):
    """Fire a hostile statement whenever one is enabled.

    Hostile statements are matched by name prefix (``lose_``,
    ``corrupt_``, ``swap_``, ``crash_`` by default).  When several are
    enabled they are taken round-robin; when none is, the benign
    statements are taken round-robin — so every statement is still
    attempted infinitely often (hostile statements disable themselves:
    losing empties the slot, budgets run out), and the schedule is fair.

    On the LOSSY channel this adversary loses every message and realizes
    the fair runs behind E13's negative arm; on the bounded-loss channel
    its budget runs dry and liveness survives — the paper's channel
    assumption, attacked and vindicated.
    """

    demonic = True

    def __init__(self, prefixes: Sequence[str] = HOSTILE_PREFIXES):
        self.prefixes = tuple(prefixes)
        if self.prefixes == HOSTILE_PREFIXES:
            self.spec = "greedy-loss"
        else:
            self.spec = "greedy-loss:prefixes=" + ",".join(self.prefixes)

    def _bound(self) -> None:
        self._hostile = [
            i
            for i, name in enumerate(self._names)
            if name.startswith(self.prefixes)
        ]
        self._benign = [i for i in self._indices if i not in set(self._hostile)]
        self._hpos = 0
        self._bpos = 0

    def choose(self, step: int, current: int) -> int:
        hostile = self._hostile
        if hostile:
            for offset in range(len(hostile)):
                k = hostile[(self._hpos + offset) % len(hostile)]
                if self._guards[k].holds_at(current):
                    self._hpos = (self._hpos + offset + 1) % len(hostile)
                    return k
        if not self._benign:
            k = hostile[self._hpos]
            self._hpos = (self._hpos + 1) % len(hostile)
            return k
        k = self._benign[self._bpos]
        self._bpos = (self._bpos + 1) % len(self._benign)
        return k

    def state_key(self) -> Hashable:
        return (self._hpos, self._bpos)

    def get_state(self):
        return (self._hpos, self._bpos)

    def set_state(self, state) -> None:
        if state is None:
            return
        self._hpos, self._bpos = int(state[0]), int(state[1])


def scheduler_from_spec(spec: str) -> Scheduler:
    """Rebuild a scheduler from its canonical spec string.

    Specs (the inverse of each scheduler's ``spec`` attribute)::

        weighted-random
        round-robin
        demonic-starve:<statement>[:window=W]
        greedy-loss[:prefixes=p1,p2,...]
    """
    head, _, tail = spec.partition(":")
    if head == "weighted-random" and not tail:
        return WeightedRandomScheduler()
    if head == "round-robin" and not tail:
        return RoundRobinScheduler()
    if head == "demonic-starve":
        target, _, rest = tail.partition(":")
        if not target:
            raise ValueError(
                f"scheduler spec {spec!r}: demonic-starve needs a target "
                "statement ('demonic-starve:<statement>[:window=W]')"
            )
        window = 64
        if rest:
            key, eq, value = rest.partition("=")
            if key != "window" or not eq:
                raise ValueError(
                    f"scheduler spec {spec!r}: unknown option {rest!r}"
                )
            window = int(value)
        return StarvationScheduler(target, window=window)
    if head == "greedy-loss":
        if not tail:
            return GreedyHostileScheduler()
        key, eq, value = tail.partition("=")
        if key != "prefixes" or not eq or not value:
            raise ValueError(f"scheduler spec {spec!r}: unknown option {tail!r}")
        return GreedyHostileScheduler(prefixes=tuple(value.split(",")))
    raise ValueError(
        f"unknown scheduler spec {spec!r} (know weighted-random, round-robin, "
        "demonic-starve:<target>[:window=W], greedy-loss[:prefixes=...])"
    )


# ----------------------------------------------------------------------
# fairness certification
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FairnessReport:
    """Post-hoc certificate that a run's schedule was (window-)fair.

    ``max_gaps`` maps each statement to the longest stretch of steps in
    which it was never attempted (including the leading stretch before its
    first attempt and the trailing one after its last).  The run is
    ``certified`` when every gap fits inside ``window`` — the executable
    counterpart of "every statement is attempted infinitely often",
    quantified over the finite run we actually observed.
    """

    window: int
    steps: int
    max_gaps: Dict[str, int]
    certified: bool
    violations: Tuple[str, ...]


class FairnessMonitor:
    """Tracks per-statement attempt gaps over a run (sliding-window fairness).

    Fed by the executor (via the watchdog) with each step's chosen
    statement; :meth:`report` certifies the schedule against ``window``.
    A ``window`` of ``None`` picks ``max(64, 16 * n_statements)`` — loose
    enough for the weighted-random scheduler at default weights, tight
    enough to flag a genuinely starved statement.
    """

    def __init__(self, window: Optional[int] = None):
        self.window = window
        self._last_attempt: List[int] = []
        self._max_gap: List[int] = []
        self._names: List[str] = []
        self._steps = 0

    def begin(self, names: Sequence[str]) -> None:
        if not self._names:
            self._names = list(names)
            self._last_attempt = [-1] * len(names)
            self._max_gap = [0] * len(names)

    def note(self, step: int, chosen: int) -> None:
        gap = step - self._last_attempt[chosen] - 1
        if gap > self._max_gap[chosen]:
            self._max_gap[chosen] = gap
        self._last_attempt[chosen] = step
        self._steps = step + 1

    def report(self) -> FairnessReport:
        window = self.window
        if window is None:
            window = max(64, 16 * max(1, len(self._names)))
        gaps: Dict[str, int] = {}
        violations: List[str] = []
        for i, name in enumerate(self._names):
            tail = self._steps - self._last_attempt[i] - 1
            gap = max(self._max_gap[i], tail)
            gaps[name] = gap
            if gap > window:
                violations.append(name)
        return FairnessReport(
            window=window,
            steps=self._steps,
            max_gaps=gaps,
            certified=not violations,
            violations=tuple(violations),
        )
