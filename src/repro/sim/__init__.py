"""Randomized fair execution and message-count measurement harnesses."""

from .executor import (
    Executor,
    RunResult,
    average_messages,
    replay_run,
    weights_fingerprint,
)

__all__ = [
    "Executor",
    "RunResult",
    "average_messages",
    "replay_run",
    "weights_fingerprint",
]
