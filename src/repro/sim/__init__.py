"""Randomized fair execution and message-count measurement harnesses."""

from .executor import Executor, RunResult, average_messages

__all__ = ["Executor", "RunResult", "average_messages"]
