"""Scheduled execution, adversarial scheduling, watchdogs, and soak sweeps."""

from .executor import (
    Executor,
    RunResult,
    average_messages,
    goal_fingerprint,
    replay_run,
    weights_fingerprint,
)
from .schedulers import (
    HOSTILE_PREFIXES,
    FairnessMonitor,
    FairnessReport,
    GreedyHostileScheduler,
    RoundRobinScheduler,
    Scheduler,
    StarvationScheduler,
    WeightedRandomScheduler,
    scheduler_from_spec,
)
from .watchdog import (
    FIXED_POINT,
    LIVELOCK,
    REACHED,
    SLOW_PROGRESS,
    RunDiagnosis,
    Watchdog,
    supervise_run,
)

# soak imports seqtrans lazily, but keep it last regardless: seqtrans.apriori
# imports repro.sim, so anything here that pulled seqtrans in eagerly would
# close the cycle.
from .soak import (
    DELIVERED,
    UNDECIDED,
    UNSAFE,
    SoakCell,
    SoakCellRecord,
    SoakConfig,
    SoakReport,
    enumerate_cells,
    quick_config,
    run_soak,
)

__all__ = [
    "DELIVERED",
    "UNDECIDED",
    "UNSAFE",
    "Executor",
    "FIXED_POINT",
    "LIVELOCK",
    "REACHED",
    "SLOW_PROGRESS",
    "FairnessMonitor",
    "FairnessReport",
    "GreedyHostileScheduler",
    "HOSTILE_PREFIXES",
    "RoundRobinScheduler",
    "RunDiagnosis",
    "RunResult",
    "Scheduler",
    "SoakCell",
    "SoakCellRecord",
    "SoakConfig",
    "SoakReport",
    "StarvationScheduler",
    "Watchdog",
    "WeightedRandomScheduler",
    "average_messages",
    "enumerate_cells",
    "goal_fingerprint",
    "quick_config",
    "replay_run",
    "run_soak",
    "scheduler_from_spec",
    "supervise_run",
    "weights_fingerprint",
]
