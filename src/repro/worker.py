"""``python -m repro.worker`` — a remote shard worker daemon.

One daemon serves shard sweeps over TCP to any number of coordinating
solves, one at a time (the sweep state is process-global, so concurrent
sessions serialize on a lock).  The protocol (DESIGN.md §15) is the
length-prefixed, digest-checked frame format of :mod:`repro.core.netproto`:

1. the daemon opens with ``hello``, and — when it holds the shared
   secret (``REPRO_WORKER_KEY`` / ``--key-file``) — a challenge nonce.
   Both sides prove key knowledge by mutual HMAC challenge–response
   *before anything is unpickled*: the attach payload is a pickle, so an
   unauthenticated peer would mean arbitrary code execution (and a rogue
   worker the same on the coordinator, whose result bodies are pickles
   too).  Keyless daemons exist for loopback only — binding a
   non-loopback interface without a key is refused at startup;
2. the coordinator sends ``attach`` — the solve's program digest in the
   header, the pickled init arguments (program, shard layout, solver
   flags, arena spec) in the body.  The daemon re-derives the program
   digest from what it unpickled and refuses a mismatch: a worker never
   computes against a program other than the one it claims to serve;
3. the daemon maps the shared-memory arena by name when it can (same
   host), and otherwise answers ``need-plan`` — the coordinator ships the
   full Φ-plan payload, which is exactly the remote-host fallback;
4. each ``shard`` frame names ``(index, fixed_mask, attempt)``; the
   daemon sweeps it with the *same* ``_sweep_shard`` a pool worker runs
   and answers a ``result`` frame keyed by that mask and attempt, sending
   ``heartbeat`` frames from a side thread while the sweep computes;
5. ``rss`` answers peak memory, ``bye`` ends the session.

Fault injection: the attach payload carries the solve's fault plan, so
``crash``/``hang``/``delay`` clauses fire inside the sweep exactly as
they do in a pool worker (``crash`` kills the whole daemon — the real
"worker machine died" case), and
:class:`~repro.robustness.faults.NetworkFaultPlan` clauses fire around
result delivery: ``stall`` silences heartbeats past the client deadline,
``disconnect`` tears the result frame mid-transfer, ``dupresult`` sends
it twice, ``corruptframe`` flips a body bit under an honest digest.
One-shot accounting rides the plan's marker-file scratch directory, which
localhost daemons share with the coordinator.
"""

from __future__ import annotations

import argparse
import os
import pickle
import signal
import socket
import sys
import threading
from typing import Any, Optional

from .core import parallel
from .core.netproto import (
    AUTH_KEY_ENV_VAR,
    FrameError,
    READ_DEADLINE,
    WORKER_PROTOCOL,
    auth_digest,
    check_auth_digest,
    is_loopback_host,
    load_auth_key,
    new_nonce,
    recv_frame,
    send_frame,
)

#: Only one session may own the process-global sweep state at a time.
_SESSION_LOCK = threading.Lock()


class _SessionEnd(Exception):
    """Internal: the session is over (bye, EOF, or a dead connection)."""


def _program_digest(program) -> str:
    from .certificates.canonical import program_digest

    return program_digest(program)


def _peak_rss_kb() -> int:
    import resource

    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


class _Heartbeat:
    """Sends ``heartbeat`` frames every ``interval`` s until stopped."""

    def __init__(self, wfile, write_lock: threading.Lock, interval: float):
        self.wfile = wfile
        self.write_lock = write_lock
        self.interval = max(float(interval), 0.05)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def __enter__(self) -> "_Heartbeat":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                with self.write_lock:
                    send_frame(self.wfile, "heartbeat")
            except (OSError, FrameError):
                return  # the session reader will notice the dead socket


class Session:
    """One coordinator connection: attach, then serve shards until bye."""

    def __init__(
        self,
        conn: socket.socket,
        peer: str,
        verbose: bool = False,
        key: Optional[bytes] = None,
    ):
        self.conn = conn
        self.peer = peer
        self.verbose = verbose
        self.key = key
        # A peer that connects and goes silent must not hold the session
        # (and the process-global session lock) forever.
        conn.settimeout(READ_DEADLINE)
        self.rfile = conn.makefile("rb")
        self.wfile = conn.makefile("wb")
        self.write_lock = threading.Lock()
        self.heartbeat_interval = 0.5
        self.net_plan: Optional[Any] = None

    def log(self, message: str) -> None:
        if self.verbose:
            print(f"[worker {os.getpid()}] {self.peer}: {message}", flush=True)

    def send(self, frame_type: str, meta=None, body: bytes = b"") -> None:
        with self.write_lock:
            send_frame(self.wfile, frame_type, meta, body)

    def fail(self, message: str) -> None:
        try:
            self.send("error", {"message": message})
        except (OSError, FrameError):
            pass

    # ------------------------------------------------------------------

    def run(self) -> None:
        try:
            self._hello()
            self._attach()
            while True:
                try:
                    header, body, _n = recv_frame(self.rfile)
                except FrameError:
                    raise _SessionEnd from None
                kind = header.get("type")
                if kind == "shard":
                    self._serve_shard(header)
                elif kind == "rss":
                    self.send("rss", {"kb": _peak_rss_kb()})
                elif kind == "bye":
                    raise _SessionEnd
                else:
                    self.fail(f"unexpected frame {kind!r} in session")
                    raise _SessionEnd
        except _SessionEnd:
            pass
        except (OSError, FrameError):
            pass
        except Exception as exc:
            # Any unanticipated bug: answer before dying, so the
            # coordinator fails fast instead of waiting out its deadline.
            self.fail(f"worker internal error: {exc!r}")
        finally:
            plan = parallel._WORKER.get("plan")
            if plan is not None and hasattr(plan, "close"):
                plan.close()  # unmap an attached arena before gc sees it
            parallel._WORKER.clear()
            for stream in (self.rfile, self.wfile, self.conn):
                try:
                    stream.close()
                except OSError:
                    pass
            self.log("session closed")

    # ------------------------------------------------------------------

    def _hello(self) -> None:
        """Announce the protocol; run the mutual HMAC handshake if keyed.

        Nothing is unpickled before this returns: a coordinator that
        cannot answer the challenge never gets to deliver an ``attach``
        payload, and the ``welcome`` digest proves *this* daemon holds
        the key before the coordinator ships anything either.
        """
        if self.key is None:
            self.send("hello", {"protocol": WORKER_PROTOCOL, "auth": "none"})
            return
        nonce = new_nonce()
        self.send(
            "hello",
            {"protocol": WORKER_PROTOCOL, "auth": "hmac", "nonce": nonce},
        )
        try:
            header, _body, _n = recv_frame(self.rfile)
        except FrameError:
            raise _SessionEnd from None
        if header.get("type") != "auth":
            self.fail(f"expected 'auth', got {header.get('type')!r}")
            raise _SessionEnd
        if not check_auth_digest(self.key, nonce, header.get("digest")):
            self.log("rejected peer: bad auth digest")
            self.fail("authentication failed")
            raise _SessionEnd
        peer_nonce = header.get("nonce")
        if not isinstance(peer_nonce, str) or not peer_nonce:
            self.fail("authentication failed: missing counter-challenge")
            raise _SessionEnd
        self.send("welcome", {"digest": auth_digest(self.key, peer_nonce)})

    def _attach(self) -> None:
        try:
            header, body, _n = recv_frame(self.rfile)
        except FrameError:
            raise _SessionEnd from None
        if header.get("type") != "attach":
            self.fail(f"expected 'attach', got {header.get('type')!r}")
            raise _SessionEnd
        if header.get("protocol") != WORKER_PROTOCOL:
            self.fail(
                f"protocol mismatch: daemon speaks {WORKER_PROTOCOL}, "
                f"coordinator sent {header.get('protocol')!r}"
            )
            raise _SessionEnd
        self.heartbeat_interval = float(
            header.get("heartbeat") or self.heartbeat_interval
        )
        # One guarded block from unpickle through field extraction and
        # digest derivation: a payload that decodes but has the wrong
        # shape must earn an 'error' frame just like one that does not
        # decode at all, never a silently dead session thread.
        try:
            args = pickle.loads(body)
            if not isinstance(args, dict):
                raise TypeError(
                    f"attach payload is {type(args).__name__}, expected dict"
                )
            program = args["program"]
            base_mask = int(args["base_mask"])
            low_positions = list(args["low_positions"])
            actual = _program_digest(program)
        except Exception as exc:
            self.fail(f"bad attach payload: {exc!r}")
            raise _SessionEnd from None

        claimed = header.get("program")
        if claimed != actual:
            self.fail(
                f"program digest mismatch: attach claims {claimed!r}, "
                f"payload hashes to {actual!r}"
            )
            raise _SessionEnd

        # Plan acquisition: arena by name when the segment resolves on this
        # host, the shipped payload otherwise — never a local recompile,
        # so the worker computes over exactly the coordinator's plan.
        plan = None
        mode = "resolver"
        has_plan = bool(args.get("has_plan"))
        arena_spec = args.get("arena_spec")
        if not args.get("emit_certificate") and has_plan:
            if arena_spec is not None:
                plan = arena_spec.try_attach(program.space)
            if plan is not None:
                mode = "arena"
            else:
                self.send("need-plan", {"program": actual})
                try:
                    plan_header, plan_body, _n = recv_frame(self.rfile)
                except FrameError:
                    raise _SessionEnd from None
                if plan_header.get("type") != "plan":
                    self.fail(
                        f"expected 'plan', got {plan_header.get('type')!r}"
                    )
                    raise _SessionEnd
                try:
                    plan = pickle.loads(plan_body)
                except Exception as exc:
                    self.fail(f"undecodable plan payload: {exc}")
                    raise _SessionEnd from None
                mode = "payload"

        fault_plan = args.get("fault_plan")
        if fault_plan is not None and hasattr(fault_plan, "before_result"):
            self.net_plan = fault_plan

        parallel._init_worker(
            program,
            base_mask,
            low_positions,
            bool(args.get("emit_certificate")),
            bool(args.get("any_solution")),
            int(args.get("batch_size") or parallel.BATCH_SIZE),
            fault_plan=fault_plan,
            backend_selection=args.get("backend_selection"),
            arena_spec=None,
            has_plan=has_plan,
            plan=plan,
        )
        self.send(
            "attached",
            {"program": actual, "mode": mode, "protocol": WORKER_PROTOCOL},
        )
        self.log(f"attached to {actual} (mode={mode})")

    # ------------------------------------------------------------------

    def _serve_shard(self, header) -> None:
        index = int(header["index"])
        fixed_mask = int(header["fixed_mask"])
        attempt = int(header.get("attempt", 1))
        with _Heartbeat(self.wfile, self.write_lock, self.heartbeat_interval):
            try:
                result = parallel._sweep_shard(index, fixed_mask)
            except Exception as exc:
                self.fail(f"shard {index} failed: {exc!r}")
                return
            body = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        # Heartbeats are stopped here: an injected stall below is genuine
        # silence, exactly what the client-side deadline is probing.
        self._deliver(index, fixed_mask, attempt, body)

    def _deliver(
        self, index: int, fixed_mask: int, attempt: int, body: bytes
    ) -> None:
        fired = (
            self.net_plan.before_result(index)
            if self.net_plan is not None
            else ()
        )
        kinds = {clause.kind for clause in fired}
        for clause in fired:
            if clause.kind == "stall":
                self.log(f"fault: stalling {clause.seconds}s before shard {index}")
                import time

                time.sleep(clause.seconds)

        from .core.netproto import encode_frame

        data = encode_frame(
            "result",
            {"index": index, "fixed_mask": fixed_mask, "attempt": attempt},
            body,
        )
        if "corruptframe" in kinds:
            # Flip the last body byte under the honest header digest: the
            # receiver's sha256 check must catch it before pickle does.
            self.log(f"fault: corrupting shard {index}'s result frame")
            data = data[:-1] + bytes([data[-1] ^ 0xFF])
        with self.write_lock:
            if "disconnect" in kinds:
                self.log(f"fault: disconnect mid-frame on shard {index}")
                try:
                    self.wfile.write(data[: max(1, len(data) // 2)])
                    self.wfile.flush()
                finally:
                    try:
                        self.conn.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass
                raise _SessionEnd
            self.wfile.write(data)
            if "dupresult" in kinds:
                self.log(f"fault: duplicating shard {index}'s result frame")
                self.wfile.write(data)
            self.wfile.flush()


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    port_file: Optional[str] = None,
    verbose: bool = False,
    key: Optional[bytes] = None,
) -> None:
    """Bind, announce, and serve coordinator sessions until killed.

    ``key`` (default: :data:`AUTH_KEY_ENV_VAR`) arms the mutual HMAC
    handshake.  A non-loopback bind without a key is refused: the
    protocol carries pickles, so an open unauthenticated port is
    arbitrary code execution for anyone who can reach it.
    """
    if key is None:
        key = load_auth_key()
    if key is None and not is_loopback_host(host):
        raise SystemExit(
            f"refusing to bind {host!r} without an authentication key: the "
            "worker protocol executes pickled payloads, so an open "
            f"unauthenticated port is remote code execution.  Set "
            f"{AUTH_KEY_ENV_VAR} (or pass --key-file) on the worker and "
            "the coordinator; only loopback binds may stay keyless."
        )
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    server.bind((host, port))
    server.listen(8)
    bound = server.getsockname()[1]
    if port_file:
        tmp = f"{port_file}.tmp"
        with open(tmp, "w", encoding="ascii") as handle:
            handle.write(str(bound))
        os.replace(tmp, port_file)
    print(f"repro-worker listening on {host}:{bound}", flush=True)

    def _sessions() -> None:
        while True:
            try:
                conn, addr = server.accept()
            except OSError:
                return
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            peer = f"{addr[0]}:{addr[1]}"

            def _run(conn=conn, peer=peer):
                # Sessions share the process-global sweep state; a second
                # coordinator waits its turn rather than corrupting the
                # first one's plan.
                with _SESSION_LOCK:
                    Session(conn, peer, verbose=verbose, key=key).run()

            threading.Thread(target=_run, daemon=True).start()

    try:
        _sessions()
    finally:
        server.close()


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.worker",
        description="Remote shard worker daemon for the sharded eq.-(25) "
        "solver (DESIGN.md §15).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 binds an ephemeral port"
    )
    parser.add_argument(
        "--port-file",
        default=None,
        help="write the bound port here (for tests racing ephemeral binds)",
    )
    parser.add_argument(
        "--key-file",
        default=None,
        help="file holding the shared authentication secret (overrides "
        f"{AUTH_KEY_ENV_VAR}); required for non-loopback --host",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    key = None
    if args.key_file:
        try:
            with open(args.key_file, "r", encoding="utf-8") as handle:
                key = load_auth_key(handle.read())
        except OSError as exc:
            parser.error(f"cannot read --key-file {args.key_file}: {exc}")
        if key is None:
            parser.error(f"--key-file {args.key_file} is empty")
    signal.signal(signal.SIGTERM, lambda *_: sys.exit(0))
    try:
        serve(args.host, args.port, args.port_file, args.verbose, key=key)
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
