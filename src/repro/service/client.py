"""The untrusting service client: ``python -m repro.service.client``.

A blocking socket client for the JSONL protocol in
:mod:`repro.service.server`.  Two layers of distrust are built in:

* every received artifact is hashed (sha256 over the exact bytes read)
  against the digest the server advertised — a corrupted or truncated
  transfer fails before any JSON is parsed;
* ``--replay`` closes the loop: the artifact is replayed *locally*
  through :func:`repro.certificates.replay.replay_artifact`, so the
  verdict printed is the client's own, not the server's word.  The
  server is then just a solve scheduler with a cache — it never joins
  the trusted base.

CLI::

    python -m repro.service.client solve MODEL [--obligation si-solve]
        [--port N | --port-file PATH] [--out cert.json] [--replay]
    python -m repro.service.client status | ping | shutdown [--port ...]

``solve`` streams progress to stderr as shards complete and writes the
artifact to ``--out`` (or reports its size).  Exit codes: 0 served (and,
with ``--replay``, locally verified), 1 service/replay rejection,
2 usage.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import socket
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Optional

from .specs import ServiceError

#: Default connect/request retry budget (attempts beyond the first).
DEFAULT_RETRIES = 3
#: First retry delay; doubles per attempt, capped at :data:`BACKOFF_CAP`.
DEFAULT_RETRY_BACKOFF = 0.1
BACKOFF_CAP = 2.0

#: Transient transport failures worth a fresh connection.  ``socket.timeout``
#: is deliberately absent: a server that accepted the request but is slow is
#: not one to hammer with duplicates.
_RETRYABLE = (ConnectionRefusedError, ConnectionResetError, BrokenPipeError)


def _backoff(attempt: int, base: float) -> float:
    """Capped exponential delay before retry ``attempt`` (1-based)."""
    return min(base * (2.0 ** (attempt - 1)), BACKOFF_CAP)


@dataclass(frozen=True)
class SolveResult:
    """A served artifact, digest-checked against the advertised hash."""

    key: str
    cache: str  # "hit" | "cold" | "coalesced"
    digest: str
    data: bytes
    progress_events: int = 0
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def text(self) -> str:
        return self.data.decode("ascii")


class ServiceClient:
    """A blocking JSONL-protocol client; one socket, sequential ops."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = 600.0,
        retries: int = DEFAULT_RETRIES,
        retry_backoff: float = DEFAULT_RETRY_BACKOFF,
    ):
        self.retries = max(int(retries), 0)
        self.retry_backoff = max(float(retry_backoff), 0.0)
        self.sock = self._connect(host, port, timeout)
        # Buffered file wrappers: readline for event lines, exact-count
        # read for the raw artifact body (StreamReader's 64 KiB line limit
        # never applies — artifacts travel outside lines).
        self.rfile = self.sock.makefile("rb")
        self.wfile = self.sock.makefile("wb")

    def _connect(self, host: str, port: int, timeout: float) -> socket.socket:
        """Connect with capped exponential backoff on refusal/reset.

        A refused connect usually means the server is restarting or not
        yet listening; retrying a few times with growing delays rides out
        the window without masking a genuinely absent server for long.
        """
        attempt = 0
        while True:
            try:
                return socket.create_connection((host, port), timeout=timeout)
            except _RETRYABLE:
                attempt += 1
                if attempt > self.retries:
                    raise
                time.sleep(_backoff(attempt, self.retry_backoff))

    def close(self) -> None:
        for stream in (self.rfile, self.wfile, self.sock):
            try:
                stream.close()
            except OSError:
                pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _send(self, doc: Dict[str, Any]) -> None:
        self.wfile.write((json.dumps(doc) + "\n").encode("ascii"))
        self.wfile.flush()

    def _recv(self) -> Dict[str, Any]:
        line = self.rfile.readline()
        if not line:
            raise ServiceError("server closed the connection")
        event = json.loads(line)
        if not isinstance(event, dict):
            raise ServiceError(f"malformed event: {line!r}")
        return event

    def _read_exact(self, count: int) -> bytes:
        data = self.rfile.read(count)
        if data is None or len(data) != count:
            got = 0 if data is None else len(data)
            raise ServiceError(
                f"artifact truncated on the wire: expected {count} bytes, "
                f"got {got}"
            )
        return data

    # ------------------------------------------------------------------

    def solve(
        self,
        model: str,
        obligation: str = "si-solve",
        flags: Optional[Dict[str, Any]] = None,
        on_progress: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> SolveResult:
        """Submit a query, stream progress, return the verified artifact.

        Raises :class:`ServiceError` on a service-side error event, a
        truncated transfer, or a digest mismatch.
        """
        self._send(
            {
                "op": "solve",
                "model": model,
                "obligation": obligation,
                "flags": flags or {},
            }
        )
        key = ""
        ticks = 0
        while True:
            event = self._recv()
            kind = event.get("event")
            if kind == "accepted":
                key = event.get("key", "")
            elif kind == "progress":
                ticks += 1
                if on_progress is not None:
                    on_progress(event)
            elif kind == "artifact":
                data = self._read_exact(int(event["bytes"]))
                digest = hashlib.sha256(data).hexdigest()
                if digest != event.get("digest"):
                    raise ServiceError(
                        "artifact digest mismatch: server advertised "
                        f"{event.get('digest')}, received bytes hash to {digest}"
                    )
                return SolveResult(
                    key=key,
                    cache=event.get("cache", ""),
                    digest=digest,
                    data=data,
                    progress_events=ticks,
                )
            elif kind == "error":
                raise ServiceError(event.get("error", "unspecified server error"))
            else:
                raise ServiceError(f"unexpected event {kind!r} during solve")

    def status(self) -> Dict[str, Any]:
        self._send({"op": "status"})
        event = self._recv()
        if event.get("event") != "status":
            raise ServiceError(f"expected status, got {event!r}")
        return event

    def ping(self) -> Dict[str, Any]:
        self._send({"op": "ping"})
        event = self._recv()
        if event.get("event") != "pong":
            raise ServiceError(f"expected pong, got {event!r}")
        return event

    def shutdown(self) -> None:
        self._send({"op": "shutdown"})
        event = self._recv()
        if event.get("event") != "bye":
            raise ServiceError(f"expected bye, got {event!r}")


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def _resolve_port(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    if args.port is not None:
        return args.port
    if args.port_file:
        try:
            return int(Path(args.port_file).read_text(encoding="ascii").strip())
        except (OSError, ValueError) as exc:
            parser.error(f"cannot read port from {args.port_file}: {exc}")
    parser.error("one of --port or --port-file is required")
    raise AssertionError  # parser.error exits


def _progress_printer(event: Dict[str, Any]) -> None:
    print(
        "progress: {kind} {done}/{total} shards, {checked} candidates".format(
            kind=event.get("kind"),
            done=event.get("shards_completed"),
            total=event.get("shards_total"),
            checked=event.get("candidates_checked"),
        ),
        file=sys.stderr,
        flush=True,
    )


def _cmd_solve(client: ServiceClient, args: argparse.Namespace) -> int:
    on_progress = None if args.quiet else _progress_printer
    try:
        result = client.solve(
            args.model, obligation=args.obligation, on_progress=on_progress
        )
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.out:
        Path(args.out).write_bytes(result.data)
    line = {
        "model": args.model,
        "obligation": args.obligation,
        "cache": result.cache,
        "digest": result.digest,
        "bytes": len(result.data),
        "progress_events": result.progress_events,
    }
    if args.out:
        line["out"] = args.out
    if args.replay:
        from ..certificates.canonical import CertificateError
        from ..certificates.replay import replay_artifact
        from ..certificates.store import loads

        try:
            outcome = replay_artifact(loads(result.text))
        except CertificateError as exc:
            line["replay"] = "rejected"
            line["error"] = str(exc)
            print(json.dumps(line, sort_keys=True))
            return 1
        line["replay"] = "verified"
        line["verdict"] = outcome.verdict
    print(json.dumps(line, sort_keys=True))
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.client",
        description="Query the certificate service; trust only local replays.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None)
    parser.add_argument(
        "--port-file", default=None, help="read the port the server wrote here"
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=DEFAULT_RETRIES,
        help="connect/request retries on refused or reset connections "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=DEFAULT_RETRY_BACKOFF,
        help="first retry delay in seconds; doubles per attempt, capped "
        f"at {BACKOFF_CAP}s (default %(default)s)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="submit a query and fetch the artifact")
    solve.add_argument("model", help="model registry key (e.g. kbp24-f8)")
    solve.add_argument("--obligation", default="si-solve")
    solve.add_argument("--out", default=None, help="write the artifact here")
    solve.add_argument(
        "--replay",
        action="store_true",
        help="replay the artifact locally; the verdict is then this "
        "machine's, not the server's",
    )
    solve.add_argument(
        "--quiet", action="store_true", help="suppress progress on stderr"
    )

    sub.add_parser("status", help="print cache and queue counters")
    sub.add_parser("ping", help="round-trip a pong")
    sub.add_parser("shutdown", help="ask the server to exit")

    args = parser.parse_args(argv)
    port = _resolve_port(args, parser)
    # Request-level retry: a connection reset mid-request gets a fresh
    # socket and a re-issued command.  Every op is idempotent server-side
    # (solve is content-addressed; status/ping are reads), so a duplicate
    # submission can only hit the cache, never double-solve.
    attempt = 0
    while True:
        try:
            with ServiceClient(
                host=args.host,
                port=port,
                retries=args.retries,
                retry_backoff=args.retry_backoff,
            ) as client:
                if args.command == "solve":
                    return _cmd_solve(client, args)
                if args.command == "status":
                    print(json.dumps(client.status(), indent=2, sort_keys=True))
                    return 0
                if args.command == "ping":
                    print(json.dumps(client.ping(), sort_keys=True))
                    return 0
                client.shutdown()
                print("server shutting down")
                return 0
        except _RETRYABLE as exc:
            attempt += 1
            if attempt > args.retries or args.command == "shutdown":
                print(f"error: cannot reach the server: {exc}", file=sys.stderr)
                return 1
            print(
                f"retry {attempt}/{args.retries}: {exc}",
                file=sys.stderr,
                flush=True,
            )
            time.sleep(_backoff(attempt, args.retry_backoff))
        except (ConnectionError, socket.timeout) as exc:
            print(f"error: cannot reach the server: {exc}", file=sys.stderr)
            return 1


if __name__ == "__main__":
    sys.exit(main())
