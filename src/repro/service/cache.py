"""The content-addressed certificate cache.

Layout under one root directory::

    keys/<query key>.json        → {"object": "<hex>", ...} reference
    objects/<hex>.cert.json      → raw artifact bytes (hex = sha256(bytes))
    journals/<query key>.journal → in-flight solve checkpoint (cold path)

Two-level addressing separates *naming* from *content*: a query key
(sha256 of the resolved spec — :func:`repro.service.specs.cache_key`)
points at an object named by the sha256 of its exact bytes.  The split
buys three properties the flat layout cannot give:

* **O(bytes) hot hits.**  Serving a hit verifies the object by hashing
  its raw bytes against its own name — ~15 ms for a 4 MB artifact —
  instead of re-canonicalizing the JSON payload (~0.7 s on the same
  artifact, which would cap the hot/cold speedup at ~10×).  Full
  envelope verification stays the *client's* job: the replay loop is the
  trust story, the cache only promises bytes-in = bytes-out.
* **Dedup by construction.**  Identical artifacts reached through
  different query keys (or re-solved after an eviction) share one object
  file; :meth:`CertificateCache.put` never rewrites an object that
  already exists under its digest.
* **Tamper containment.**  A mismatched object is *evicted* — reference
  and object both deleted, the miss re-solves — so a corrupted cache
  degrades to cold performance, never to wrong bytes.

Writes are atomic (same-directory temp file + ``os.replace``) so a
killed server can leave at worst a stale temp file, never a torn
reference; in-flight solve state lives in the ``journals/`` shard
checkpoints, which resume across restarts (PR-4 machinery) and are
removed once their artifact is cached.

**Bounded mode.**  With ``max_bytes`` set (or ``REPRO_CACHE_MAX_BYTES``
in the environment) the cache enforces a size budget over its object
bytes after every put: references are retired least-recently-*used*
first — a hit refreshes its key file's mtime, which is the recency
record, so recency survives restarts — and an object file is unlinked
only when its last reference goes (dedup means one object can serve
many keys).  Keys *pinned* by an in-flight solve (the server pins for
the duration of its single-flight) are never retired, so a leader's
freshly ``put`` artifact cannot be evicted before its followers read
it.  Budget evictions count separately (``lru_evictions``) from
integrity evictions, which keep their semantics untouched.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

_KEY_SUFFIX = ".json"
_OBJECT_SUFFIX = ".cert.json"

#: Environment knob for the cache size budget (bytes of object storage).
CACHE_MAX_BYTES_ENV_VAR = "REPRO_CACHE_MAX_BYTES"


@dataclass
class CacheStats:
    """Counters a server exposes through its ``status`` op."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    deduped_puts: int = 0
    evictions: int = 0
    lru_evictions: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def snapshot(self) -> Dict[str, int]:
        with self.lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "deduped_puts": self.deduped_puts,
                "evictions": self.evictions,
                "lru_evictions": self.lru_evictions,
            }

    def bump(self, name: str) -> None:
        with self.lock:
            setattr(self, name, getattr(self, name) + 1)


def _atomic_write(path: Path, data: bytes) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(data)
    os.replace(tmp, path)


class CertificateCache:
    """Content-addressed artifact storage with eviction on mismatch."""

    def __init__(
        self, root: Union[str, Path], max_bytes: Optional[int] = None
    ):
        self.root = Path(root)
        self.keys_dir = self.root / "keys"
        self.objects_dir = self.root / "objects"
        self.journals_dir = self.root / "journals"
        for directory in (self.keys_dir, self.objects_dir, self.journals_dir):
            directory.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        if max_bytes is None:
            raw = os.environ.get(CACHE_MAX_BYTES_ENV_VAR)
            if raw:
                try:
                    max_bytes = int(raw)
                except ValueError:
                    raise ValueError(
                        f"{CACHE_MAX_BYTES_ENV_VAR}={raw!r} is not a byte count"
                    ) from None
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_bytes = max_bytes
        self._pins: Dict[str, int] = {}
        self._pin_lock = threading.Lock()

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------

    def key_path(self, key: str) -> Path:
        return self.keys_dir / f"{key}{_KEY_SUFFIX}"

    def object_path(self, digest: str) -> Path:
        return self.objects_dir / f"{digest}{_OBJECT_SUFFIX}"

    def journal_path(self, key: str) -> Path:
        """Where the cold path checkpoints its solve for this key."""
        return self.journals_dir / f"{key}.journal"

    # ------------------------------------------------------------------
    # the hot path
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[bytes]:
        """The cached artifact bytes, integrity-verified — or ``None``.

        The verification is sha256 over the object's raw bytes against
        its content address.  Any mismatch — bit rot, manual edit, a
        truncated object — evicts both the object and the reference and
        reports a miss, so the caller re-solves; a tampered cache can
        cost time, never correctness.
        """
        ref = self._read_ref(key)
        if ref is None:
            self.stats.bump("misses")
            return None
        digest = ref.get("object")
        path = self.object_path(digest) if isinstance(digest, str) else None
        if path is None or not path.exists():
            self._evict(key, ref)
            self.stats.bump("misses")
            return None
        data = path.read_bytes()
        if hashlib.sha256(data).hexdigest() != digest:
            self._evict(key, ref)
            self.stats.bump("misses")
            return None
        self.stats.bump("hits")
        self._touch(key)
        return data

    def _touch(self, key: str) -> None:
        """Refresh a key's recency record (its reference file mtime)."""
        try:
            os.utime(self.key_path(key))
        except OSError:  # pragma: no cover - racing an eviction is a miss later
            pass

    # ------------------------------------------------------------------
    # pinning (in-flight protection)
    # ------------------------------------------------------------------

    def pin(self, key: str) -> None:
        """Exempt a key from budget eviction while a solve is in flight.

        Refcounted: the single-flight leader and every follower pin the
        same key, and it stays pinned until the last one unpins.
        """
        with self._pin_lock:
            self._pins[key] = self._pins.get(key, 0) + 1

    def unpin(self, key: str) -> None:
        with self._pin_lock:
            count = self._pins.get(key, 0) - 1
            if count > 0:
                self._pins[key] = count
            else:
                self._pins.pop(key, None)

    def _pinned(self) -> set:
        with self._pin_lock:
            return set(self._pins)

    def _read_ref(self, key: str) -> Optional[Dict[str, Any]]:
        path = self.key_path(key)
        try:
            doc = json.loads(path.read_text(encoding="ascii"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            return None
        return doc if isinstance(doc, dict) else None

    def _evict(self, key: str, ref: Dict[str, Any]) -> None:
        self.stats.bump("evictions")
        digest = ref.get("object")
        if isinstance(digest, str):
            try:
                self.object_path(digest).unlink()
            except OSError:
                pass
        try:
            self.key_path(key).unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # the cold path
    # ------------------------------------------------------------------

    def put(self, key: str, data: bytes, meta: Optional[Dict[str, Any]] = None) -> str:
        """Store artifact bytes under a query key; returns the object digest.

        The object write is skipped when its digest already exists
        (dedup); the reference write is atomic, so readers see either the
        old complete reference or the new one.
        """
        digest = hashlib.sha256(data).hexdigest()
        obj = self.object_path(digest)
        if obj.exists():
            self.stats.bump("deduped_puts")
        else:
            _atomic_write(obj, data)
        ref = {"object": digest, "bytes": len(data)}
        if meta:
            ref.update(meta)
        _atomic_write(
            self.key_path(key),
            (json.dumps(ref, sort_keys=True) + "\n").encode("ascii"),
        )
        self.stats.bump("puts")
        self._enforce_budget(exclude={key})
        return digest

    # ------------------------------------------------------------------
    # the size budget
    # ------------------------------------------------------------------

    def object_bytes(self) -> int:
        """Total bytes of object storage currently on disk."""
        total = 0
        for path in self.objects_dir.glob(f"*{_OBJECT_SUFFIX}"):
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def _enforce_budget(self, exclude: Optional[set] = None) -> None:
        """Retire least-recently-used references until under ``max_bytes``.

        ``exclude`` keys (the one just put) and pinned keys are never
        retired; an object file goes only with its *last* reference.  If
        everything over budget is pinned or excluded the cache simply
        runs over budget — correctness beats the bound.
        """
        if self.max_bytes is None:
            return
        protected = self._pinned() | (exclude or set())
        refs = []  # (mtime, key, digest)
        ref_count: Dict[str, int] = {}
        for path in self.keys_dir.glob(f"*{_KEY_SUFFIX}"):
            key = path.name[: -len(_KEY_SUFFIX)]
            ref = self._read_ref(key)
            digest = ref.get("object") if ref else None
            if not isinstance(digest, str):
                continue
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue
            ref_count[digest] = ref_count.get(digest, 0) + 1
            refs.append((mtime, key, digest))
        sizes: Dict[str, int] = {}
        for digest in ref_count:
            try:
                sizes[digest] = self.object_path(digest).stat().st_size
            except OSError:
                sizes[digest] = 0
        total = sum(sizes.values())
        if total <= self.max_bytes:
            return
        refs.sort()  # oldest mtime first = least recently used
        for _, key, digest in refs:
            if total <= self.max_bytes:
                break
            if key in protected:
                continue
            try:
                self.key_path(key).unlink()
            except OSError:
                continue
            self.stats.bump("lru_evictions")
            ref_count[digest] -= 1
            if ref_count[digest] == 0:
                try:
                    self.object_path(digest).unlink()
                except OSError:
                    pass
                total -= sizes.get(digest, 0)

    def clear_journal(self, key: str) -> None:
        """Drop a key's solve checkpoint (called once its artifact cached)."""
        try:
            self.journal_path(key).unlink()
        except OSError:
            pass
