"""Knowledge as a service: a long-running solve/replay front-end.

The batch pipeline (solve → emit → replay) becomes a server (DESIGN.md
§13).  Clients address programs by *model registry key* — the same keys
certificate artifacts pin — plus an obligation id, and receive certificate
artifacts back; because every artifact is independently replayable, an
untrusting client verifies locally and never has to take the server's
word for a verdict.

Five cooperating pieces:

* :mod:`specs`  — :class:`QuerySpec` (model key + obligation + semantic
  flags), the content-addressed :func:`cache_key` derivation, and
  :func:`solve_query`, which produces exactly the bytes a direct
  ``emit_certificate`` run would;
* :mod:`cache`  — :class:`CertificateCache`: a content-addressed artifact
  store (query key → object digest → raw bytes), hot hits verified by
  sha256 over the file bytes in O(bytes), tampered entries evicted and
  re-solved, writes deduplicated by digest;
* :mod:`queue`  — :class:`SolveQueue`: single-flight coalescing of
  concurrent identical queries onto one solver run, with progress fan-out
  to every waiter;
* :mod:`server` — the asyncio JSONL front-end
  (``python -m repro.service.server``), streaming shard-level progress
  from the supervisor's journal hook and serving artifacts;
* :mod:`client` — a blocking client + CLI
  (``python -m repro.service.client``) that submits, watches progress,
  fetches, and locally replays.
"""

from .cache import CacheStats, CertificateCache
from .queue import SolveQueue
from .specs import ServiceError, QuerySpec, cache_key, solve_query

__all__ = [
    "CacheStats",
    "CertificateCache",
    "QuerySpec",
    "ServiceError",
    "SolveQueue",
    "cache_key",
    "solve_query",
]
