"""Single-flight solve scheduling.

Concurrent identical queries are the expensive failure mode of a
certificate service: two clients asking for the same cold key must not
run the eq.-(25) sweep twice.  :class:`SolveQueue` coalesces by cache
key — the first submitter becomes the *leader* and its job runs on the
worker pool; everyone else who arrives while the flight is open becomes
a *follower*, sharing the leader's future and its progress stream.

Progress fan-out is push-based: the solver's journal-ordered callback
(:class:`repro.robustness.SolveProgress`) is relayed to every
subscriber registered on the flight, including ones that joined
mid-solve (late joiners immediately receive the latest event so their
first tick is never stale).  Subscribers are plain callables invoked on
the worker thread; the asyncio server bridges them onto its loop with
``call_soon_threadsafe``.

The flight is removed from the table *before* its future resolves
(in the worker's ``finally``), so a query that arrives after a failure
starts a fresh flight instead of inheriting a cached exception forever.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

Subscriber = Callable[[Any], None]


@dataclass
class Flight:
    """One in-progress solve, shared by every coalesced waiter."""

    key: str
    future: Future = field(default_factory=Future)
    subscribers: List[Subscriber] = field(default_factory=list)
    #: most recent progress event, replayed to late joiners.
    last_event: Optional[Any] = None
    waiters: int = 1


class SolveQueue:
    """Coalesce concurrent identical queries onto one solver run."""

    def __init__(self, workers: int = 1):
        self.pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-solve"
        )
        self.lock = threading.Lock()
        self.inflight: Dict[str, Flight] = {}
        self.coalesced = 0

    # ------------------------------------------------------------------

    def submit(
        self,
        key: str,
        job: Callable[[Callable[[Any], None]], Any],
        subscriber: Optional[Subscriber] = None,
    ) -> Tuple[Flight, bool]:
        """Join (or open) the flight for ``key``.

        ``job`` runs only if this call opens the flight; it receives a
        ``publish`` callable to feed progress events through.  Returns
        ``(flight, leader)`` — followers just await ``flight.future``.
        """
        with self.lock:
            flight = self.inflight.get(key)
            if flight is not None:
                flight.waiters += 1
                self.coalesced += 1
                last = flight.last_event
                if subscriber is not None:
                    flight.subscribers.append(subscriber)
                leader = False
            else:
                flight = Flight(key=key)
                if subscriber is not None:
                    flight.subscribers.append(subscriber)
                self.inflight[key] = flight
                last = None
                leader = True
        if subscriber is not None and last is not None:
            subscriber(last)
        if leader:
            self.pool.submit(self._run, flight, job)
        return flight, leader

    def _run(self, flight: Flight, job: Callable[[Callable[[Any], None]], Any]) -> None:
        try:
            result = job(lambda event: self._publish(flight, event))
        except BaseException as exc:  # noqa: BLE001 — relayed to every waiter
            self._close(flight)
            flight.future.set_exception(exc)
        else:
            self._close(flight)
            flight.future.set_result(result)

    def _close(self, flight: Flight) -> None:
        # Remove before resolving the future: a submit racing with the
        # resolution must open a fresh flight, not adopt a finished one.
        with self.lock:
            if self.inflight.get(flight.key) is flight:
                del self.inflight[flight.key]

    def _publish(self, flight: Flight, event: Any) -> None:
        with self.lock:
            flight.last_event = event
            subscribers = list(flight.subscribers)
        for subscriber in subscribers:
            subscriber(event)

    # ------------------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        with self.lock:
            return {
                "in_flight": len(self.inflight),
                "keys": sorted(self.inflight),
                "coalesced": self.coalesced,
            }

    def shutdown(self, wait: bool = True) -> None:
        self.pool.shutdown(wait=wait)
