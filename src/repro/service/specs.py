"""Program specs, cache keys, and the cold-path solve.

A query names **what** is to be certified — a model registry key, an
obligation id, and any semantic solver flags — never **how**: execution
knobs (worker count, predicate backend, checkpoint path) are excluded
from the spec because the repo's solvers are bit-identical across them
(PR 3/4/6 invariants), so the same query must hit the same cache entry no
matter which machine or pool shape computed it.

The cache key is a sha256 over the canonical JSON of the resolved spec —
including the *program digest* the registry derives by rebuilding the
model from source, so two releases whose builders drift produce distinct
keys instead of serving each other's certificates.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from ..certificates.canonical import (
    CertificateError,
    canonical_dumps,
    program_digest,
)
from ..certificates.certs import FixpointCertificate, InvariantCertificate
from ..certificates.models import Model, build_model
from ..certificates.store import wrap
from ..predicates import using_backend

#: Format tag folded into every cache key; bump to invalidate the world.
QUERY_FORMAT = "repro-service-query/v1"


class ServiceError(CertificateError):
    """A query that cannot be served: bad spec, unknown obligation."""


@dataclass(frozen=True)
class QuerySpec:
    """What a client asks to be certified.

    ``obligation`` ids:

    * ``"si-solve"`` — the full eq.-(25) sweep with per-candidate evidence
      (knowledge-based models only): a ``kbp-solve`` certificate.
    * ``"si"`` — the strongest-invariant Kleene chain: a ``fixpoint``
      certificate (claim ``si``).
    * ``"invariant"`` / ``"invariant:<label>"`` — the SI chain plus the
      inclusion check for one of the model's pinned safety obligations
      (the bare form takes the model's first); an ``invariant``
      certificate.

    ``flags`` is reserved for *semantic* solver options (ones that change
    the artifact); execution knobs do not belong here.
    """

    model: str
    obligation: str = "si"
    flags: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def from_request(cls, doc: Dict[str, Any]) -> "QuerySpec":
        """Build a spec from a wire request, rejecting unknown shapes."""
        model = doc.get("model")
        if not isinstance(model, str) or not model:
            raise ServiceError("request needs a 'model' registry key")
        obligation = doc.get("obligation", "si")
        if not isinstance(obligation, str):
            raise ServiceError("'obligation' must be a string id")
        flags = doc.get("flags") or {}
        if not isinstance(flags, dict):
            raise ServiceError("'flags' must be an object")
        return cls(
            model=model,
            obligation=obligation,
            flags=tuple(sorted(flags.items())),
        )

    def describe(self) -> Dict[str, Any]:
        return {
            "model": self.model,
            "obligation": self.obligation,
            "flags": dict(self.flags),
        }


def resolve_model(spec: QuerySpec) -> Model:
    """Rebuild the spec's model (size-aware backend policy active)."""
    with using_backend("auto"):
        return build_model(spec.model)


def cache_key(spec: QuerySpec, model: Optional[Model] = None) -> str:
    """The content address of a query's certified answer.

    sha256 over the canonical JSON of ``(format, model key, program
    digest, obligation, flags)``.  The program digest pins the *rebuilt*
    program — name, space signature, statement names, init fingerprint —
    so a drifted builder can never alias an old entry.  Execution knobs
    are deliberately absent: artifacts are byte-identical across worker
    counts, backends, and checkpoint layouts, so including them would
    only shatter the cache.
    """
    if model is None:
        model = resolve_model(spec)
    digest = hashlib.sha256(
        canonical_dumps(
            {
                "format": QUERY_FORMAT,
                "model": spec.model,
                "program": program_digest(model.program),
                "obligation": spec.obligation,
                "flags": dict(spec.flags),
            }
        ).encode("ascii")
    ).hexdigest()
    return digest


def _invariant_obligation(spec: QuerySpec, model: Model):
    _, _, label = spec.obligation.partition(":")
    if not model.safety_obligations:
        raise ServiceError(
            f"model {spec.model!r} pins no safety obligations to certify"
        )
    if not label:
        return model.safety_obligations[0]
    for pinned_label, predicate in model.safety_obligations:
        if pinned_label == label:
            return pinned_label, predicate
    known = [l for l, _ in model.safety_obligations]
    raise ServiceError(
        f"model {spec.model!r} has no safety obligation {label!r}; "
        f"pinned: {known}"
    )


def solve_query(
    spec: QuerySpec,
    *,
    model: Optional[Model] = None,
    workers: Optional[int] = None,
    checkpoint: Optional[Any] = None,
    progress: Optional[Callable[[Any], None]] = None,
    remote_workers: Optional[Any] = None,
) -> str:
    """The cold path: solve, certify, and return the artifact text.

    Returns exactly what a direct emit would put on disk —
    ``artifact.dumps() + "\\n"`` — so cache hits are byte-identical to
    fresh solves by construction.  ``workers``/``checkpoint``/
    ``progress``/``remote_workers`` are execution-only: they steer the
    sweep (and let a killed server resume from its shard journal, or fan
    it out to socket worker daemons) without ever reaching the artifact
    bytes.

    Unknown flags are rejected rather than ignored — a flag that does not
    change the solve must not mint a distinct cache entry.
    """
    if spec.flags:
        raise ServiceError(
            f"unknown semantic flags {dict(spec.flags)!r}; none are "
            "defined in this release"
        )
    if model is None:
        model = resolve_model(spec)
    program = model.program
    with using_backend("auto"):
        if spec.obligation == "si-solve":
            if not program.is_knowledge_based():
                raise ServiceError(
                    f"'si-solve' needs a knowledge-based model; "
                    f"{spec.model!r} is standard — ask for 'si' instead"
                )
            from ..core.kbp import solve_si

            report = solve_si(
                program,
                emit_certificate=True,
                workers=workers,
                checkpoint=checkpoint,
                progress=progress,
                remote_workers=remote_workers,
            )
            certificate = report.certificate
        elif spec.obligation == "si" or spec.obligation.startswith("invariant"):
            if program.is_knowledge_based():
                raise ServiceError(
                    f"{spec.obligation!r} runs the plain SST chain, which "
                    f"needs a standard program; {spec.model!r} is "
                    "knowledge-based — ask for 'si-solve' instead"
                )
            from ..transformers import sst

            result = sst(program, program.init)
            fixpoint = FixpointCertificate(
                claim="si",
                program=program_digest(program),
                seed=program.init,
                chain=result.chain,
            )
            if spec.obligation == "si":
                certificate = fixpoint
            else:
                label, predicate = _invariant_obligation(spec, model)
                if not result.predicate.entails(predicate):
                    raise ServiceError(
                        f"obligation {label!r} does not hold on "
                        f"{spec.model!r}: SI escapes the predicate — there "
                        "is no invariant certificate to serve"
                    )
                certificate = InvariantCertificate(
                    si=fixpoint, predicate=predicate, label=label
                )
        else:
            raise ServiceError(
                f"unknown obligation {spec.obligation!r}; know 'si-solve', "
                "'si', 'invariant', 'invariant:<label>'"
            )
    return wrap(certificate, spec.model).dumps() + "\n"
