"""The asyncio certificate server: ``python -m repro.service.server``.

A line-oriented JSON protocol over a plain TCP socket (stdlib only — raw
:func:`asyncio.start_server`, no framework).  Requests are one JSON
object per line::

    {"op": "solve", "model": "kbp24-f8", "obligation": "si-solve"}
    {"op": "ping"} | {"op": "status"} | {"op": "shutdown"}

Responses are JSON event lines; a ``solve`` streams::

    {"event": "accepted", "key": "<sha256>", "query": {...}}
    {"event": "progress", "kind": "shard-completed", ...}   (zero or more)
    {"event": "artifact", "cache": "hit"|"cold"|"coalesced",
     "digest": "<sha256>", "bytes": N}
    <N raw artifact bytes>

The artifact rides *outside* JSON — after its header line come exactly
``bytes`` raw bytes — so multi-megabyte certificates are never escaped,
re-encoded, or split across lines, and the client can hash exactly what
it received against the advertised digest before parsing anything.

Solve flow: resolve the spec off-loop (model rebuild + digest), consult
the :class:`~repro.service.cache.CertificateCache` (hits are verified
raw-bytes sha256 — no solver, no JSON), and on a miss join the
:class:`~repro.service.queue.SolveQueue` flight for the key.  The flight
leader runs the cold solve with ``checkpoint=`` pointed at the cache's
journal slot for the key, so a server killed mid-solve resumes completed
shards from disk on the next request for the same query — the final
artifact is byte-identical to an uninterrupted run (PR-4 invariant).
Shard-level progress ticks come straight from the supervisor's
journal-ordered callback and fan out to every coalesced waiter.

The server computes; clients *verify*.  Nothing here extends the trusted
base — an untrusting client replays the artifact locally
(``python -m repro.service.client solve ... --replay``) and accepts the
verdict only from its own replayer.
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, Optional

from ..certificates.canonical import CertificateError
from ..core.netproto import MAX_LINE_BYTES, READ_DEADLINE
from .cache import CertificateCache
from .queue import SolveQueue
from .specs import QuerySpec, cache_key, resolve_model, solve_query

#: Protocol tag announced in ``listening``/``pong``/``status`` events.
PROTOCOL = "repro-service/1"


def _encode(doc: Dict[str, Any]) -> bytes:
    return (json.dumps(doc, sort_keys=True) + "\n").encode("ascii")


class CertificateServer:
    """One cache, one solve queue, any number of connections."""

    def __init__(
        self,
        cache: CertificateCache,
        host: str = "127.0.0.1",
        port: int = 0,
        solver_workers: int = 1,
        queue_workers: int = 1,
        read_deadline: float = READ_DEADLINE,
        remote_workers: Optional[list] = None,
    ):
        self.cache = cache
        self.host = host
        self.port = port
        self.solver_workers = solver_workers
        #: seconds a connection may sit idle mid-session before it is cut
        self.read_deadline = read_deadline
        #: optional ``host:port`` shard-worker daemons for cold solves
        self.remote_workers = list(remote_workers) if remote_workers else None
        self.queue = SolveQueue(workers=queue_workers)
        self.started = time.monotonic()
        self.stopping = asyncio.Event()
        self.server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> int:
        # The stream limit is the request-line cap: readline() on a peer
        # that never sends a newline fails at MAX_LINE_BYTES instead of
        # buffering without bound (the worker protocol enforces the same
        # constant on its frame headers).
        self.server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=MAX_LINE_BYTES
        )
        self.port = self.server.sockets[0].getsockname()[1]
        return self.port

    async def serve_until_stopped(self) -> None:
        assert self.server is not None
        async with self.server:
            await self.stopping.wait()
        self.queue.shutdown(wait=False)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self.stopping.is_set():
                try:
                    line = await asyncio.wait_for(
                        reader.readline(), timeout=self.read_deadline
                    )
                except asyncio.TimeoutError:
                    # A silent peer must not hold a connection task forever.
                    await self._send(
                        writer,
                        {
                            "event": "error",
                            "error": f"no request within {self.read_deadline}s; "
                            "closing",
                        },
                    )
                    break
                except ValueError:
                    # The line outgrew MAX_LINE_BYTES; the stream cannot be
                    # resynchronized mid-line, so the connection ends here.
                    await self._send(
                        writer,
                        {
                            "event": "error",
                            "error": f"request line exceeds {MAX_LINE_BYTES} "
                            "bytes; closing",
                        },
                    )
                    break
                if not line:
                    break
                try:
                    doc = json.loads(line)
                    if not isinstance(doc, dict):
                        raise ValueError("request must be a JSON object")
                except ValueError as exc:
                    await self._send(writer, {"event": "error", "error": str(exc)})
                    continue
                op = doc.get("op")
                if op == "solve":
                    await self._handle_solve(doc, writer)
                elif op == "ping":
                    await self._send(
                        writer, {"event": "pong", "protocol": PROTOCOL}
                    )
                elif op == "status":
                    await self._send(writer, self._status_event())
                elif op == "shutdown":
                    await self._send(writer, {"event": "bye"})
                    self.stopping.set()
                    break
                else:
                    await self._send(
                        writer,
                        {
                            "event": "error",
                            "error": f"unknown op {op!r}; know solve, ping, "
                            "status, shutdown",
                        },
                    )
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _status_event(self) -> Dict[str, Any]:
        return {
            "event": "status",
            "protocol": PROTOCOL,
            "uptime": round(time.monotonic() - self.started, 3),
            "cache": self.cache.stats.snapshot(),
            "queue": self.queue.status(),
        }

    # ------------------------------------------------------------------
    # the solve op
    # ------------------------------------------------------------------

    async def _handle_solve(
        self, doc: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        loop = asyncio.get_running_loop()
        try:
            spec = QuerySpec.from_request(doc)
            # Model rebuild and digest are CPU work — off the loop.
            model = await loop.run_in_executor(None, resolve_model, spec)
            key = cache_key(spec, model=model)
        except CertificateError as exc:  # includes ServiceError
            await self._send(writer, {"event": "error", "error": str(exc)})
            return
        await self._send(
            writer,
            {"event": "accepted", "key": key, "query": spec.describe()},
        )

        # Pinned for the whole request: a bounded cache must not retire
        # this key between the leader's put and the last follower's read.
        self.cache.pin(key)
        try:
            await self._solve_flight(writer, loop, spec, model, key)
        finally:
            self.cache.unpin(key)

    async def _solve_flight(
        self,
        writer: asyncio.StreamWriter,
        loop: asyncio.AbstractEventLoop,
        spec: QuerySpec,
        model: Any,
        key: str,
    ) -> None:
        data = await loop.run_in_executor(None, self.cache.get, key)
        if data is not None:
            await self._send_artifact(writer, data, "hit")
            return

        events: asyncio.Queue = asyncio.Queue()

        def subscriber(event: Any) -> None:
            # Runs on the solver thread; hop onto the loop.
            loop.call_soon_threadsafe(events.put_nowait, event)

        def job(publish: Any) -> bytes:
            text = solve_query(
                spec,
                model=model,
                workers=self.solver_workers,
                checkpoint=self.cache.journal_path(key),
                progress=publish,
                remote_workers=self.remote_workers,
            )
            payload = text.encode("ascii")
            self.cache.put(
                key,
                payload,
                meta={"model": spec.model, "obligation": spec.obligation},
            )
            # Only after the artifact is durably cached: the journal is the
            # resume story for exactly as long as there is nothing to serve.
            self.cache.clear_journal(key)
            return payload

        flight, leader = self.queue.submit(key, job, subscriber)
        source = "cold" if leader else "coalesced"
        done = asyncio.ensure_future(asyncio.wrap_future(flight.future))
        while True:
            getter = asyncio.ensure_future(events.get())
            await asyncio.wait({getter, done}, return_when=asyncio.FIRST_COMPLETED)
            if getter.done():
                await self._send_progress(writer, getter.result())
                continue
            getter.cancel()
            # Progress lands on the loop before the future's done-callback
            # (both hop via call_soon_threadsafe, in publish order), but
            # flush anything still queued for good measure.
            while not events.empty():
                await self._send_progress(writer, events.get_nowait())
            break
        try:
            data = done.result()
        except CertificateError as exc:
            await self._send(writer, {"event": "error", "error": str(exc)})
        except Exception as exc:  # noqa: BLE001 — relay, keep serving
            await self._send(
                writer,
                {"event": "error", "error": f"solve failed: {type(exc).__name__}: {exc}"},
            )
        else:
            await self._send_artifact(writer, data, source)

    # ------------------------------------------------------------------
    # wire helpers
    # ------------------------------------------------------------------

    async def _send(self, writer: asyncio.StreamWriter, doc: Dict[str, Any]) -> None:
        writer.write(_encode(doc))
        await writer.drain()

    async def _send_progress(self, writer: asyncio.StreamWriter, tick: Any) -> None:
        event = {"event": "progress"}
        event.update(dataclasses.asdict(tick))
        await self._send(writer, event)

    async def _send_artifact(
        self, writer: asyncio.StreamWriter, data: bytes, source: str
    ) -> None:
        import hashlib

        writer.write(
            _encode(
                {
                    "event": "artifact",
                    "cache": source,
                    "digest": hashlib.sha256(data).hexdigest(),
                    "bytes": len(data),
                }
            )
        )
        writer.write(data)
        await writer.drain()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def _parse_workers(value: str):
    """``--workers``: an int (local pool size) or ``host:port,...`` daemons.

    Returns ``(solver_workers, remote_workers)``.
    """
    value = value.strip()
    if ":" not in value:
        try:
            return max(1, int(value)), None
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"--workers {value!r} is neither an integer nor a "
                "host:port,... list"
            ) from None
    from ..core.transport import parse_address

    addresses = [part.strip() for part in value.split(",") if part.strip()]
    try:
        for address in addresses:
            parse_address(address)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return max(2, len(addresses)), addresses


async def _amain(args: argparse.Namespace) -> int:
    cache = CertificateCache(args.cache_dir, max_bytes=args.cache_max_bytes)
    solver_workers, remote_workers = args.workers
    server = CertificateServer(
        cache,
        host=args.host,
        port=args.port,
        solver_workers=solver_workers,
        queue_workers=args.queue_workers,
        read_deadline=args.read_deadline,
        remote_workers=remote_workers,
    )
    port = await server.start()
    if args.port_file:
        # Written atomically-enough for a watcher: the content is tiny.
        Path(args.port_file).write_text(f"{port}\n", encoding="ascii")
    print(
        json.dumps(
            {
                "event": "listening",
                "protocol": PROTOCOL,
                "host": args.host,
                "port": port,
                "cache_dir": str(cache.root),
            },
            sort_keys=True,
        ),
        flush=True,
    )
    await server.serve_until_stopped()
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.server",
        description="Serve certified verdicts over a JSONL TCP protocol.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 picks a free port (default)"
    )
    parser.add_argument(
        "--cache-dir",
        required=True,
        help="root of the content-addressed certificate cache",
    )
    parser.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        help="object-storage budget; least-recently-used entries are "
        "retired past it (default: REPRO_CACHE_MAX_BYTES or unbounded)",
    )
    parser.add_argument(
        "--workers",
        type=_parse_workers,
        default=(1, None),
        help="solver workers per cold solve: an integer (1 = in-process "
        "supervised), or a host:port,... list of python -m repro.worker "
        "daemons to fan shards out to over TCP",
    )
    parser.add_argument(
        "--read-deadline",
        type=float,
        default=READ_DEADLINE,
        help="seconds an idle connection may wait between requests before "
        f"it is closed (default {READ_DEADLINE})",
    )
    parser.add_argument(
        "--queue-workers",
        type=int,
        default=1,
        help="concurrent cold solves (distinct keys; same-key queries coalesce)",
    )
    parser.add_argument(
        "--port-file",
        default=None,
        help="write the bound port here once listening (for test harnesses)",
    )
    args = parser.parse_args(argv)
    try:
        return asyncio.run(_amain(args))
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())
