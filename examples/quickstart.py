#!/usr/bin/env python3
"""Quickstart: programs, the strongest invariant, and the knowledge operator.

A two-process program over shared Booleans; we compute its strongest
invariant (the reachable states, eqs. 1–5), ask what each process *knows*
(eq. 13), and watch the S5 laws hold.

Run:  python examples/quickstart.py
"""

from repro import KnowledgeOperator, parse_program, strongest_invariant, var_true
from repro.core import verify_all

PROGRAM = """
program handshake
var req, ack, done : bool
process Client reads req, done
process Server reads req, ack
init !req && !ack && !done
assign
  request : req  := true  if !ack
  [] serve : ack  := true  if req
  [] finish: done := true  if ack
end
"""


def main() -> None:
    program = parse_program(PROGRAM)
    print(f"Program: {program}")

    # 1. The strongest invariant — exactly the reachable states.
    si = strongest_invariant(program)
    print(f"\nStrongest invariant holds at {si.count()} of {program.space.size} states:")
    for state in si.states():
        print(f"   {dict(state)}")

    # 2. Knowledge.  The Server sees req and ack, but not done.
    operator = KnowledgeOperator.of_program(program)
    done = var_true(program.space, "done")
    ack = var_true(program.space, "ack")

    print("\nWhere does the Server know things (on reachable states)?")
    k_ack = operator.knows("Server", ack) & si
    k_done = operator.knows("Server", done) & si
    print(f"   K_Server(ack):  {k_ack.count()} states (ack is in its view)")
    print(f"   K_Server(done): {k_done.count()} states (done is invisible to it)")

    # The Client, seeing done, knows ack held before (done ⇒ ack is invariant).
    k_client = operator.knows("Client", ack) & si
    print(f"   K_Client(ack):  {k_client.count()} states — seeing done teaches ack")
    for state in k_client.states():
        print(f"      knows at {dict(state)}")

    # 3. The S5 laws of the paper (eqs. 14–18) hold — exhaustively checked.
    violations = verify_all(operator, "Server")
    print(f"\nS5 violations for the Server's operator: {violations or 'none'}")


if __name__ == "__main__":
    main()
