#!/usr/bin/env python3
"""The sequence transmission problem (paper §6), end to end.

Builds the bounded Figure-4 standard protocol over three channel models,
model-checks the specification (34)–(35), verifies that the protocol
*instantiates* the Figure-3 knowledge-based protocol, runs it under a
randomized fair scheduler, and shows the §6.4 a-priori-knowledge effect.

Run:  python examples/sequence_transmission.py
"""

from repro.seqtrans import (
    LOSSY,
    RELIABLE,
    SeqTransParams,
    TRANSMIT_STATEMENTS,
    bounded_loss,
    build_standard_protocol,
    check_instantiation,
    check_spec,
    compare_with_apriori,
    delivered_all,
)
from repro.sim import Executor


def channel_matrix(params: SeqTransParams) -> None:
    print("1. Specification vs channel model")
    print(f"   (L={params.length}, A={params.alphabet})")
    for name, channel in (
        ("reliable     ", RELIABLE),
        ("bounded-loss ", bounded_loss(1)),
        ("lossy        ", LOSSY),
    ):
        program = build_standard_protocol(params, channel)
        report = check_spec(program, params)
        print(
            f"   {name}: safety={report.safety_holds}  "
            f"liveness={report.liveness_all}  (SI: {report.si_states} states)"
        )
    print("   → liveness needs the paper's channel assumption (St-3)/(St-4);")
    print("     the unrestricted lossy channel violates it.\n")


def instantiation(params: SeqTransParams) -> None:
    print("2. Does Figure 4 instantiate the knowledge-based protocol (Fig. 3)?")
    report = check_instantiation(params, bounded_loss(1))
    print(f"   proposed (50)/(51) ⇒ true knowledge:  {report.sufficient}")
    print(f"   proposed (50)/(51) ≡ true knowledge:  {all(t.exact for t in report.terms)}")
    print(f"   transitions coincide on SI:           {report.transitions_match}")
    print(f"   ⇒ instantiates: {report.instantiates}\n")


def simulate(params: SeqTransParams) -> None:
    print("3. A randomized fair execution (bounded-loss channel)")
    program = build_standard_protocol(params, bounded_loss(1))
    goal = delivered_all(program.space, params)
    result = Executor(program, seed=2024).run(goal, max_steps=100_000)
    print(f"   delivered in {result.steps} scheduler steps")
    print(f"   data transmissions: {result.fired['snd_data']}, "
          f"acks: {result.fired['rcv_ack']}, "
          f"losses: {result.fired['lose_data'] + result.fired['lose_ack']}")
    final = result.final_state
    print(f"   final: x={final['x']}  w={final['w']}  (w == x: {tuple(final['w']) == tuple(final['x'])})\n")


def apriori(params: SeqTransParams) -> None:
    print("4. §6.4 — a priori knowledge: x_0 is known to be 'a' in advance")
    with_info = SeqTransParams(
        length=params.length, alphabet=params.alphabet, apriori={0: "a"}
    )
    report = check_instantiation(with_info, RELIABLE)
    print(f"   standard protocol still correct (sufficient): {report.sufficient}")
    print(f"   still an instantiation of the KBP:            {report.instantiates}")
    comparison = compare_with_apriori(with_info, RELIABLE, runs=10)
    print(f"   avg messages — standard: {comparison.standard_messages:.1f}, "
          f"KBP-consistent: {comparison.kbp_messages:.1f} "
          f"(saving {comparison.savings:.1f})")
    print("   → the KBP-consistent protocol delivers known values immediately,")
    print("     but is no longer implemented by Figure 4.")


def main() -> None:
    params = SeqTransParams(length=1)
    channel_matrix(params)
    instantiation(params)
    simulate(params)
    apriori(params)


if __name__ == "__main__":
    main()
