#!/usr/bin/env python3
"""Muddy children: public announcements as SI strengthening.

Each silence ("no child knows whether it is muddy") is a public
announcement; announcing a fact strengthens the possibility predicate,
and by the paper's eq. (20) — K is anti-monotonic in SI — every
announcement can only *create* knowledge.  The classical theorem falls out:
with m muddy children, the muddy ones know exactly after m − 1 silences.

Run:  python examples/muddy_children.py
"""

from repro.predicates import var_true
from repro.puzzles import analyze_muddy_children, build_muddy_children
from repro.puzzles.muddy_children import child, muddy_var, questions


def walkthrough(muddy) -> None:
    n = len(muddy)
    label = ", ".join(f"child{i}={'muddy' if m else 'clean'}" for i, m in enumerate(muddy))
    print(f"\nConfiguration: {label}")
    system = build_muddy_children(n)
    world = system.space.index_of({muddy_var(i): muddy[i] for i in range(n)})
    qs = questions(system.space, n)

    print(f"   after the father speaks: {system.worlds()} possible worlds")
    result = analyze_muddy_children(muddy)
    for r, row in enumerate(result.knows_at_round):
        verdicts = " ".join(
            f"child{i}:{'KNOWS' if row[i] else '—'}" for i in range(n)
        )
        print(f"   round {r}: {verdicts}")
    m = result.muddy_count
    for i in range(n):
        if muddy[i]:
            assert result.first_round_known(i) == m - 1
    print(f"   ⇒ the {m} muddy children first know after {m - 1} silence(s) ✓")

    # Epistemic detail: before anyone knows, "someone is muddy" is common
    # knowledge while individual muddiness is not.
    someone = system.possible
    ck = system.common_knowledge([child(i) for i in range(n)], someone)
    print(f"   'someone is muddy' common knowledge at the real world: "
          f"{ck.holds_at(world)}")
    own = system.knows(child(0), var_true(system.space, muddy_var(0)))
    print(f"   child0 knows own muddiness initially: {own.holds_at(world)}")


def main() -> None:
    print("The muddy children puzzle, via the knowledge predicate transformer")
    walkthrough((True, False, False))
    walkthrough((True, True, False))
    walkthrough((True, True, True))


if __name__ == "__main__":
    main()
