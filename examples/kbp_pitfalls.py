#!/usr/bin/env python3
"""The paper's two counterexamples: knowledge-based protocols misbehave.

Figure 1 — a KBP whose SI equation (25) has **no solution**: the program
cannot be consistently implemented at all.

Figure 2 — a KBP whose SI is **non-monotonic in the initial condition**:
telling the processes *more* (strengthening init) destroys both a safety
and a liveness property.

Run:  python examples/kbp_pitfalls.py
"""

from repro import Predicate, var_true
from repro.core import compare_inits, resolve_at, solve_si, solve_si_iterative, sp_hat
from repro.figures import (
    fig1_program,
    fig2_program,
    fig2_strong_init,
    fig2_weak_init,
)
from repro.proofs import holds_leads_to
from repro.transformers import check_monotonic


def figure1() -> None:
    print("=" * 64)
    print("Figure 1: a knowledge-based protocol with no solution")
    print("=" * 64)
    program = fig1_program()
    print(program)

    report = solve_si(program)
    print(f"\nExhaustive search over {report.candidates_checked} candidate SIs "
          f"(all supersets of init): {len(report.solutions)} solutions.")

    iterative = solve_si_iterative(program)
    print(f"Φ-iteration from init: converged={iterative.converged}, "
          f"cycle length={len(iterative.cycle)}")
    for step, predicate in enumerate(iterative.cycle):
        states = [dict(s) for s in predicate.states()]
        print(f"   cycle[{step}]: {states}")

    culprit = check_monotonic(sp_hat(program), program.space)
    print(f"\nWhy: ŜP is not monotone — witness predicates of sizes "
          f"{culprit.witnesses[0].count()} ⊆ {culprit.witnesses[1].count()} "
          f"whose images are not ordered.")


def figure2() -> None:
    print("\n" + "=" * 64)
    print("Figure 2: strengthening init weakens what the protocol does")
    print("=" * 64)
    program = fig2_program()
    weak = fig2_weak_init(program)
    strong = fig2_strong_init(program)
    comparison = compare_inits(program, weak, strong)
    space = program.space

    print(f"init = ¬y      → SI = ¬y   ({comparison.si_weak.count()} states)")
    print(f"init = ¬y ∧ x  → SI = x    ({comparison.si_strong.count()} states)")
    print(f"SI monotone in init? {comparison.monotonic}")

    z = var_true(space, "z")
    for label, init in (("¬y", weak), ("¬y ∧ x", strong)):
        variant = program.with_init(init)
        si = solve_si(variant).strongest()
        resolved = resolve_at(variant, si)
        live = holds_leads_to(resolved, Predicate.true(space), z, si)
        safe = si.entails(~var_true(space, "y"))
        print(f"\n   init = {label}:")
        print(f"      invariant ¬y : {safe}")
        print(f"      true ↦ z     : {live}")
    print("\nMore initial knowledge ⇒ process 0 acts 'too soon' ⇒ process 1")
    print("never learns ¬y ⇒ the liveness property is lost.")


if __name__ == "__main__":
    figure1()
    figure2()
