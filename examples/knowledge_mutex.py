#!/usr/bin/env python3
"""Knowledge-based mutual exclusion: when eq. (25) has several solutions.

The paper notes that its results for knowledge-based protocols "are valid
for any solution" of the SI equation.  This example shows why that caveat
bites: a natural knowledge-guarded mutex has *two* solutions, each of
which silently starves one process — so the protocol, as a specification,
guarantees mutual exclusion but no progress for anybody.  One shared bit
fixes it.

Run:  python examples/knowledge_mutex.py
"""

from repro.puzzles import analyze_mutex, naive_mutex, token_mutex
from repro.core import solve_si


def show(title: str, program) -> None:
    print("=" * 64)
    print(title)
    print("=" * 64)
    report = solve_si(program)
    print(f"solutions of the SI equation (25): {len(report.solutions)}")
    for index, solution in enumerate(report.solutions):
        worlds = [dict(s) for s in solution.states()]
        print(f"   solution {index}: reachable = {worlds}")
    analysis = analyze_mutex(program)
    print(f"mutual exclusion in every solution: {analysis.mutex_in_all}")
    for index, (p0, p1) in enumerate(analysis.liveness):
        print(f"   solution {index}: P0 eventually enters: {p0},  "
              f"P1 eventually enters: {p1}")
    guaranteed = analysis.liveness_guaranteed
    print(f"liveness GUARANTEED by the protocol (true in all solutions): "
          f"P0: {guaranteed[0]}, P1: {guaranteed[1]}\n")


def main() -> None:
    print(
        "Each process wants:  enter_i : cs_i := true if K_i(¬cs_j)\n"
        "— enter when you *know* the other is out.\n"
    )
    show("Shared-nothing version: two self-consistent asymmetric worlds",
         naive_mutex())
    print(
        "Each solution is self-fulfilling: if process 0 never enters, ¬cs0\n"
        "is invariant, so process 1 always knows it and monopolizes the CS\n"
        "(and vice versa).  The knowledge-based protocol under-determines\n"
        "the system: mutual exclusion holds, progress is nobody's.\n"
    )
    show("Token version: one shared `turn` bit restores a unique solution",
         token_mutex())
    print("With the token in each view, knowledge of the other's state is\n"
          "grounded in communication, the solution is unique, and both\n"
          "processes' liveness holds.")


if __name__ == "__main__":
    main()
