#!/usr/bin/env python3
"""Replaying a paper proof in the machine-checked kernel.

Reconstructs the paper's proof of property (40) —

    j = k ∧ K_R x_k  ↦  j > k

("if the Receiver knows the value of the next element, it will eventually
deliver it") — step by step, exactly as printed in §6.2: unless from the
text, stability of knowledge (Kbp-3)/(56), simple conjunction, the ensures
metatheorem, promotion (29), and disjunction (31).  Every step is verified
semantically; change any predicate and the kernel raises ProofError.

Run:  python examples/proof_walkthrough.py
"""

from repro.proofs import ProofContext, ProofError
from repro.seqtrans import (
    SeqTransParams,
    bounded_loss,
    build_standard_protocol,
    proposed_k_r_any,
)
from repro.seqtrans.proofs_kbp import prove_40
from repro.seqtrans.proofs_standard import prove_56


def main() -> None:
    params = SeqTransParams(length=1)
    program = build_standard_protocol(params, bounded_loss(1))
    ctx = ProofContext(program)
    print(f"Program: {program}")
    print(f"SI: {ctx.si.count()} reachable states\n")

    print("The paper's proof of (40), machine-checked:\n")
    proof = prove_40(ctx, params, 0)
    print(proof.pretty())
    print(f"\nRule applications: {proof.size()}")
    print(f"Assumptions remaining: {proof.assumptions() or 'none — fully discharged'}")

    # The kernel is not a rubber stamp: a wrong step is rejected.
    print("\nTrying an *invalid* step — claiming delivery without knowledge:")
    from repro.seqtrans.spec import j_eq, j_gt

    space = program.space
    try:
        ctx.ensures_from_text(j_eq(space, 0), j_gt(space, 0))
    except ProofError as error:
        print(f"   ProofError: {error}")
    print("\n(j = 0 alone does not ensure progress — the Receiver may not yet")
    print(" know x_0; the real proof needs the knowledge guard, as above.)")


if __name__ == "__main__":
    main()
