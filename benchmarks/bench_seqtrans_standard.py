"""E9 — Figure 4 + eqs. (50)–(62): the standard protocol instantiates the KBP.

Regenerates the §6.3 verification: the safety derivations (36)/(34)/(54)/
(61)/(62), the stability facts (55)/(56), the (24)-based knowledge step
(52) — and the instantiation theorem itself (proposed knowledge predicates
(50)/(51) equal the true ones on SI; transitions coincide).
"""

from repro.seqtrans import (
    SeqTransParams,
    bounded_loss,
    build_standard_protocol,
    check_instantiation,
    check_spec,
    prove_all_standard,
)

from .conftest import once, record

PARAMS = SeqTransParams(length=1)
CHANNEL = bounded_loss(1)


def test_standard_protocol_spec(benchmark):
    program = build_standard_protocol(PARAMS, CHANNEL)
    report = once(benchmark, check_spec, program, PARAMS)
    assert report.satisfied
    record(
        benchmark,
        space=program.space.size,
        si_states=report.si_states,
        safety=report.safety_holds,
        liveness=list(report.liveness_holds),
    )


def test_safety_derivation_replay(benchmark):
    """(36), (34), (54), (61), (62), (55), (56), (52) — all machine-checked."""
    program = build_standard_protocol(PARAMS, CHANNEL)
    proofs = once(benchmark, prove_all_standard, program, PARAMS)
    record(benchmark, rule_applications=proofs.total_steps())


def test_instantiation_theorem(benchmark):
    """Proposed (50)/(51) == true knowledge on SI; transitions match."""
    report = once(benchmark, check_instantiation, PARAMS, CHANNEL)
    assert report.sufficient
    assert report.instantiates
    record(
        benchmark,
        terms_compared=len(report.terms),
        all_exact=all(t.exact for t in report.terms),
        transitions_match=report.transitions_match,
        si_states=report.si_states,
    )


def test_instantiation_theorem_l2(benchmark):
    """The same at L = 2 (6 knowledge terms, 67 200 states, reliable)."""
    from repro.seqtrans import RELIABLE

    params = SeqTransParams(length=2)
    report = once(benchmark, check_instantiation, params, RELIABLE)
    assert report.instantiates
    record(benchmark, terms_compared=len(report.terms), si_states=report.si_states)
