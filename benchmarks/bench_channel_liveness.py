"""E13 — §4/§6: channel assumptions decide liveness.

The paper assumes channels that "eventually correctly deliver any message
that is sent repeatedly" ((Kbp-1)/(Kbp-2), (St-3)/(St-4)).  Regenerated as
a 3×1 matrix: the same Figure-4 protocol over reliable / bounded-loss /
unrestricted-lossy channels — safety always holds; liveness holds exactly
when the assumption does.
"""

from repro.seqtrans import (
    LOSSY,
    RELIABLE,
    SeqTransParams,
    bounded_loss,
    build_standard_protocol,
    check_spec,
)

from .conftest import once, record

PARAMS = SeqTransParams(length=1)

CHANNELS = {
    "reliable": RELIABLE,
    "bounded_loss": bounded_loss(1),
    "lossy": LOSSY,
}


def test_channel_liveness_matrix(benchmark):
    def run():
        matrix = {}
        for name, channel in CHANNELS.items():
            program = build_standard_protocol(PARAMS, channel)
            report = check_spec(program, PARAMS)
            matrix[name] = (report.safety_holds, report.liveness_all)
        return matrix

    matrix = once(benchmark, run)
    assert matrix["reliable"] == (True, True)
    assert matrix["bounded_loss"] == (True, True)
    assert matrix["lossy"] == (True, False)
    record(
        benchmark,
        **{
            f"{name}": f"safety={s} liveness={l}"
            for name, (s, l) in matrix.items()
        },
    )


def test_loss_budget_sweep(benchmark):
    """Liveness is budget-independent once the bound exists (1, 2, 3)."""

    def run():
        verdicts = {}
        for budget in (1, 2, 3):
            program = build_standard_protocol(PARAMS, bounded_loss(budget))
            verdicts[budget] = check_spec(program, PARAMS).liveness_all
        return verdicts

    verdicts = once(benchmark, run)
    assert all(verdicts.values())
    record(benchmark, **{f"budget_{b}": v for b, v in verdicts.items()})


def test_lossy_refutation_witness(benchmark):
    """The fair-cycle refuter exhibits an actual starving schedule."""
    from repro.proofs import refute_leads_to
    from repro.seqtrans.spec import w_length_eq, w_length_gt

    program = build_standard_protocol(PARAMS, LOSSY)
    space = program.space

    def run():
        return refute_leads_to(
            program, w_length_eq(space, 0), w_length_gt(space, 0)
        )

    refutation = once(benchmark, run)
    assert refutation is not None
    record(benchmark, trap_states=len(refutation.trap), start=refutation.start)
